"""Bench: Figure 5 — log-frequency of reads-from signatures on SafeStack,
POS (no greybox feedback) vs RFF (with feedback), plus the RQ3 claims:

* under POS a single rf signature dominates the campaign (paper: >50%);
* RFF's power schedule flattens the distribution measurably.

The paper uses 10000 schedules; default here is 800 (set
RFF_FIG5_EXECUTIONS to scale up)."""

from __future__ import annotations

import os

from repro import bench
from repro.harness.reporting import figure5_ascii, rf_distribution_pos, rf_distribution_rff

from benchmarks.conftest import record_artifact, record_claim

EXECUTIONS = int(os.environ.get("RFF_FIG5_EXECUTIONS", "800"))


def _both_distributions():
    program = bench.get("SafeStack")
    pos = rf_distribution_pos(program, executions=EXECUTIONS, seed=5)
    rff = rf_distribution_rff(program, executions=EXECUTIONS, seed=5)
    return pos, rff


def test_figure5_distributions(benchmark):
    pos, rff = benchmark.pedantic(_both_distributions, rounds=1, iterations=1)
    art = figure5_ascii(pos) + "\n\n" + figure5_ascii(rff)
    record_artifact("figure5.txt", art)
    record_claim(
        f"figure5: top-signature share — POS {pos.top_share:.1%} (paper >50%), "
        f"RFF {rff.top_share:.1%}; gini POS {pos.gini():.2f} vs RFF {rff.gini():.2f}"
    )

    # The paper's skew observation: POS concentrates its budget.
    assert pos.top_share >= 0.25, "POS should concentrate on few signatures"
    # Greybox feedback yields a measurably flatter exploration: lower gini,
    # and a top-signature share no worse than POS's (small tolerance — the
    # dominant class is a property of the subject, not the tool).
    assert rff.gini() < pos.gini(), "RFF should explore rf classes more evenly"
    assert rff.top_share <= pos.top_share + 0.05


def test_feedback_widens_coverage(benchmark):
    pos, rff = benchmark.pedantic(_both_distributions, rounds=1, iterations=1)
    record_claim(
        f"figure5: unique rf signatures in {EXECUTIONS} schedules — "
        f"POS {pos.unique_signatures} vs RFF {rff.unique_signatures}"
    )
    assert rff.unique_signatures >= pos.unique_signatures * 0.8
