"""Bench: budget-allocator machinery overhead (campaign wall time).

``UniformAllocator`` routes a campaign through the round/slice/merge
machinery while executing the exact same schedules as the legacy
single-pass path — so the wall-time ratio between the two is a direct
measurement of pure allocator bookkeeping cost.  This bench writes
``results/BENCH_alloc.json`` and asserts the machinery stays within a
1.05x slowdown; adaptive Laplace numbers are reported alongside for
context (not gated: retirement changes the executed workload itself).

Plain ``time.perf_counter`` loops (not pytest-benchmark) so the numbers
are produced on every run, including CI's plain ``pytest`` invocation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import bench
from repro.harness.allocator import CellInfo, LaplaceAllocator, UniformAllocator
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.tools import random_tool

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Subjects RandomWalk essentially never cracks at this budget, so every
#: sample executes the full budget and per-execution cost dominates the
#: timing (fixed per-campaign setup would otherwise drown the signal).
PROGRAMS = ["CS/reorder_10", "CS/reorder_20"]
CONFIG = CampaignConfig(trials=1, budget=1500, base_seed=20240809)
MAX_OVERHEAD = 1.05
SAMPLES = 3


def _run_campaign(allocator):
    config = CampaignConfig(
        trials=CONFIG.trials,
        budget=CONFIG.budget,
        base_seed=CONFIG.base_seed,
        allocator=allocator,
    )
    programs = [bench.get(name) for name in PROGRAMS]
    return Campaign(config).run([random_tool()], programs)


def _best_of(variants: dict) -> dict[str, float]:
    """Best-of-N wall time per variant, samples interleaved round-robin so
    cache warm-up and machine drift cannot favour one variant."""
    best = {name: float("inf") for name in variants}
    for _ in range(SAMPLES):
        for name, make_allocator in variants.items():
            start = time.perf_counter()
            _run_campaign(make_allocator())
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_allocator_machinery_overhead_within_budget():
    # Warm imports/caches outside the timed loops, and pin the equivalence
    # that makes the timing comparison honest: uniform-allocated campaigns
    # execute schedule-for-schedule the same work as the legacy path.
    legacy_result = _run_campaign(None)
    uniform_result = _run_campaign(UniformAllocator())
    assert uniform_result.results == legacy_result.results

    walls = _best_of(
        {
            "legacy": lambda: None,
            "uniform": UniformAllocator,
            "laplace": lambda: LaplaceAllocator(rounds=4),
        }
    )
    legacy_wall, uniform_wall, laplace_wall = (
        walls["legacy"], walls["uniform"], walls["laplace"]
    )
    overhead = uniform_wall / legacy_wall

    executions = sum(
        r.executions for trials in legacy_result.results.values() for r in trials
    )
    payload = {
        "max_overhead": MAX_OVERHEAD,
        "programs": PROGRAMS,
        "budget": CONFIG.budget,
        "executions_per_sample": executions,
        "samples": SAMPLES,
        "legacy_wall_s": round(legacy_wall, 4),
        "uniform_wall_s": round(uniform_wall, 4),
        "laplace_wall_s": round(laplace_wall, 4),
        "uniform_overhead": round(overhead, 3),
        "laplace_ratio": round(laplace_wall / legacy_wall, 3),
        "plan_microseconds": _plan_microbench(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_alloc.json").write_text(json.dumps(payload, indent=2) + "\n")
    assert overhead <= MAX_OVERHEAD, (
        f"allocator machinery costs {overhead:.3f}x campaign wall time "
        f"(budget {MAX_OVERHEAD}x); see results/BENCH_alloc.json"
    )


def _plan_microbench(cells: int = 98, iterations: int = 200) -> float:
    """Microseconds per ``plan()`` call at full-bench campaign width."""
    allocator = LaplaceAllocator(rounds=4)
    infos = [
        CellInfo("Random", f"prog/{index}", 0, 400) for index in range(cells)
    ]
    history = {
        info.key: []
        for info in infos
    }
    allocator.plan(infos, history, 0, 1234)  # warm
    start = time.perf_counter()
    for _ in range(iterations):
        allocator.plan(infos, history, 1, 1234)
    return round((time.perf_counter() - start) / iterations * 1e6, 1)
