"""Bench: pooled vs per-cell dispatch overhead (campaign wall time).

The pooled engine exists to amortize process spawn and tool/program
construction across slices — exactly the costs that dominate allocated
campaigns with many small slices.  This bench runs the full 49-program
bench × Random/PCT3 under four Laplace allocation rounds (≈400 small
slices) through both engines, pins their bit-identity, writes
``results/BENCH_pool.json``, and gates the point of the tentpole: the
pool must finish in at most 1/3 the per-cell engine's wall time.

Plain ``time.perf_counter`` loops (not pytest-benchmark) so the numbers
are produced on every run, including CI's plain ``pytest`` invocation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import bench
from repro.harness.allocator import LaplaceAllocator
from repro.harness.campaign import CampaignConfig
from repro.harness.parallel import ParallelCampaign

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

TOOLS = ["Random", "PCT3"]
#: Small per-cell budgets keep each slice cheap, so dispatch overhead —
#: the thing the pool removes — dominates the per-cell engine's wall time
#: the same way it does in real allocated sweeps over many targets.
CONFIG = CampaignConfig(
    trials=1, budget=24, base_seed=20240809, allocator=LaplaceAllocator(rounds=4)
)
MIN_SPEEDUP = 3.0
SAMPLES = 2
PROCESSES = 2


def _run(engine: str):
    return ParallelCampaign(
        CONFIG, processes=PROCESSES, engine=engine
    ).run(TOOLS, bench.names())


def _best_of(engines: list[str]) -> dict[str, float]:
    """Best-of-N wall time per engine, samples interleaved round-robin so
    cache warm-up and machine drift cannot favour one engine."""
    best = {engine: float("inf") for engine in engines}
    for _ in range(SAMPLES):
        for engine in engines:
            start = time.perf_counter()
            _run(engine)
            best[engine] = min(best[engine], time.perf_counter() - start)
    return best


def test_pool_speedup_over_percell():
    # Warm imports/caches outside the timed loops, and pin the equivalence
    # that makes the timing comparison honest: both engines execute
    # schedule-for-schedule identical campaigns.
    percell_result = _run("percell")
    pool_result = _run("pool")
    assert pool_result.results == percell_result.results
    assert pool_result.allocation == percell_result.allocation

    walls = _best_of(["percell", "pool"])
    speedup = walls["percell"] / walls["pool"]

    slices = sum(
        round_["cells"] for round_ in (percell_result.allocation or {}).get("rounds", [])
    )
    payload = {
        "min_speedup": MIN_SPEEDUP,
        "tools": TOOLS,
        "programs": len(bench.names()),
        "budget": CONFIG.budget,
        "allocator": "laplace",
        "rounds": 4,
        "slices_per_sample": slices,
        "processes": PROCESSES,
        "samples": SAMPLES,
        "percell_wall_s": round(walls["percell"], 4),
        "pool_wall_s": round(walls["pool"], 4),
        "speedup": round(speedup, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pool.json").write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup >= MIN_SPEEDUP, (
        f"pooled engine is only {speedup:.2f}x faster than per-cell dispatch "
        f"(gate {MIN_SPEEDUP}x); see results/BENCH_pool.json"
    )
