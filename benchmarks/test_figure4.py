"""Bench: Figure 4 — cumulative bugs discovered vs log(#schedules) across
all trials, for every evaluated tool.

Paper claims reproduced in shape:
* RFF's curve dominates PERIOD and POS at all schedule counts;
* RFF ends with the most bugs found, POS visibly lower, QL-RF lowest of the
  randomized tools.
"""

from __future__ import annotations

from repro.harness.reporting import figure4_ascii, figure4_series

from benchmarks.conftest import record_artifact, record_claim


def test_figure4_curves(campaign, benchmark):
    series = benchmark.pedantic(figure4_series, args=(campaign,), rounds=1, iterations=1)
    art = figure4_ascii(campaign)
    record_artifact("figure4.txt", art)

    assert series["RFF"], "RFF found no bugs at all"
    totals = {tool: (curve[-1][1] if curve else 0) for tool, curve in series.items()}
    record_claim(
        "figure4: total bugs across trials — "
        + ", ".join(f"{tool} {count}" for tool, count in sorted(totals.items()))
    )

    # Right edge of the figure: RFF >= each baseline in total bugs found.
    assert totals["RFF"] >= totals["POS"], "RFF should dominate POS (RQ2)"
    assert totals["RFF"] >= totals["QLearning RF"], "RFF should dominate QL-RF (RQ4)"
    assert totals["RFF"] >= totals["PERIOD"], "RFF should match/beat PERIOD (RQ1)"


def _bugs_by(curve, schedules):
    found = 0
    for at, cumulative in curve:
        if at <= schedules:
            found = cumulative
    return found


def test_rff_dominates_pos_at_all_scales(campaign, benchmark):
    series = benchmark.pedantic(figure4_series, args=(campaign,), rounds=1, iterations=1)
    checkpoints = [1, 3, 10, 30, 100]
    rff = [_bugs_by(series["RFF"], c) for c in checkpoints]
    pos = [_bugs_by(series["POS"], c) for c in checkpoints]
    record_claim(
        f"figure4: cumulative bugs at schedules {checkpoints} — RFF {rff} vs POS {pos} "
        "(paper: gap widens with schedule count)"
    )
    # The gap must be non-negative everywhere and strictly positive late.
    assert all(r >= p for r, p in zip(rff, pos))
    assert rff[-1] > pos[-1]
