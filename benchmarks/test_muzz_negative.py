"""Bench: the Section 5.1 MUZZ negative result.

Paper: the authors reimplemented MUZZ's interleaving strategy (random OS
thread priorities at creation + per-thread coverage) and found that "even
on simple benchmark programs, this implementation was not able to trigger
bugs in practice" — on the three-thread reorder example it failed after
millions of executions.  Our MUZZ-like policy reproduces the mechanism and
the failure."""

from __future__ import annotations

from repro.harness.tools import muzz_tool, pos_tool

from benchmarks.conftest import record_claim
from tests.conftest import make_reorder


def test_muzz_like_cannot_find_reorder_3(benchmark):
    prog = make_reorder(3)

    def run():
        return muzz_tool().find_bug(prog, budget=2000, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        "MUZZ negative result (S5.1): static-priority exploration on 3-thread reorder — "
        f"paper: unfound after millions; measured: unfound after {result.executions} schedules"
    )
    assert not result.found


def test_pos_finds_it_where_muzz_cannot(benchmark):
    prog = make_reorder(3)

    def run():
        return pos_tool().find_bug(prog, budget=2000, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"MUZZ negative result (S5.1): POS on the same subject finds it at {result.schedules_to_bug}"
    )
    assert result.found
