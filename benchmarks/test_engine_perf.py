"""Bench: raw engine throughput, with a perf-regression gate.

Not a paper figure — these keep the substrate honest: executor event
throughput and fuzzer schedules/second are the quantities that determine how
far a fixed wall-clock budget goes, the paper's justification for using
timeouts rather than schedule counts (Section 5.1).

Plain ``time.perf_counter`` loops (not pytest-benchmark) so the numbers are
produced on every run, including CI's plain ``pytest`` invocation.  Every
subject (and the calibration loop) is timed ``SAMPLES`` times and the best
rate kept, which suppresses GC/scheduler noise.  Each run writes
``results/BENCH_engine.json`` with:

* raw steps/sec (and fuzzer schedules/sec) per subject;
* a *normalized* rate — steps/sec divided by a pure-Python calibration
  loop's ops/sec — so numbers from machines of different speeds are
  comparable;
* the speedup over the checked-in pre-PR-5 baseline (the engine before the
  hot-path overhaul), measured via normalized rates.

The regression gate compares normalized rates against the checked-in
``benchmarks/engine_baseline.json`` and fails when any subject regresses
more than ``MAX_REGRESSION`` (20%).  Refresh the gate baseline after an
intentional perf change with::

    RFF_REGEN_PERF_BASELINE=gate PYTHONPATH=src python -m pytest benchmarks/test_engine_perf.py -q

(``RFF_REGEN_PERF_BASELINE=pre_pr`` exists only to document how the frozen
pre-optimization section was captured; do not overwrite it.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import bench
from repro.core.fuzzer import RffFuzzer
from repro.runtime.executor import Executor
from repro.schedulers.pos import PosPolicy
from repro.schedulers.random_walk import RandomWalkPolicy

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = Path(__file__).resolve().parent / "engine_baseline.json"

#: Fail the gate when a subject's normalized rate drops below 80% of baseline.
MAX_REGRESSION = 0.20

#: Timed samples per subject (and per calibration); the best is kept.  A
#: min-wall estimator is robust to GC pauses and scheduler hiccups, which
#: otherwise dominate run-to-run variance on short subjects.
SAMPLES = 5

#: (label, program name, policy factory, executions per sample).
EXECUTOR_SUBJECTS = [
    ("executor/account-randomwalk", "CS/account", lambda: RandomWalkPolicy(1), 120),
    ("executor/reorder_100-randomwalk", "CS/reorder_100", lambda: RandomWalkPolicy(1), 20),
    ("executor/reorder_10-pos", "CS/reorder_10", lambda: PosPolicy(1), 60),
    ("executor/safestack-pos", "SafeStack", lambda: PosPolicy(2), 24),
]

#: (label, program name, schedules per fuzzer run, repetitions).
FUZZER_SUBJECTS = [
    ("fuzzer/reorder_5-rff", "CS/reorder_5", 20, 6),
]


def _calibrate_once(duration: float) -> float:
    """Ops/sec of a fixed pure-Python loop: a machine-speed yardstick.

    The loop mixes dict access, attribute-free arithmetic and method calls —
    roughly the instruction mix of the executor hot path — so normalizing
    steps/sec by it cancels out raw machine speed when comparing against a
    baseline captured elsewhere.
    """
    table = {i: i for i in range(64)}
    acc = 0
    ops = 0
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        for i in range(1000):
            acc += table[i & 63]
            table[i & 63] = acc & 1023
        ops += 1000
    return ops / duration


def _calibrate(duration: float = 0.05) -> float:
    return max(_calibrate_once(duration) for _ in range(SAMPLES))


def _sample_executor(label: str, program_name: str, policy_factory, executions: int) -> dict:
    program = bench.get(program_name)
    max_steps = program.max_steps or 4000
    # Warm up generators/caches outside the timed loops.
    Executor(program, policy_factory(), max_steps=max_steps).run()
    best: dict = {}
    for _ in range(SAMPLES):
        steps = 0
        start = time.perf_counter()
        for _ in range(executions):
            steps += Executor(program, policy_factory(), max_steps=max_steps).run().steps
        wall = time.perf_counter() - start
        if not best or steps / wall > best["rate"]:
            best = {"label": label, "steps": steps, "wall": wall, "rate": steps / wall}
    return best


def _sample_fuzzer(label: str, program_name: str, budget: int, reps: int) -> dict:
    program = bench.get(program_name)
    RffFuzzer(program, seed=3).run(budget)
    best: dict = {}
    for _ in range(SAMPLES):
        schedules = 0
        start = time.perf_counter()
        for seed in range(reps):
            schedules += RffFuzzer(program, seed=seed).run(budget).executions
        wall = time.perf_counter() - start
        if not best or schedules / wall > best["rate"]:
            best = {"label": label, "steps": schedules, "wall": wall, "rate": schedules / wall}
    return best


def _load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def test_engine_throughput_and_regression_gate():
    calibration = _calibrate()
    samples = [_sample_executor(*subject) for subject in EXECUTOR_SUBJECTS]
    samples += [_sample_fuzzer(*subject) for subject in FUZZER_SUBJECTS]

    baseline = _load_baseline()
    regen = os.environ.get("RFF_REGEN_PERF_BASELINE")
    if regen:
        section = {
            "calibration_ops_per_sec": round(calibration, 1),
            "subjects": {s["label"]: round(s["rate"], 1) for s in samples},
        }
        baseline[regen] = section
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    payload: dict = {
        "calibration_ops_per_sec": round(calibration, 1),
        "max_regression": MAX_REGRESSION,
        "subjects": {},
    }
    pre = baseline.get("pre_pr")
    gate = baseline.get("gate")
    regressions = []
    for sample in samples:
        label = sample["label"]
        normalized = sample["rate"] / calibration
        entry = {
            "steps": sample["steps"],
            "wall_sec": round(sample["wall"], 4),
            "steps_per_sec": round(sample["rate"], 1),
            "normalized": round(normalized, 6),
        }
        if pre and label in pre["subjects"]:
            pre_normalized = pre["subjects"][label] / pre["calibration_ops_per_sec"]
            entry["pre_pr_steps_per_sec"] = pre["subjects"][label]
            entry["speedup_vs_pre_pr"] = round(normalized / pre_normalized, 3)
        if gate and label in gate["subjects"]:
            gate_normalized = gate["subjects"][label] / gate["calibration_ops_per_sec"]
            ratio = normalized / gate_normalized
            entry["vs_gate_baseline"] = round(ratio, 3)
            if ratio < 1.0 - MAX_REGRESSION:
                regressions.append(f"{label}: {ratio:.2f}x of gate baseline")
        payload["subjects"][label] = entry

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert all(s["steps"] > 0 for s in samples)
    if not regen:
        assert not regressions, (
            "engine throughput regressed >20% vs benchmarks/engine_baseline.json: "
            + "; ".join(regressions)
            + " (see results/BENCH_engine.json; refresh with RFF_REGEN_PERF_BASELINE=gate "
            "after an intentional change)"
        )
