"""Bench: raw engine throughput (true pytest-benchmark timing loops).

Not a paper figure — these keep the substrate honest: executor event
throughput, fuzzer schedules/second and systematic-exploration cost are the
quantities that determine how far a fixed wall-clock budget goes, the
paper's justification for using timeouts rather than schedule counts
(Section 5.1)."""

from __future__ import annotations

from repro import bench
from repro.core.fuzzer import RffFuzzer
from repro.runtime.executor import Executor
from repro.schedulers.pos import PosPolicy
from repro.schedulers.random_walk import RandomWalkPolicy

from tests.conftest import make_reorder


def test_executor_throughput_small_program(benchmark):
    program = bench.get("CS/account")

    def run():
        return Executor(program, RandomWalkPolicy(1)).run().steps

    steps = benchmark(run)
    assert steps > 0


def test_executor_throughput_reorder_100(benchmark):
    program = bench.get("CS/reorder_100")

    def run():
        return Executor(program, RandomWalkPolicy(1)).run().steps

    steps = benchmark(run)
    assert steps > 300


def test_pos_policy_overhead(benchmark):
    program = make_reorder(10)

    def run():
        return Executor(program, PosPolicy(1)).run().steps

    benchmark(run)


def test_rff_fuzzing_throughput(benchmark):
    program = make_reorder(5)

    def run():
        fuzzer = RffFuzzer(program, seed=3)
        return fuzzer.run(20).executions

    executions = benchmark(run)
    assert executions == 20


def test_safestack_execution_cost(benchmark):
    program = bench.get("SafeStack")

    def run():
        return Executor(program, PosPolicy(2), max_steps=program.max_steps or 4000).run().steps

    benchmark(run)
