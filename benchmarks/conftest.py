"""Shared infrastructure for the experiment benches.

One full campaign (every tool x every benchmark program x N trials) is run
once per pytest session and shared by the Figure 4 / Appendix B / RQ-claim
benches.  Scale is controlled by environment variables so the same benches
run at laptop scale by default and at paper scale on demand:

    RFF_BENCH_TRIALS   trials per randomized tool     (default 3;  paper 20)
    RFF_BENCH_BUDGET   schedules per (tool, program)  (default 250; paper ~5 min)

Rendered tables and figures are written to ``results/`` and echoed into the
pytest terminal summary, so ``pytest benchmarks/ --benchmark-only | tee ...``
captures every artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import bench
from repro.harness.campaign import Campaign, CampaignConfig, CampaignResult
from repro.harness.tools import paper_tools

TRIALS = int(os.environ.get("RFF_BENCH_TRIALS", "3"))
BUDGET = int(os.environ.get("RFF_BENCH_BUDGET", "250"))

#: Heavy subjects get smaller budgets at laptop scale (documented in
#: DESIGN.md "Scaling note"); remove the overrides for paper-scale runs.
BUDGET_OVERRIDES = {
    "SafeStack": min(BUDGET, 80),
    "RADBench/bug5": min(BUDGET, 120),
}

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Claim lines accumulated by benches, echoed in the terminal summary.
_SUMMARY_LINES: list[str] = []


def record_artifact(name: str, content: str) -> Path:
    """Persist a rendered table/figure under results/ and summarise it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path


def record_claim(line: str) -> None:
    """Queue one paper-vs-measured claim line for the terminal summary and
    append it to results/claims.txt (EXPERIMENTS.md source data)."""
    _SUMMARY_LINES.append(line)
    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / "claims.txt").open("a") as sink:
        sink.write(line + "\n")


@pytest.fixture(scope="session")
def campaign() -> CampaignResult:
    """The full RQ1 campaign: 6 tools x 49 programs x TRIALS trials."""
    programs = [bench.get(name) for name in bench.names()]
    config = CampaignConfig(
        trials=TRIALS,
        budget=BUDGET,
        base_seed=20240427,
        budget_overrides=dict(BUDGET_OVERRIDES),
    )
    return Campaign(config).run(paper_tools(), programs)


def pytest_sessionstart(session):
    # claims.txt is appended to by record_claim; start each session fresh.
    stale = RESULTS_DIR / "claims.txt"
    if stale.exists():
        stale.unlink()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SUMMARY_LINES:
        return
    terminalreporter.section("paper-vs-measured claims")
    for line in _SUMMARY_LINES:
        terminalreporter.write_line(line)
