"""Bench: RQ4 — reads-from testing via Q-Learning (Section 5.5).

Paper: "[QL-RF] finds only about 30.2 bugs on average relative to RFF's 44
... RFF finds bugs in significantly fewer schedules on 30 of the 49
programs.  However, the Q-Learning RF approach consistently finds the bug
on the first trial in more instances than any other tool (13 programs)."""

from __future__ import annotations

from repro.harness.reporting import significance_summary

from benchmarks.conftest import record_claim


def test_qlearning_finds_fewer_bugs_than_rff(campaign, benchmark):
    means = benchmark.pedantic(
        lambda: (campaign.mean_bugs_found("RFF"), campaign.mean_bugs_found("QLearning RF")),
        rounds=1,
        iterations=1,
    )
    rff_mean, ql_mean = means
    record_claim(
        f"RQ4: mean bugs — paper RFF 44 vs QL-RF 30.2; measured RFF {rff_mean:.1f} vs QL-RF {ql_mean:.1f}"
    )
    assert rff_mean > ql_mean, "RFF should find more bugs than QL-RF"


def test_rff_faster_per_program(campaign, benchmark):
    summary = benchmark.pedantic(
        significance_summary, args=(campaign, "RFF", "QLearning RF"), rounds=1, iterations=1
    )
    record_claim(
        f"RQ4: log-rank RFF-vs-QLRF — paper 30/49 RFF-faster; "
        f"measured {summary['a_faster']} faster / {summary['b_faster']} slower"
    )
    assert summary["a_faster"] > summary["b_faster"]


def test_qlearning_one_shot_strength(campaign, benchmark):
    """Partial-trace learning gives QL-RF strong first-schedule hits."""
    counts = benchmark.pedantic(
        lambda: {tool: campaign.one_shot_wins(tool) for tool in campaign.tools()},
        rounds=1,
        iterations=1,
    )
    record_claim(
        "RQ4: programs with a first-schedule hit — paper QL-RF leads (13); measured "
        + ", ".join(f"{tool} {count}" for tool, count in sorted(counts.items()))
    )
    # QL-RF must be at or near the top of the one-shot ranking.
    randomized = {t: c for t, c in counts.items() if t not in ("GenMC", "PERIOD")}
    best = max(randomized.values())
    assert counts["QLearning RF"] >= best - 2
