"""Bench: RQ2 — the contribution of the abstract schedule (Section 5.3).

Paper: "the abstract schedule structure improves the bug-finding ability of
our tool significantly ... approximately six more bugs on average"; "a
structured random search finds the bug in significantly fewer schedules on
16/49 programs ... POS does not find the bug in significantly fewer
schedules on any program"; POS specifically fails on reorder_*/twostage_*
with many threads."""

from __future__ import annotations

from repro.harness.reporting import significance_summary

from benchmarks.conftest import record_claim

HIGH_THREAD_FAMILIES = [
    "CS/reorder_20",
    "CS/reorder_50",
    "CS/reorder_100",
    "CS/twostage_50",
    "CS/twostage_100",
]


def test_abstract_schedule_adds_bugs(campaign, benchmark):
    gap = benchmark.pedantic(
        lambda: campaign.mean_bugs_found("RFF") - campaign.mean_bugs_found("POS"),
        rounds=1,
        iterations=1,
    )
    record_claim(f"RQ2: RFF minus POS mean bugs — paper ~6, measured {gap:.1f}")
    assert gap >= 3, f"abstract schedules added only {gap:.1f} bugs"


def test_pos_fails_on_high_thread_families(campaign, benchmark):
    def count_pos_misses():
        return sum(campaign.cell("POS", name).none_found for name in HIGH_THREAD_FAMILIES)

    misses = benchmark.pedantic(count_pos_misses, rounds=1, iterations=1)
    rff_finds = sum(campaign.cell("RFF", name).all_found for name in HIGH_THREAD_FAMILIES)
    record_claim(
        f"RQ2: high-thread families — POS misses {misses}/{len(HIGH_THREAD_FAMILIES)}, "
        f"RFF finds all trials on {rff_finds}/{len(HIGH_THREAD_FAMILIES)} (paper: POS misses all)"
    )
    assert misses >= 4
    assert rff_finds >= 4


def test_structured_search_strictly_improves_pos(campaign, benchmark):
    summary = benchmark.pedantic(
        significance_summary, args=(campaign, "RFF", "POS"), rounds=1, iterations=1
    )
    record_claim(
        f"RQ2: log-rank RFF-vs-POS — paper 16 RFF-faster / 0 POS-faster; "
        f"measured {summary['a_faster']} / {summary['b_faster']}"
    )
    assert summary["a_faster"] >= 5, "RFF should be significantly faster on several programs"
    # At laptop trial counts the log-rank flags 1-vs-2-schedule noise on
    # shallow bugs; the paper-shape requirement is that POS wins are rare
    # and dwarfed by RFF wins.
    assert summary["b_faster"] <= max(1, summary["a_faster"] // 4), (
        "POS should (essentially) never be significantly faster"
    )
