"""Bench: hyperparameter robustness of the power schedule (Section 4.2).

The paper fixes β and M without a sensitivity study; this bench sweeps
both (plus the constraint cap and the positive-bias knob) on a
representative deep bug and shows the headline behaviour — RFF finds
reorder-class bugs in a handful of schedules — is robust across the grid.
"""

from __future__ import annotations

from repro import bench
from repro.harness.sweeps import default_grid, render_sweep, sweep_config

from benchmarks.conftest import TRIALS, record_artifact, record_claim


def test_hyperparameter_robustness(benchmark):
    program = bench.get("CS/reorder_20")
    trials = max(TRIALS, 3)

    def run():
        return sweep_config(program, default_grid(), trials=trials, budget=250)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_sweep(points)
    record_artifact("hyperparams.txt", table)

    finders = [p for p in points if p.found == p.trials]
    record_claim(
        f"hyperparams: {len(finders)}/{len(points)} grid configs find reorder_20 in every "
        f"trial (budget 250); full table in results/hyperparams.txt"
    )
    # Robustness claim: at least 80% of configurations always find the bug.
    assert len(finders) >= int(0.8 * len(points)), table
    # The default config must be among them.
    default = next(p for p in points if p.label == "default")
    assert default.found == default.trials
