"""Bench: runtime guardrail overhead (executor steps/sec, off vs on).

The guard checks run inline on every scheduler step: the step-budget and
wall-clock watchdogs are integer compares, the livelock detector hashes a
small event fingerprint into a rolling window.  This bench measures
executor throughput unguarded and with all three guardrails armed (with
budgets generous enough never to trip), writes ``results/BENCH_guard.json``
and asserts the full guard stays within a 1.15x slowdown — watchdogs are
meant to be always-on in campaigns, so they must be near-free.

Plain ``time.perf_counter`` loops (not pytest-benchmark) so the numbers
are produced on every run, including CI's plain ``pytest`` invocation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import bench
from repro.runtime.executor import Executor
from repro.runtime.guard import GuardConfig
from repro.schedulers.pos import PosPolicy

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: (subject, executions per sample) — one tiny hot program, one long one.
SUBJECTS = [("CS/account", 60), ("CS/reorder_100", 15)]
MAX_OVERHEAD = 1.15
#: Generous budgets: the guard is armed but never trips, so the timed
#: loops measure pure per-step bookkeeping cost.
GUARD = GuardConfig(step_budget=10_000_000, wall_seconds=3600.0, livelock_window=100_000)


def _sample(program, executions: int, guard: GuardConfig | None) -> tuple[int, float]:
    """Total executor steps and wall seconds over ``executions`` runs."""
    steps = 0
    start = time.perf_counter()
    for seed in range(executions):
        result = Executor(
            program,
            PosPolicy(seed),
            max_steps=program.max_steps or 20000,
            guard=guard,
        ).run()
        steps += result.steps
    return steps, time.perf_counter() - start


def test_guard_overhead_within_budget():
    payload = {"max_overhead": MAX_OVERHEAD, "guard": GUARD.as_tuple(), "subjects": {}}
    worst = 0.0
    for name, executions in SUBJECTS:
        program = bench.get(name)
        # Warm caches so the first-import cost lands outside the timed loops.
        _sample(program, 2, GUARD)
        base_steps, base_wall = _sample(program, executions, None)
        guard_steps, guard_wall = _sample(program, executions, GUARD)
        # Same seeds, same policy, untripped guard: the guarded runs execute
        # the same schedules, so steps/sec is directly comparable.
        assert guard_steps == base_steps
        base_rate = base_steps / base_wall
        guard_rate = guard_steps / guard_wall
        overhead = base_rate / guard_rate
        worst = max(worst, overhead)
        payload["subjects"][name] = {
            "executions": executions,
            "steps": base_steps,
            "steps_per_sec_off": round(base_rate, 1),
            "steps_per_sec_on": round(guard_rate, 1),
            "overhead": round(overhead, 3),
        }
    payload["worst_overhead"] = round(worst, 3)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_guard.json").write_text(json.dumps(payload, indent=2) + "\n")
    assert worst <= MAX_OVERHEAD, (
        f"runtime guard costs {worst:.2f}x executor throughput "
        f"(budget {MAX_OVERHEAD}x); see results/BENCH_guard.json"
    )
