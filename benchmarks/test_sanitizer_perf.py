"""Bench: sanitizer pipeline overhead (executor steps/sec, off vs on).

The streaming sanitizers run inline with the executor, so their cost is
pure per-event CPU.  This bench measures executor throughput with the
sanitizer stack disabled and with all three sanitizers attached, writes
``results/BENCH_sanitizer.json`` and asserts the full stack stays within
a 1.8x slowdown — the budget that keeps sanitized campaigns practical.

Plain ``time.perf_counter`` loops (not pytest-benchmark) so the numbers
are produced on every run, including CI's plain ``pytest`` invocation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import bench
from repro.analysis.online import build_stack
from repro.runtime.executor import Executor
from repro.schedulers.pos import PosPolicy

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: (subject, executions per sample) — one tiny hot program, one long one.
SUBJECTS = [("CS/account", 60), ("CS/reorder_100", 15)]
MAX_OVERHEAD = 1.8
STACK = ("race", "lockset", "lockorder")

#: Timed samples per configuration; the fastest is kept (min-wall estimator,
#: robust to GC pauses and scheduler hiccups that would skew the ratio).
SAMPLES = 3


def _sample(program, executions: int, names: tuple[str, ...]) -> tuple[int, float]:
    """Total executor steps and best wall seconds over ``executions`` runs."""
    best_steps = 0
    best_wall = float("inf")
    for _ in range(SAMPLES):
        steps = 0
        start = time.perf_counter()
        for seed in range(executions):
            sanitizers = build_stack(names) if names else None
            result = Executor(
                program,
                PosPolicy(seed),
                max_steps=program.max_steps or 20000,
                sanitizers=sanitizers,
            ).run()
            steps += result.steps
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_steps, best_wall = steps, wall
    return best_steps, best_wall


def test_sanitizer_overhead_within_budget():
    payload = {"max_overhead": MAX_OVERHEAD, "sanitizers": list(STACK), "subjects": {}}
    worst = 0.0
    for name, executions in SUBJECTS:
        program = bench.get(name)
        # Warm caches so the first-import cost lands outside the timed loops.
        _sample(program, 2, STACK)
        base_steps, base_wall = _sample(program, executions, ())
        san_steps, san_wall = _sample(program, executions, STACK)
        # Same seeds, same policy: the sanitized runs execute the same
        # schedules, so steps/sec is directly comparable.
        assert san_steps == base_steps
        base_rate = base_steps / base_wall
        san_rate = san_steps / san_wall
        overhead = base_rate / san_rate
        worst = max(worst, overhead)
        payload["subjects"][name] = {
            "executions": executions,
            "steps": base_steps,
            "steps_per_sec_off": round(base_rate, 1),
            "steps_per_sec_on": round(san_rate, 1),
            "overhead": round(overhead, 3),
        }
    payload["worst_overhead"] = round(worst, 3)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sanitizer.json").write_text(json.dumps(payload, indent=2) + "\n")
    assert worst <= MAX_OVERHEAD, (
        f"sanitizer stack costs {worst:.2f}x executor throughput "
        f"(budget {MAX_OVERHEAD}x); see results/BENCH_sanitizer.json"
    )
