"""Bench: the Section 2 worked example.

Paper claim: "RFF exposes the [reorder_100] bug in about 6 iterations in
each of the 20 trials", while POS and PCT "struggle to hit the bug in a
reasonable number of trials"."""

from __future__ import annotations

from repro import bench
from repro.core.fuzzer import fuzz
from repro.runtime.executor import Executor
from repro.schedulers.pct import PctPolicy
from repro.schedulers.pos import PosPolicy

from benchmarks.conftest import TRIALS, record_claim


def _rff_schedules_to_bug(trials: int) -> list[int]:
    program = bench.get("CS/reorder_100")
    hits = []
    for trial in range(trials):
        report = fuzz(program, max_executions=150, seed=trial, stop_on_first_crash=True)
        assert report.found_bug, f"RFF missed reorder_100 on trial {trial}"
        hits.append(report.first_crash_at)
    return hits


def test_rff_finds_reorder_100_in_few_schedules(benchmark):
    trials = max(TRIALS, 5)
    hits = benchmark.pedantic(_rff_schedules_to_bug, args=(trials,), rounds=1, iterations=1)
    mean = sum(hits) / len(hits)
    record_claim(
        f"overview (S2): RFF schedules-to-bug on reorder_100 — paper 6±4, "
        f"measured {mean:.1f} (trials: {hits})"
    )
    assert mean <= 20, f"RFF needed {mean:.1f} schedules on average; paper reports ~6"


def _baseline_misses(policy_factory, budget: int) -> int:
    program = bench.get("CS/reorder_100")
    crashes = 0
    policy = policy_factory()
    for _ in range(budget):
        result = Executor(program, policy).run()
        crashes += result.crashed
    return crashes


def test_pos_fails_on_reorder_100(benchmark):
    crashes = benchmark.pedantic(
        _baseline_misses, args=(lambda: PosPolicy(seed=1), 100), rounds=1, iterations=1
    )
    record_claim(f"overview (S2): POS on reorder_100 — paper '-', measured {crashes}/100 schedules hit")
    assert crashes == 0


def test_pct_fails_on_reorder_100(benchmark):
    # Bug depth >= 101 (Section 2): hopeless for PCT with depth 3.
    crashes = benchmark.pedantic(
        _baseline_misses, args=(lambda: PctPolicy(depth=3, seed=1), 100), rounds=1, iterations=1
    )
    record_claim(f"overview (S2): PCT3 on reorder_100 — paper 7447* (mostly missed), measured {crashes}/100 hit")
    assert crashes <= 2
