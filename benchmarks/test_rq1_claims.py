"""Bench: the RQ1 headline claims (Section 5.2).

Paper: "RFF finds bugs in the most programs on average (mu = 46.1),
followed closely by PERIOD (mu = 44.6) ... statistically significant by the
Mann-Whitney U-test (p < 0.001)"; "RFF finds bugs in significantly fewer
schedules than PERIOD on 30/49 programs, whereas PERIOD [wins] on 9/49".
"""

from __future__ import annotations

from repro.harness.reporting import significance_summary
from repro.harness.stats import mann_whitney_u

from benchmarks.conftest import record_claim


def test_rff_finds_most_bugs_on_average(campaign, benchmark):
    means = benchmark.pedantic(
        lambda: {tool: campaign.mean_bugs_found(tool) for tool in campaign.tools()},
        rounds=1,
        iterations=1,
    )
    record_claim(
        "RQ1: mean bugs found — paper RFF 46.1 / PERIOD 44.6 / PCT ~37 / QL 30.2; measured "
        + ", ".join(f"{tool} {mean:.1f}" for tool, mean in sorted(means.items()))
    )
    best = max(means, key=means.get)
    assert means["RFF"] >= 40, f"RFF found only {means['RFF']:.1f}/49 bugs"
    assert best in ("RFF", "PERIOD"), f"unexpected leader {best}"
    assert means["RFF"] >= means["POS"] + 3, "RFF should clearly beat POS"


def test_rff_vs_period_bugs_found_significance(campaign, benchmark):
    rff = campaign.bugs_found_per_trial("RFF")
    period = campaign.bugs_found_per_trial("PERIOD")
    p_value = benchmark.pedantic(mann_whitney_u, args=(rff, period), rounds=1, iterations=1)
    record_claim(
        f"RQ1: Mann-Whitney RFF vs PERIOD bugs-found — paper p < 0.001, measured p = {p_value:.4f} "
        f"(RFF per-trial {rff}, PERIOD {period[:1]}x{len(period)})"
    )
    # At laptop-scale trial counts significance is not always reachable;
    # the directional claim must still hold.
    assert sum(rff) / len(rff) >= sum(period) / len(period) - 1


def test_rff_faster_than_period_on_more_programs(campaign, benchmark):
    summary = benchmark.pedantic(
        significance_summary, args=(campaign, "RFF", "PERIOD"), rounds=1, iterations=1
    )
    record_claim(
        f"RQ1: log-rank RFF-vs-PERIOD per program — paper 30 RFF-faster / 9 PERIOD-faster; "
        f"measured {summary['a_faster']} / {summary['b_faster']} (ties {summary['ties']})"
    )
    assert summary["a_faster"] > summary["b_faster"]


def test_rff_broadly_applicable(campaign, benchmark):
    """RFF runs on all 49 programs (no Error rows), unlike GenMC."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    errors = sum(campaign.is_error("RFF", p) for p in campaign.programs())
    assert errors == 0
    record_claim("RQ1: RFF runs on 49/49 programs (0 Error rows) — matches paper")
