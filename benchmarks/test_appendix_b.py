"""Bench: the Appendix B table — mean ± std schedules-to-first-bug for
every tool on every one of the 49 programs.

Reproduced in shape, spot-checked against the paper's table on the rows
with the clearest signals (found-by-everyone, found-by-nobody, GenMC
errors, PERIOD's zero variance)."""

from __future__ import annotations

from repro.harness.reporting import appendix_b_table

from benchmarks.conftest import record_artifact, record_claim


def test_appendix_b_table(campaign, benchmark):
    table = benchmark.pedantic(appendix_b_table, args=(campaign,), rounds=1, iterations=1)
    path = record_artifact("appendix_b.txt", table)
    record_claim(f"appendix B: full table written to {path}")
    assert "CS/reorder_100" in table
    # 49 program rows + header/footer furniture.
    assert sum(1 for line in table.splitlines() if line.startswith(("CS/", "CB/", "Chess/"))) == 29


def test_nobody_finds_safestack_or_bug5(campaign, benchmark):
    """Paper: SafeStack and RADBench/bug5 rows are '-' for every tool.

    Our SafeStack model is hard (~1 crash per thousand schedules) but not
    as astronomically hard as the original, so a stray lucky trial is
    tolerated; the row must still be overwhelmingly unfound."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    details = []
    for program in ("SafeStack", "RADBench/bug5"):
        for tool in campaign.tools():
            if campaign.is_error(tool, program):
                continue
            cell = campaign.cell(tool, program)
            details.append(f"{program}/{tool}: {cell.found}/{cell.trials}")
            assert cell.found <= max(1, cell.trials // 4), (
                f"{tool} found {program} in {cell.found}/{cell.trials} trials"
            )
    record_claim(
        "appendix B: SafeStack and RADBench/bug5 essentially unfound (paper: '-' rows); "
        "found-trials per tool: " + ", ".join(details)
    )


def test_everyone_finds_aget(campaign, benchmark):
    """Paper: CB/aget-bug2 is ~1 for every tool that runs it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for tool in ("RFF", "POS", "PCT3", "PERIOD"):
        cell = campaign.cell(tool, "CB/aget-bug2")
        assert cell.found > 0
        assert cell.mean <= 30
    record_claim("appendix B: CB/aget-bug2 found quickly by all runnable tools — matches paper")


def test_genmc_error_rows(campaign, benchmark):
    """Paper: GenMC errors on 36/49 programs; ours gates the same way."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    errors = sum(campaign.is_error("GenMC", p) for p in campaign.programs())
    record_claim(f"appendix B: GenMC 'Error' rows — paper 36/49, measured {errors}/49")
    assert errors == 36


def test_period_rows_have_zero_variance(campaign, benchmark):
    """Paper: most PERIOD cells are '± 0' (systematic determinism)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for program in ("CS/reorder_10", "CS/account"):
        cell = campaign.cell("PERIOD", program)
        if cell.found:
            assert cell.std == 0
    record_claim("appendix B: PERIOD cells deterministic (± 0) — matches paper")


def test_rff_reorder_row_beats_period_and_pos(campaign, benchmark):
    """Paper reorder_50 row: PCT 12346*, PERIOD 129, RFF 6, POS '-'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rff = campaign.cell("RFF", "CS/reorder_50")
    period = campaign.cell("PERIOD", "CS/reorder_50")
    pos = campaign.cell("POS", "CS/reorder_50")
    record_claim(
        f"appendix B reorder_50 row — paper RFF 6 / PERIOD 129 / POS '-'; "
        f"measured RFF {rff.render()} / PERIOD {period.render()} / POS {pos.render()}"
    )
    assert rff.all_found and rff.mean < (period.mean or float("inf"))
    assert pos.none_found
