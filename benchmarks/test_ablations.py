"""Bench: ablations of RFF's own design choices (DESIGN.md experiment
index, 'Ablations' row) — each RffConfig knob off, on a probe set where the
paper's narrative predicts a visible effect:

* no proactive constraints  -> deep reorder bugs become unreachable (RQ2);
* no greybox feedback       -> corpus never grows, exploration skews (RQ3);
* no power schedule         -> rare rf classes get no extra energy.
"""

from __future__ import annotations

from repro import bench
from repro.core.fuzzer import RffConfig, fuzz

from benchmarks.conftest import TRIALS, record_claim

PROBES = ["CS/reorder_20", "CS/twostage_20", "CB/pbzip2-0.9.4"]
BUDGET = 300


def _schedules_to_bug(config: RffConfig, name: str, trials: int) -> list[int | None]:
    program = bench.get(name)
    return [
        fuzz(program, max_executions=BUDGET, seed=trial, config=config,
             stop_on_first_crash=True).first_crash_at
        for trial in range(trials)
    ]


def _found(counts: list[int | None]) -> int:
    return sum(1 for c in counts if c is not None)


def test_constraints_ablation(benchmark):
    trials = max(TRIALS, 3)

    def run():
        full = {n: _schedules_to_bug(RffConfig(), n, trials) for n in PROBES}
        blind = {
            n: _schedules_to_bug(RffConfig(use_constraints=False), n, trials) for n in PROBES
        }
        return full, blind

    full, blind = benchmark.pedantic(run, rounds=1, iterations=1)
    full_found = sum(_found(v) for v in full.values())
    blind_found = sum(_found(v) for v in blind.values())
    record_claim(
        f"ablation(constraints): bugs found on probe set — full RFF "
        f"{full_found}/{len(PROBES) * trials} vs constraint-blind {blind_found}"
    )
    assert full_found > blind_found, "proactive constraints must matter on deep bugs"


def test_feedback_ablation(benchmark):
    trials = max(TRIALS, 3)

    def run():
        with_feedback = _schedules_to_bug(RffConfig(), "CS/twostage_20", trials)
        without = _schedules_to_bug(RffConfig(use_feedback=False), "CS/twostage_20", trials)
        return with_feedback, without

    with_feedback, without = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"ablation(feedback): twostage_20 schedules-to-bug — with {with_feedback} "
        f"vs without {without}"
    )
    # Feedback must not lose bugs; typically it also finds them sooner.
    assert _found(with_feedback) >= _found(without)


def test_power_schedule_ablation(benchmark):
    trials = max(TRIALS, 3)

    def run():
        with_power = _schedules_to_bug(RffConfig(), "CB/pbzip2-0.9.4", trials)
        without = _schedules_to_bug(RffConfig(use_power_schedule=False), "CB/pbzip2-0.9.4", trials)
        return with_power, without

    with_power, without = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"ablation(power): pbzip2 schedules-to-bug — with {with_power} vs flat-energy {without}"
    )
    assert _found(with_power) >= _found(without) - 1


def test_mutation_cap_ablation(benchmark):
    """An over-tight constraint cap starves the search on multi-constraint
    bugs; the default cap must do at least as well as cap=1."""
    trials = max(TRIALS, 3)

    def run():
        default_cap = _schedules_to_bug(RffConfig(), "CB/pbzip2-0.9.4", trials)
        tight = _schedules_to_bug(RffConfig(max_constraints=1), "CB/pbzip2-0.9.4", trials)
        return default_cap, tight

    default_cap, tight = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"ablation(cap): pbzip2 — cap=8 {default_cap} vs cap=1 {tight} "
        "(two-constraint bug needs room to compose)"
    )
    assert _found(default_cap) >= _found(tight)
