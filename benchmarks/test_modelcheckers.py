"""Bench: the two model-checking engines vs the paper's GenMC column.

The Appendix B GenMC rows count "executions explored" — one per rf class.
We compare both of our engines on the 13-supported fragment: the gated
breadth-first enumerator (the campaign's ``GenMC`` stand-in) and the
race-reversal rf-DPOR explorer, which like GenMC derives new executions
from reads-from races instead of blind flips."""

from __future__ import annotations

from repro import bench
from repro.algos.modelcheck import ModelChecker
from repro.algos.rfdpor import RfDporExplorer

from benchmarks.conftest import record_artifact, record_claim

#: Paper GenMC cells for the supported programs (Appendix B).
PAPER_GENMC = {
    "CS/account": 5,
    "CS/bluetooth_driver": 4,
    "CS/carter01": 4,
    "CS/circular_buffer": 8,
    "CS/deadlock01": 3,
    "CS/lazy01": 5,
    "CS/queue": 22,
    "CS/stack": 20,
    "CS/token_ring": 14,
    "CS/twostage": 3,
    "CS/wronglock": 3,
    "ConVul-CVE-Benchmarks/CVE-2013-1792": 1,
    "Inspect_benchmarks/ctrace-test": 1,
}


def test_model_checkers_on_supported_fragment(benchmark):
    def run():
        rows = []
        for name in sorted(PAPER_GENMC):
            program = bench.get(name)
            gated = ModelChecker(program, max_executions=4000).check()
            dpor = RfDporExplorer(program, max_executions=4000).run()
            rows.append((name, PAPER_GENMC[name], gated.first_bug_at_class, dpor.first_bug_at))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    width = max(len(name) for name, *_ in rows) + 2
    lines = [f"{'program'.ljust(width)}{'paper':>7}{'bfs-mc':>8}{'rf-dpor':>9}"]
    for name, paper, gated, dpor in rows:
        lines.append(f"{name.ljust(width)}{paper:>7}{str(gated):>8}{str(dpor):>9}")
    record_artifact("modelcheckers.txt", "\n".join(lines))

    found_gated = sum(1 for _, _, g, _ in rows if g is not None)
    found_dpor = sum(1 for _, _, _, d in rows if d is not None)
    record_claim(
        f"model checkers: supported fragment (13 programs) — paper GenMC finds 13/13 in "
        f"1-22 classes; bfs-mc finds {found_gated}/13, rf-dpor finds {found_dpor}/13 "
        "(table in results/modelcheckers.txt)"
    )
    assert found_gated == 13
    assert found_dpor == 13
    # Paper magnitude: every bug within a few dozen rf classes.
    assert all(g <= 40 for _, _, g, _ in rows)
    assert all(d <= 40 for _, _, _, d in rows)
