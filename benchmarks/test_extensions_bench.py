"""Bench: the reproduction's extensions beyond the paper's evaluation.

* weak memory (the paper's stated future work): the store-buffer litmus and
  Dekker's algorithm are SC-safe and TSO-broken, and RFF fuzzes TSO
  executions directly;
* race-directed confirmation (the Section 6 suggestion): predicted HB races
  converted into witnessed crashes via targeted abstract schedules;
* coverage estimation: Chao1/Good-Turing richness of the rf-class space
  explored by RFF vs POS.
"""

from __future__ import annotations

from collections import Counter

from repro import bench
from repro.analysis import confirm_races
from repro.bench.extras import extras_programs
from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.harness.coverage import estimate_coverage
from repro.runtime import run_program_tso
from repro.schedulers import PosPolicy

from benchmarks.conftest import record_claim


def _extra(name: str):
    return next(p for p in extras_programs() if p.name == name)


def test_tso_exposes_dekker(benchmark):
    prog = _extra("extras/dekker")

    def run():
        return sum(
            run_program_tso(prog, PosPolicy(s), max_steps=prog.max_steps or 2000).crashed
            for s in range(150)
        )

    crashes = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"extension(weak memory): Dekker under TSO — {crashes}/150 schedules violate "
        "mutual exclusion (0/∞ under SC)"
    )
    assert crashes > 0


def test_rff_fuzzes_under_tso(benchmark):
    prog = _extra("extras/peterson")

    def run():
        fuzzer = RffFuzzer(prog, seed=3, config=RffConfig(memory_model="tso"))
        return fuzzer.run(300, stop_on_first_crash=True)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"extension(weak memory): RFF-TSO on Peterson — bug at schedule {report.first_crash_at}"
    )
    assert report.found_bug


def test_directed_confirmation_rate(benchmark):
    probe_set = ["CS/account", "CS/reorder_10", "CB/aget-bug2", "Splash2/barnes"]

    def run():
        confirmed = tried = 0
        for name in probe_set:
            results = confirm_races(bench.get(name), executions=8)
            tried += len(results)
            confirmed += sum(r.confirmed for r in results)
        return confirmed, tried

    confirmed, tried = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        f"extension(directed): {confirmed}/{tried} predicted races converted into "
        "witnessed crashes via targeted abstract schedules"
    )
    assert confirmed > 0


def test_coverage_estimates_rff_vs_pos(benchmark):
    prog = bench.get("SafeStack")
    executions = 400

    def run():
        from repro.runtime.executor import Executor

        pos_counts: Counter = Counter()
        for seed in range(executions):
            result = Executor(prog, PosPolicy(seed), max_steps=prog.max_steps or 4000).run()
            pos_counts[result.trace.rf_signature()] += 1
        fuzzer = RffFuzzer(prog, seed=0)
        report = fuzzer.run(executions)
        return estimate_coverage(pos_counts), estimate_coverage(Counter(report.signature_counts))

    pos_estimate, rff_estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    record_claim(
        "extension(coverage): SafeStack rf-class richness — "
        f"POS saw {pos_estimate.observed_classes} (chao1 {pos_estimate.estimated_classes:.0f}), "
        f"RFF saw {rff_estimate.observed_classes} (chao1 {rff_estimate.estimated_classes:.0f}); "
        f"discovery probability POS {pos_estimate.discovery_probability:.2f} vs "
        f"RFF {rff_estimate.discovery_probability:.2f}"
    )
    assert pos_estimate.executions == executions
    assert rff_estimate.executions == executions
