#!/usr/bin/env python3
"""Quickstart: find the reorder_100 bug in a handful of schedules.

This is the paper's running example (Figure 1 / Section 2): 100 setter
threads write ``(a, b) = (1, -1)`` while a checker asserts it never sees a
half-done update.  Uniform random search needs ~10^13 schedules; RFF's
reads-from-guided search needs about half a dozen.

Run:  python examples/quickstart.py
"""

from repro import bench, fuzz
from repro.runtime import run_program
from repro.schedulers import PosPolicy, ReplayPolicy


def main() -> None:
    program = bench.get("CS/reorder_100")

    print("== RFF on CS/reorder_100 ==")
    report = fuzz(program, max_executions=200, seed=42, stop_on_first_crash=True)
    print(f"bug found after {report.first_crash_at} schedules")
    crash = report.crashes[0]
    print(f"outcome: {crash.outcome} ({crash.failure})")
    print(f"abstract schedule that exposed it:\n  {crash.abstract_schedule}")

    print("\n== deterministic replay ==")
    replay = run_program(program, ReplayPolicy(list(crash.concrete_schedule)))
    print(f"replayed outcome: {replay.outcome} (reproduced: {replay.crashed})")

    print("\n== POS baseline on the same program ==")
    budget = 200
    crashed = sum(run_program(program, PosPolicy(seed)).crashed for seed in range(budget))
    print(f"POS found the bug in {crashed}/{budget} schedules "
          "(the paper's point: effectively never)")


if __name__ == "__main__":
    main()
