#!/usr/bin/env python3
"""Testing your own concurrent program with the library.

Writes a small banking service with a classic check-then-act overdraft bug,
expresses it in the runtime's generator DSL, and lets RFF hunt for the
interleaving that exposes it.  This is the workflow a downstream user
follows for any program under test.

Run:  python examples/custom_program.py
"""

from repro import fuzz, program, run_program
from repro.schedulers import ReplayPolicy


def withdraw(t, balance, lock, amount, audit):
    """Withdraw with a *racy* balance check: the lock only guards the
    update, not the check — two withdrawals can both pass the check."""
    current = yield t.read(balance)          # unprotected check ...
    if current >= amount:
        yield t.lock(lock)
        value = yield t.read(balance)
        yield t.write(balance, value - amount)   # ... protected act
        yield t.unlock(lock)
        yield t.add(audit, amount)


def auditor(t, balance, audit, opening):
    total_out = yield t.read(audit)
    remaining = yield t.read(balance)
    t.require(remaining >= 0, f"account overdrawn: balance {remaining}")
    t.require(
        total_out + remaining <= opening,
        f"money created: {total_out} out + {remaining} left > {opening}",
    )


@program("example/overdraft", bug_kinds=("assertion",))
def bank(t):
    opening = 100
    balance = t.var("balance", opening)
    audit = t.var("audit", 0)
    lock = t.mutex("account")
    w1 = yield t.spawn(withdraw, balance, lock, 70, audit)
    w2 = yield t.spawn(withdraw, balance, lock, 70, audit)
    yield t.join(w1)
    yield t.join(w2)
    yield t.spawn(auditor, balance, audit, opening)


def main() -> None:
    print("== fuzzing the overdraft service ==")
    report = fuzz(bank, max_executions=500, seed=7, stop_on_first_crash=True)
    if not report.found_bug:
        print("no bug found (try more schedules)")
        return
    crash = report.crashes[0]
    print(f"bug found after {report.first_crash_at} schedules: {crash.failure}")
    print(f"exposing abstract schedule: {crash.abstract_schedule}")

    print("\n== the crashing trace, replayed event by event ==")
    replay = run_program(bank, ReplayPolicy(list(crash.concrete_schedule)))
    print(replay.trace.format(limit=24))


if __name__ == "__main__":
    main()
