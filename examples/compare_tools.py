#!/usr/bin/env python3
"""A laptop-sized rerun of the paper's RQ1 comparison (Figure 4 in
miniature): every evaluated technique on a representative benchmark slice,
reporting schedules-to-first-bug and the cumulative-bugs curve.

Run:  python examples/compare_tools.py [--trials N] [--budget B]
"""

import argparse

from repro import bench
from repro.harness import (
    Campaign,
    CampaignConfig,
    appendix_b_table,
    figure4_ascii,
    paper_tools,
)

REPRESENTATIVE = [
    "CB/aget-bug2",                           # trivial for everyone
    "CS/account",                             # shallow lost update
    "CS/reorder_10",                          # deep for POS/PCT, easy for RFF
    "CS/reorder_50",                          # deeper still
    "CS/twostage_20",                         # lock-padded two-phase bug
    "CS/deadlock01",                          # ABBA deadlock
    "ConVul-CVE-Benchmarks/CVE-2016-9806",    # double free
    "ConVul-CVE-Benchmarks/CVE-2017-15265",   # deep use-after-free
    "Inspect_benchmarks/qsort_mt",            # lost-wakeup hang
    "Splash2/lu",                             # shallow numeric race
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--budget", type=int, default=400)
    args = parser.parse_args()

    programs = [bench.get(name) for name in REPRESENTATIVE]
    config = CampaignConfig(trials=args.trials, budget=args.budget, base_seed=2024)
    print(f"running {len(paper_tools())} tools x {len(programs)} programs x "
          f"{args.trials} trials (budget {args.budget}) ...\n")
    result = Campaign(config).run(paper_tools(), programs)

    print(appendix_b_table(result))
    print()
    print(figure4_ascii(result))
    print()
    for tool in result.tools():
        print(f"{tool:14s} mean bugs found: {result.mean_bugs_found(tool):.1f}/{len(programs)}")


if __name__ == "__main__":
    main()
