#!/usr/bin/env python3
"""The paper's future-work direction, implemented: fuzzing under x86-TSO.

Section 4.1 of the paper assumes sequential consistency and explicitly
defers weak-memory behaviours to future work.  This example runs the
classic store-buffer litmus test (Dekker's core) under both memory models:

* under SC the "both threads read 0" outcome is impossible — no scheduler
  can reach it;
* under x86-TSO each thread's store can linger in its store buffer past
  the other thread's read, and RFF — with flush points exposed to the
  scheduler as ordinary events — finds the reordering in a few schedules.

Run:  python examples/weak_memory.py
"""

from repro import fuzz, program
from repro.core.fuzzer import RffConfig
from repro.runtime import run_program, run_program_tso
from repro.schedulers import PosPolicy


def flag_left(t, x, y, result):
    yield t.write(x, 1)          # my flag up ...
    seen = yield t.read(y)       # ... did the other side raise theirs?
    yield t.write(result, seen)


def flag_right(t, x, y, result):
    yield t.write(y, 1)
    seen = yield t.read(x)
    yield t.write(result, seen)


@program("example/store_buffer", bug_kinds=("assertion",))
def store_buffer(t):
    x = t.var("x", 0)
    y = t.var("y", 0)
    r1 = t.var("r1", -1)
    r2 = t.var("r2", -1)
    h1 = yield t.spawn(flag_left, x, y, r1)
    h2 = yield t.spawn(flag_right, x, y, r2)
    yield t.join(h1)
    yield t.join(h2)
    a = yield t.read(r1)
    b = yield t.read(r2)
    # Mutual exclusion reasoning that is sound under SC and broken on TSO.
    t.require(not (a == 0 and b == 0), "both critical sections entered")


def main() -> None:
    budget = 300
    print(f"== store-buffer litmus, {budget} random schedules per model ==")
    sc = sum(run_program(store_buffer, PosPolicy(seed)).crashed for seed in range(budget))
    tso = sum(run_program_tso(store_buffer, PosPolicy(seed)).crashed for seed in range(budget))
    print(f"SC : {sc}/{budget} schedules violate the assertion (expected 0)")
    print(f"TSO: {tso}/{budget} schedules violate the assertion")

    print("\n== RFF under TSO ==")
    report = fuzz(
        store_buffer,
        max_executions=300,
        seed=1,
        config=RffConfig(memory_model="tso"),
        stop_on_first_crash=True,
    )
    print(f"bug found after {report.first_crash_at} schedules")
    crash = report.crashes[0]
    print(f"failure: {crash.failure}")
    print(f"abstract schedule: {crash.abstract_schedule}")


if __name__ == "__main__":
    main()
