#!/usr/bin/env python3
"""RQ3 in miniature (the paper's Figure 5): how evenly do POS and RFF
explore the reads-from space of SafeStack, the hardest subject in the
benchmark suite?

Under plain POS a single rf signature dominates the campaign; RFF's
greybox feedback and power schedule flatten the distribution, spending the
budget on rarely-seen reads-from combinations instead.

Run:  python examples/explore_safestack.py [--executions N]
"""

import argparse

from repro import bench
from repro.harness import figure5_ascii, rf_distribution_pos, rf_distribution_rff


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--executions", type=int, default=1000)
    parser.add_argument("--program", default="SafeStack")
    args = parser.parse_args()

    program = bench.get(args.program)
    print(f"running POS and RFF for {args.executions} schedules each on {program.name} ...\n")

    pos = rf_distribution_pos(program, executions=args.executions, seed=0)
    rff = rf_distribution_rff(program, executions=args.executions, seed=0)

    print(figure5_ascii(pos))
    print()
    print(figure5_ascii(rff))
    print()
    print(f"top-signature share:  POS {pos.top_share:.1%}  vs  RFF {rff.top_share:.1%}")
    print(f"gini (skew, lower=more even):  POS {pos.gini():.3f}  vs  RFF {rff.gini():.3f}")
    print(f"unique rf signatures explored: POS {pos.unique_signatures}  vs  RFF {rff.unique_signatures}")


if __name__ == "__main__":
    main()
