#!/usr/bin/env python3
"""Auditing a thread-pool server model end to end.

A miniature connection-handling subsystem — listener, two pool workers, a
shared connection table and an idle-reaper — with the classic double-close
defect: the reaper and a worker can both tear down the same connection.
The script runs the full workflow a maintainer would:

1. fuzz the schedule space with RFF until the crash appears;
2. minimize the crashing abstract schedule to its essential constraints;
3. run the dynamic analyses (races, lock discipline, deadlock prediction);
4. use race-directed confirmation to rediscover the bug from a prediction.

Run:  python examples/server_audit.py
"""

from repro import fuzz, program, run_program
from repro.analysis import check_lock_discipline, confirm_races, find_races, predict_deadlocks
from repro.core.minimize import minimize_schedule
from repro.schedulers import PosPolicy, ReplayPolicy


def listener(t, conn, state, accepted):
    """Accepts one connection and publishes it in the table."""
    yield t.heap_write(conn, "fd", 7)
    yield t.write(state, 1)  # 1 = live
    yield t.write(accepted, 1)


def worker(t, conn, state, lock, served):
    """Serves the connection, then closes it if still live."""
    ready = yield t.read(state)
    if ready != 1:
        return
    yield t.heap_read(conn, "fd")
    yield t.add(served, 1)
    # Bug: the liveness check and the close are not atomic — the reaper
    # can slip in between.
    still_live = yield t.read(state)
    if still_live == 1:
        yield t.lock(lock)
        yield t.free(conn)
        yield t.write(state, 2)  # 2 = closed
        yield t.unlock(lock)


def reaper(t, conn, state, lock):
    """Reaps idle connections; uses the same racy check-then-close."""
    live = yield t.read(state)
    if live == 1:
        yield t.lock(lock)
        yield t.free(conn)
        yield t.write(state, 2)
        yield t.unlock(lock)


@program("example/server", bug_kinds=("double-free",))
def server(t):
    conn = yield t.malloc("conn", fd=0)
    state = t.var("conn_state", 0)
    accepted = t.var("accepted", 0)
    served = t.var("served", 0)
    lock = t.mutex("table")
    l = yield t.spawn(listener, conn, state, accepted)
    w = yield t.spawn(worker, conn, state, lock, served)
    r = yield t.spawn(reaper, conn, state, lock)
    yield t.join(l)
    yield t.join(w)
    yield t.join(r)


def main() -> None:
    print("== 1. fuzzing the server's schedule space ==")
    report = fuzz(server, max_executions=2000, seed=11, stop_on_first_crash=True)
    if not report.found_bug:
        print("no crash found; try a larger budget")
        return
    crash = report.crashes[0]
    print(f"crash after {report.first_crash_at} schedules: {crash.outcome}")
    print(f"  {crash.failure}")

    print("\n== 2. minimizing the crashing abstract schedule ==")
    if len(crash.abstract_schedule) == 0:
        print("the crash needed no constraints at all (an unconstrained "
              "schedule already hits it) — nothing to minimize")
    else:
        outcome = minimize_schedule(server, crash.abstract_schedule)
        print(f"{len(outcome.original)} -> {len(outcome.minimized)} constraints "
              f"(reproduces {outcome.reproduction_rate:.0%}):")
        print(f"  {outcome.minimized}")

    print("\n== 3. dynamic analyses on a passing schedule ==")
    passing = None
    for seed in range(100):
        candidate = run_program(server, PosPolicy(seed))
        if not candidate.crashed:
            passing = candidate
            break
    assert passing is not None
    races = find_races(passing.trace)
    print(f"happens-before races: {sorted(races.racy_locations) or 'none'}")
    discipline = check_lock_discipline(passing.trace)
    print(f"lock-discipline violations: {sorted(discipline.flagged_locations) or 'none'}")
    deadlocks = predict_deadlocks(passing.trace)
    print(f"predicted deadlock cycles: {len(deadlocks)}")

    print("\n== 4. race-directed confirmation ==")
    for result in confirm_races(server, executions=10):
        status = f"CONFIRMED ({result.crash_outcome})" if result.confirmed else "not confirmed"
        print(f"  race on {result.location}: {status} after {result.schedules_tried} schedules")

    print("\n== 5. deterministic replay of the original crash ==")
    replay = run_program(server, ReplayPolicy(list(crash.concrete_schedule)))
    print(f"replayed outcome: {replay.outcome} (matches: {replay.outcome == crash.outcome})")


if __name__ == "__main__":
    main()
