"""Tool adapters, campaigns and report rendering."""

from __future__ import annotations

import pytest

from repro import bench
from repro.harness.campaign import Campaign, CampaignConfig, CampaignResult
from repro.harness.reporting import (
    appendix_b_table,
    figure4_ascii,
    figure4_series,
    figure5_ascii,
    rf_distribution_pos,
    rf_distribution_rff,
    significance_summary,
)
from repro.harness.tools import (
    GenMcTool,
    PeriodTool,
    RffTool,
    pct_tool,
    pos_tool,
    qlearning_tool,
    random_tool,
)

from tests.conftest import make_reorder


@pytest.fixture(scope="module")
def mini_campaign():
    programs = [bench.get("CS/account"), bench.get("CS/reorder_10"), bench.get("Splash2/lu")]
    tools = [RffTool(), pos_tool(), PeriodTool(), GenMcTool()]
    config = CampaignConfig(trials=3, budget=200, base_seed=7)
    return Campaign(config).run(tools, programs)


class TestToolAdapters:
    def test_rff_tool_reports_schedules_to_bug(self):
        result = RffTool().find_bug(bench.get("CS/account"), budget=300, seed=0)
        assert result.found and result.schedules_to_bug >= 1
        assert result.tool == "RFF"

    def test_pos_tool_on_shallow_bug(self):
        result = pos_tool().find_bug(bench.get("CS/account"), budget=300, seed=0)
        assert result.found

    def test_pos_tool_misses_reorder_100(self):
        result = pos_tool().find_bug(bench.get("CS/reorder_100"), budget=50, seed=0)
        assert not result.found
        assert result.executions == 50

    def test_pct_tool_named_by_depth(self):
        assert pct_tool(3).name == "PCT3"
        assert pct_tool(5).name == "PCT5"

    def test_qlearning_tool_persists_learning(self):
        result = qlearning_tool().find_bug(make_reorder(2), budget=500, seed=1)
        assert result.tool == "QLearning RF"

    def test_random_tool_runs(self):
        result = random_tool().find_bug(bench.get("CS/account"), budget=200, seed=0)
        assert result.executions <= 200

    def test_period_tool_deterministic_flag(self):
        assert PeriodTool().deterministic

    def test_genmc_tool_errors_on_unsupported(self):
        result = GenMcTool().find_bug(bench.get("CS/reorder_100"), budget=100, seed=0)
        assert result.error is not None
        assert not result.found

    def test_genmc_tool_checks_supported(self):
        result = GenMcTool().find_bug(bench.get("CS/account"), budget=20_000, seed=0)
        assert result.found


class TestCampaign:
    def test_result_dimensions(self, mini_campaign):
        assert set(mini_campaign.tools()) == {"RFF", "POS", "PERIOD", "GenMC"}
        assert len(mini_campaign.programs()) == 3

    def test_trials_replicated_for_deterministic_tools(self, mini_campaign):
        assert len(mini_campaign.trials("PERIOD", "CS/account")) == 3
        values = {r.schedules_to_bug for r in mini_campaign.trials("PERIOD", "CS/account")}
        assert len(values) == 1  # the ± 0 rows

    def test_randomized_tools_vary(self, mini_campaign):
        rff = mini_campaign.schedules_to_bug("RFF", "CS/account")
        assert len(rff) == 3

    def test_rff_finds_reorder_pos_does_not(self, mini_campaign):
        assert mini_campaign.cell("RFF", "CS/reorder_10").found == 3
        assert mini_campaign.cell("POS", "CS/reorder_10").found == 0

    def test_mean_bugs_found_ordering(self, mini_campaign):
        assert mini_campaign.mean_bugs_found("RFF") >= mini_campaign.mean_bugs_found("POS")

    def test_genmc_error_cell(self, mini_campaign):
        assert mini_campaign.is_error("GenMC", "CS/reorder_10")
        assert not mini_campaign.is_error("GenMC", "CS/account")

    def test_cumulative_curve_monotone(self, mini_campaign):
        curve = mini_campaign.cumulative_curve("RFF")
        assert curve == sorted(curve)
        schedules = [s for s, _ in curve]
        assert schedules == sorted(schedules)

    def test_one_shot_wins_counted(self, mini_campaign):
        assert mini_campaign.one_shot_wins("RFF") >= 0

    def test_budget_override(self):
        config = CampaignConfig(trials=1, budget=100, budget_overrides={"CS/account": 5})
        assert config.budget_for("CS/account") == 5
        assert config.budget_for("CS/queue") == 100


class TestReporting:
    def test_appendix_b_table_renders_all_cells(self, mini_campaign):
        table = appendix_b_table(mini_campaign)
        assert "CS/account" in table
        assert "Error" in table  # GenMC on reorder_10
        assert "mean bugs found" in table

    def test_figure4_series_per_tool(self, mini_campaign):
        series = figure4_series(mini_campaign)
        assert "RFF" in series and series["RFF"]

    def test_figure4_ascii_renders(self, mini_campaign):
        art = figure4_ascii(mini_campaign)
        assert "cumulative bugs" in art
        assert "RFF" in art

    def test_significance_summary_shape(self, mini_campaign):
        summary = significance_summary(mini_campaign, "RFF", "POS")
        assert set(summary) == {"a_faster", "b_faster", "ties"}
        assert sum(summary.values()) == len(mini_campaign.programs())


class TestFigure5Distributions:
    def test_pos_distribution(self):
        prog = make_reorder(3)
        dist = rf_distribution_pos(prog, executions=100, seed=0)
        assert dist.executions == 100
        assert sum(dist.counts) == 100
        assert dist.counts == sorted(dist.counts, reverse=True)

    def test_rff_distribution(self):
        prog = make_reorder(3)
        dist = rf_distribution_rff(prog, executions=100, seed=0)
        assert sum(dist.counts) == 100

    def test_gini_bounds(self):
        prog = make_reorder(3)
        dist = rf_distribution_pos(prog, executions=60, seed=1)
        assert 0.0 <= dist.gini() <= 1.0

    def test_figure5_ascii_renders(self):
        prog = make_reorder(3)
        dist = rf_distribution_pos(prog, executions=60, seed=2)
        art = figure5_ascii(dist)
        assert "rf signatures" in art
        assert "#" in art

    def test_feedback_flattens_exploration(self):
        """RQ3 in miniature: RFF's power schedule yields a less skewed
        rf-signature distribution than POS on the same budget."""
        prog = bench.get("SafeStack")
        pos = rf_distribution_pos(prog, executions=150, seed=3)
        rff = rf_distribution_rff(prog, executions=150, seed=3)
        assert rff.gini() <= pos.gini() + 0.05
