"""Coverage of smaller API surfaces: reporting corners, program metadata,
common bench helpers, exploration guards, CLI replay/analyze."""

from __future__ import annotations

import pytest

from repro.harness.campaign import CampaignConfig, CampaignResult
from repro.harness.reporting import figure4_ascii
from repro.runtime import program, run_program
from repro.runtime.program import Program
from repro.schedulers import PosPolicy, RandomWalkPolicy


class TestProgramMetadata:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Program(name="", main=lambda t: iter(()))

    def test_suite_derived_from_name(self):
        @program("Foo/bar")
        def prog(t):
            yield t.pause()

        assert prog.suite == "Foo"

    def test_description_from_docstring(self):
        @program("t/docd")
        def prog(t):
            """Does something."""
            yield t.pause()

        assert prog.description == "Does something."

    def test_has_bug_flag(self):
        @program("t/buggy", bug_kinds=("assertion",))
        def buggy(t):
            yield t.pause()

        @program("t/clean")
        def clean(t):
            yield t.pause()

        assert buggy.has_bug and not clean.has_bug

    def test_str_is_name(self):
        @program("t/named")
        def prog(t):
            yield t.pause()

        assert str(prog) == "t/named"


class TestCommonHelpers:
    def test_locked_read_returns_value(self):
        from repro.bench.common import locked_read, locked_write

        @program("t/lockedrw")
        def prog(t):
            m = t.mutex("m")
            x = t.var("x", 0)
            yield from locked_write(t, m, x, 9)
            value = yield from locked_read(t, m, x)
            t.require(value == 9)

        assert not run_program(prog, RandomWalkPolicy(0)).crashed

    def test_locked_add_returns_new_value(self):
        from repro.bench.common import locked_add

        @program("t/lockedadd")
        def prog(t):
            m = t.mutex("m")
            x = t.var("x", 10)
            new = yield from locked_add(t, m, x, 5)
            t.require(new == 15)

        assert not run_program(prog, RandomWalkPolicy(0)).crashed

    def test_spawn_all_returns_handles(self):
        from repro.bench.common import join_all, spawn_all

        @program("t/spawnall")
        def prog(t):
            def worker(t, x):
                yield t.add(x, 1)

            x = t.var("x", 0)
            handles = yield from spawn_all(t, worker, 4, x)
            t.require(len(handles) == 4)
            yield from join_all(t, handles)

        assert not run_program(prog, RandomWalkPolicy(0)).crashed

    def test_busywork_emits_reads(self):
        from repro.bench.common import busywork

        @program("t/busy")
        def prog(t):
            x = t.var("x", 0)
            yield from busywork(t, x, 5)

        result = run_program(prog, RandomWalkPolicy(0))
        assert sum(1 for e in result.trace if e.kind == "r") == 5


class TestReportingCorners:
    def test_figure4_ascii_empty_campaign(self):
        empty = CampaignResult(config=CampaignConfig(trials=1, budget=10))
        assert "no bugs" in figure4_ascii(empty)

    def test_summary_cell_star_rendering(self):
        from repro.harness.stats import summarize

        cell = summarize([3, None])
        rendered = cell.render()
        assert rendered.startswith("3") and rendered.endswith("*")


class TestExplorationGuards:
    def test_max_frontier_bounds_memory(self, reorder3):
        from repro.algos.exploration import StatelessExplorer

        explorer = StatelessExplorer(reorder3, max_executions=50, max_frontier=5)
        report = explorer.run()
        assert report.executions <= 50

    def test_script_policy_ignores_disabled_tid(self, reorder3):
        from repro.algos.exploration import ScriptPolicy

        # tid 99 never exists: policy must fall back to defaults throughout.
        policy = ScriptPolicy((99, 99, 99))
        result = run_program(reorder3, policy)
        assert result.steps > 0


class TestCliExtras:
    def test_replay_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["fuzz", "CS/account", "--budget", "300", "--seed", "1",
             "--save-crashes", str(tmp_path)]
        )
        assert code == 0
        crash_file = tmp_path / "crash-000.json"
        assert crash_file.exists()
        capsys.readouterr()
        assert main(["replay", str(crash_file), "--trace", "4"]) == 0
        out = capsys.readouterr().out
        assert "replayed: assertion" in out

    def test_analyze_command(self, capsys):
        from repro.cli import main

        assert main(["analyze", "CS/account", "--executions", "8"]) == 0
        out = capsys.readouterr().out
        assert "happens-before races" in out
        assert "var:balance" in out

    def test_fuzz_minimize_flag(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "CS/reorder_5", "--budget", "300", "--minimize"]) == 0
        out = capsys.readouterr().out
        assert "minimized schedule" in out

    def test_fuzz_tso_flag(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "CS/account", "--budget", "50", "--memory-model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "memory model:       tso" in out


class TestExecutorIntrospection:
    def test_thread_counts(self, reorder3):
        from repro.runtime.executor import Executor

        executor = Executor(reorder3, PosPolicy(0))
        executor.run()
        assert executor.thread_count() == 5  # main + 3 setters + checker
        assert executor.live_thread_count() in (0, 1)

    def test_last_write_event_tracking(self):
        from repro.runtime.executor import Executor

        @program("t/lw")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)

        executor = Executor(prog, PosPolicy(0))
        executor.run()
        last = executor.last_write_event("var:x")
        assert last is not None and last.value == 2
        assert executor.last_write_eid("var:x") == last.eid
        assert executor.last_write_eid("var:nonexistent") == 0
