"""The race-reversal rf-DPOR explorer."""

from __future__ import annotations

import pytest

from repro import bench
from repro.algos.rfdpor import (
    RfDporExplorer,
    concrete_rf_signature,
    dependency_clocks,
    immediate_races,
    reversal_seed,
)
from repro.runtime import program, run_program
from repro.schedulers import PosPolicy

from tests.conftest import make_reorder


class TestDependencyClocks:
    def test_program_order_is_respected(self, sequential):
        trace = run_program(sequential, PosPolicy(0)).trace
        clocks = dependency_clocks(trace)
        for earlier, later in zip(trace.events, trace.events[1:]):
            assert clocks[earlier.eid].leq(clocks[later.eid])

    def test_conflicting_accesses_ordered(self, racy_counter):
        trace = run_program(racy_counter, PosPolicy(1)).trace
        clocks = dependency_clocks(trace)
        accesses = [e for e in trace.events if e.location == "var:x"]
        for first, second in zip(accesses, accesses[1:]):
            if first.is_write or second.is_write:
                assert clocks[first.eid].leq(clocks[second.eid])

    def test_independent_threads_unordered(self):
        @program("t/independent")
        def prog(t):
            def worker(t, x):
                yield t.write(x, 1)

            a = t.var("a", 0)
            b = t.var("b", 0)
            h1 = yield t.spawn(worker, a)
            h2 = yield t.spawn(worker, b)
            yield t.join(h1)
            yield t.join(h2)

        trace = run_program(prog, PosPolicy(0)).trace
        clocks = dependency_clocks(trace)
        write_a = next(e for e in trace if e.location == "var:a")
        write_b = next(e for e in trace if e.location == "var:b")
        assert not clocks[write_a.eid].leq(clocks[write_b.eid])
        assert not clocks[write_b.eid].leq(clocks[write_a.eid])


class TestRaceEnumeration:
    def test_racy_counter_has_races(self, racy_counter):
        trace = run_program(racy_counter, PosPolicy(0)).trace
        races = immediate_races(trace)
        assert any(a.location == "var:x" for a, _ in races)

    def test_race_pairs_conflict(self, reorder3):
        trace = run_program(reorder3, PosPolicy(0)).trace
        for first, second in immediate_races(trace):
            assert first.location == second.location
            assert first.tid != second.tid
            assert first.is_write or second.is_write
            assert first.eid < second.eid

    def test_reversal_seed_shape(self, racy_counter):
        trace = run_program(racy_counter, PosPolicy(0)).trace
        clocks = dependency_clocks(trace)
        races = immediate_races(trace)
        first, second = races[0]
        seed = reversal_seed(trace, clocks, first, second)
        assert seed[-1] == second.tid
        assert len(seed) < len(trace)


class TestConcreteSignature:
    def test_differs_across_rf_classes(self, reorder3):
        signatures = {
            concrete_rf_signature(run_program(reorder3, PosPolicy(s)).trace) for s in range(30)
        }
        assert len(signatures) >= 3

    def test_stable_for_identical_runs(self, reorder3):
        a = concrete_rf_signature(run_program(reorder3, PosPolicy(5)).trace)
        b = concrete_rf_signature(run_program(reorder3, PosPolicy(5)).trace)
        assert a == b


class TestExplorer:
    @pytest.mark.parametrize(
        "name",
        ["CS/account", "CS/deadlock01", "CS/queue", "CS/twostage", "CS/lazy01", "CS/wronglock"],
    )
    def test_finds_bugs_in_mc_supported_programs(self, name):
        report = RfDporExplorer(bench.get(name), max_executions=4000).run()
        assert report.found_bug, name
        assert report.first_bug_at <= 30, f"{name}: class {report.first_bug_at}"

    def test_finds_reorder_family_in_few_classes(self):
        for n in (2, 3, 5):
            report = RfDporExplorer(make_reorder(n), max_executions=4000).run()
            assert report.found_bug
            assert report.first_bug_at <= 10

    def test_bug_free_program_verified_complete(self, racefree):
        report = RfDporExplorer(racefree, max_executions=8000, stop_on_first_bug=False).run()
        assert not report.found_bug
        assert report.complete

    def test_deterministic(self, reorder3):
        a = RfDporExplorer(reorder3, max_executions=2000).run()
        b = RfDporExplorer(reorder3, max_executions=2000).run()
        assert (a.first_bug_at, a.executions, a.rf_classes) == (
            b.first_bug_at,
            b.executions,
            b.rf_classes,
        )

    def test_classes_never_exceed_executions(self, reorder3):
        report = RfDporExplorer(reorder3, max_executions=500, stop_on_first_bug=False).run()
        assert report.rf_classes <= report.executions

    def test_budget_respected(self):
        report = RfDporExplorer(make_reorder(6), max_executions=7, stop_on_first_bug=False).run()
        assert report.executions <= 7
