"""The proactive reads-from scheduler (Figure 2 state machines).

These tests drive real executions: given a positive (or negative)
constraint, the RFF policy must steer the schedule into (or away from) the
corresponding reads-from pair on virtually every seed, where plain POS only
hits it with the baseline probability.
"""

from __future__ import annotations

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.proactive import (
    Bias,
    NegativeTracker,
    PositiveTracker,
    RffSchedulerPolicy,
    TrackerState,
    make_tracker,
)
from repro.runtime import program, run_program
from repro.schedulers import PosPolicy


def _w1(t, x):
    yield t.write(x, 1)


def _w2(t, x):
    yield t.write(x, 2)


def _reader(t, x, out):
    value = yield t.read(x)
    yield t.write(out, value)


@program("t/two_writers")
def two_writers(t):
    x = t.var("x", 0)
    out = t.var("out", -1)
    h1 = yield t.spawn(_w1, x)
    h2 = yield t.spawn(_w2, x)
    h3 = yield t.spawn(_reader, x, out)
    yield t.join(h1)
    yield t.join(h2)
    yield t.join(h3)


def abstract_events():
    """Collect the reader/writer abstract events from one execution."""
    trace = run_program(two_writers, PosPolicy(0)).trace
    by_loc = {}
    for event in trace:
        if event.location == "var:x":
            by_loc[event.loc.split(":")[0]] = event.abstract
    return by_loc["_w1"], by_loc["_w2"], by_loc["_reader"]


def observed_value(result):
    """The value the reader forwarded to ``out``."""
    out_writes = [e for e in result.trace if e.location == "var:out" and e.kind == "w"]
    return out_writes[-1].value if out_writes else None


class TestPositiveConstraintScheduling:
    def test_positive_constraint_forces_target_write(self):
        w1, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w2))
        values = [
            observed_value(run_program(two_writers, RffSchedulerPolicy(alpha, seed=s)))
            for s in range(30)
        ]
        # The reader must observe w2's value on (virtually) every schedule.
        assert values.count(2) >= 28

    def test_other_positive_target(self):
        w1, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w1))
        values = [
            observed_value(run_program(two_writers, RffSchedulerPolicy(alpha, seed=s)))
            for s in range(30)
        ]
        assert values.count(1) >= 28

    def test_initial_value_constraint(self):
        _, _, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, None))
        values = [
            observed_value(run_program(two_writers, RffSchedulerPolicy(alpha, seed=s)))
            for s in range(30)
        ]
        assert values.count(0) >= 28

    def test_pos_baseline_is_spread_out(self):
        values = [observed_value(run_program(two_writers, PosPolicy(s))) for s in range(60)]
        # All three reads-from options occur under POS: no single option
        # should dominate the way a constraint forces it to.
        assert len({0, 1, 2} & set(values)) == 3


class TestNegativeConstraintScheduling:
    def test_negative_constraint_avoids_write(self):
        w1, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w2, positive=False))
        values = [
            observed_value(run_program(two_writers, RffSchedulerPolicy(alpha, seed=s)))
            for s in range(30)
        ]
        assert 2 not in values

    def test_negative_initial_constraint_forces_some_write(self):
        _, _, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, None, positive=False))
        values = [
            observed_value(run_program(two_writers, RffSchedulerPolicy(alpha, seed=s)))
            for s in range(30)
        ]
        assert 0 not in values


class TestTrackerStates:
    def test_factory_dispatch(self):
        _, w2, reader = abstract_events()
        assert isinstance(make_tracker(Constraint(reader, w2)), PositiveTracker)
        assert isinstance(make_tracker(Constraint(reader, w2, positive=False)), NegativeTracker)

    def test_positive_tracker_reaches_satisfied(self):
        _, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w2))
        policy = RffSchedulerPolicy(alpha, seed=1)
        run_program(two_writers, policy)
        assert policy.trackers[0].state is TrackerState.SATISFIED

    def test_satisfaction_counts(self):
        _, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w2))
        policy = RffSchedulerPolicy(alpha, seed=1)
        run_program(two_writers, policy)
        assert policy.satisfaction() == (1, 1)

    def test_negative_tracker_survives_unviolated(self):
        _, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(Constraint(reader, w2, positive=False))
        policy = RffSchedulerPolicy(alpha, seed=1)
        run_program(two_writers, policy)
        assert policy.trackers[0].state is TrackerState.ACTIVE
        assert policy.satisfaction() == (1, 1)

    def test_impossible_positive_init_constraint(self):
        @program("t/forced_write")
        def forced(t):
            x = t.var("x", 0)
            yield t.write(x, 5)
            yield t.read(x)

        trace = run_program(forced, PosPolicy(0)).trace
        read = next(e for e in trace if e.kind == "r").abstract
        alpha = AbstractSchedule.of(Constraint(read, None))
        policy = RffSchedulerPolicy(alpha, seed=0)
        run_program(forced, policy)
        # Single-threaded: the write always precedes the read, so the
        # initial-value constraint becomes impossible (q -> IMPOSSIBLE).
        assert policy.trackers[0].state is TrackerState.IMPOSSIBLE
        assert policy.satisfaction() == (0, 1)

    def test_forced_violation_of_negative_constraint(self):
        @program("t/forced_read")
        def forced(t):
            x = t.var("x", 0)
            yield t.write(x, 5)
            yield t.read(x)

        trace = run_program(forced, PosPolicy(0)).trace
        read = next(e for e in trace if e.kind == "r").abstract
        write = next(e for e in trace if e.kind == "w").abstract
        alpha = AbstractSchedule.of(Constraint(read, write, positive=False))
        policy = RffSchedulerPolicy(alpha, seed=0)
        run_program(forced, policy)
        # Only one thread is runnable: the REJECT transition fires.
        assert policy.trackers[0].state is TrackerState.VIOLATED
        assert policy.satisfaction() == (0, 1)


class TestGracefulDegradation:
    def test_empty_schedule_behaves_like_pos(self):
        policy = RffSchedulerPolicy(AbstractSchedule.empty(), seed=3)
        result = run_program(two_writers, policy)
        assert not result.truncated
        assert policy.satisfaction() == (0, 0)

    def test_conflicting_constraints_still_terminate(self):
        w1, w2, reader = abstract_events()
        alpha = AbstractSchedule.of(
            Constraint(reader, w1),
            Constraint(reader, w2),  # the reader cannot satisfy both
        )
        for seed in range(10):
            result = run_program(two_writers, RffSchedulerPolicy(alpha, seed=seed))
            assert not result.truncated

    def test_bias_enum_values(self):
        assert Bias.PRIORITIZE.value == 1
        assert Bias.NEUTRAL.value == 0
        assert Bias.DEPRIORITIZE.value == -1
