"""Trace analyses: vector clocks, HB race detection, locksets, lock graphs."""

from __future__ import annotations

import pytest

from repro.analysis import (
    VectorClock,
    check_lock_discipline,
    concurrent,
    find_races,
    predict_deadlocks,
)
from repro.runtime import program, run_program
from repro.schedulers import PosPolicy, RandomWalkPolicy


def trace_of(prog, seed=0, policy=None):
    return run_program(prog, policy or PosPolicy(seed)).trace


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock()
        clock.tick(3)
        clock.tick(3)
        assert clock.get(3) == 2
        assert clock.get(1) == 0

    def test_join_is_pointwise_max(self):
        a = VectorClock({1: 5, 2: 1})
        b = VectorClock({1: 2, 3: 4})
        a.join(b)
        assert a.get(1) == 5 and a.get(2) == 1 and a.get(3) == 4

    def test_leq_and_concurrency(self):
        lo = VectorClock({1: 1})
        hi = VectorClock({1: 2, 2: 1})
        assert lo.leq(hi)
        assert not hi.leq(lo)
        assert not concurrent(lo, hi)
        assert concurrent(VectorClock({1: 1}), VectorClock({2: 1}))

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1 and b.get(1) == 2

    def test_equality(self):
        assert VectorClock({1: 2}) == VectorClock({1: 2, 2: 0})
        assert VectorClock({1: 2}) != VectorClock({1: 3})


class TestHbRaces:
    def test_racy_counter_flagged(self, racy_counter):
        # Under any schedule, the two unprotected RMW sequences race.
        report = find_races(trace_of(racy_counter, seed=1))
        assert report.racy_locations == {"var:x"}

    def test_locked_counter_clean(self, racefree):
        for seed in range(10):
            report = find_races(trace_of(racefree, seed))
            assert len(report) == 0, f"false positive under seed {seed}"

    def test_join_orders_parent_reads(self):
        @program("t/joinhb")
        def prog(t):
            def child(t, x):
                yield t.write(x, 1)

            x = t.var("x", 0)
            handle = yield t.spawn(child, x)
            yield t.join(handle)
            yield t.read(x)  # ordered by join: not a race

        for seed in range(10):
            assert len(find_races(trace_of(prog, seed))) == 0

    def test_spawn_orders_child_against_parent_prefix(self):
        @program("t/spawnhb")
        def prog(t):
            def child(t, x):
                yield t.read(x)

            x = t.var("x", 0)
            yield t.write(x, 1)  # before spawn: ordered
            yield t.spawn(child, x)

        for seed in range(10):
            assert len(find_races(trace_of(prog, seed))) == 0

    def test_unordered_write_read_flagged(self):
        @program("t/racewr", bug_kinds=())
        def prog(t):
            def reader(t, x):
                yield t.read(x)

            x = t.var("x", 0)
            yield t.spawn(reader, x)
            yield t.write(x, 1)

        report = find_races(trace_of(prog, seed=3))
        assert report.racy_locations == {"var:x"}
        assert all(r.kind in ("read-write", "write-read", "write-write") for r in report)

    def test_atomic_rmw_not_flagged(self):
        @program("t/atomics")
        def prog(t):
            def worker(t, x):
                yield t.add(x, 1)

            x = t.var("x", 0)
            h1 = yield t.spawn(worker, x)
            h2 = yield t.spawn(worker, x)
            yield t.join(h1)
            yield t.join(h2)

        for seed in range(10):
            assert len(find_races(trace_of(prog, seed))) == 0

    def test_condvar_signal_orders_waiter(self):
        @program("t/cvhb")
        def prog(t):
            def consumer(t, m, c, ready, data):
                yield t.lock(m)
                ok = yield t.read(ready)
                if not ok:
                    yield t.wait(c, m)
                yield t.unlock(m)
                yield t.read(data)  # ordered after producer's write

            def producer(t, m, c, ready, data):
                yield t.write(data, 1)
                yield t.lock(m)
                yield t.write(ready, 1)
                yield t.signal(c)
                yield t.unlock(m)

            m = t.mutex("m")
            c = t.cond("c")
            ready = t.var("ready", 0)
            data = t.var("data", 0)
            h1 = yield t.spawn(consumer, m, c, ready, data)
            h2 = yield t.spawn(producer, m, c, ready, data)
            yield t.join(h1)
            yield t.join(h2)

        for seed in range(20):
            report = find_races(trace_of(prog, seed))
            assert "var:data" not in report.racy_locations, f"seed {seed}"

    def test_race_detected_even_on_passing_schedule(self, racy_counter):
        # The whole point of dynamic analysis: the observed run need not
        # crash for the race to be implicated.
        for seed in range(50):
            result = run_program(racy_counter, RandomWalkPolicy(seed))
            if not result.crashed:
                assert len(find_races(result.trace)) > 0
                return
        raise AssertionError("no passing schedule found")

    def test_distinct_dedupes_by_source_location(self, racy_counter):
        report = find_races(trace_of(racy_counter, seed=1))
        assert len(report.distinct()) <= len(report)


class TestLockset:
    def test_wronglock_discipline_flagged(self):
        from repro import bench

        trace = trace_of(bench.get("CS/wronglock"), seed=0)
        report = check_lock_discipline(trace)
        assert "var:data" in report.flagged_locations

    def test_consistent_locking_clean(self, racefree):
        report = check_lock_discipline(trace_of(racefree, seed=0))
        assert len(report) == 0
        assert report.candidate_locksets.get("var:x") == frozenset({"mutex:m"})

    def test_single_thread_locations_not_flagged(self, sequential):
        report = check_lock_discipline(trace_of(sequential, seed=0))
        assert len(report) == 0

    def test_unprotected_sharing_flagged(self, racy_counter):
        report = check_lock_discipline(trace_of(racy_counter, seed=1))
        assert "var:x" in report.flagged_locations


class TestLockGraph:
    def test_abba_predicted_from_passing_run(self, abba_deadlock):
        for seed in range(50):
            result = run_program(abba_deadlock, RandomWalkPolicy(seed))
            if result.crashed:
                continue
            report = predict_deadlocks(result.trace)
            assert report.has_potential_deadlock
            prediction = report.predictions[0]
            assert set(prediction.cycle) == {"mutex:A", "mutex:B"}
            assert len(prediction.threads) == 2
            return
        raise AssertionError("no passing schedule found")

    def test_consistent_order_not_flagged(self):
        @program("t/ordered_locks")
        def prog(t):
            def worker(t, ma, mb):
                yield t.lock(ma)
                yield t.lock(mb)
                yield t.unlock(mb)
                yield t.unlock(ma)

            ma = t.mutex("A")
            mb = t.mutex("B")
            h1 = yield t.spawn(worker, ma, mb)
            h2 = yield t.spawn(worker, ma, mb)
            yield t.join(h1)
            yield t.join(h2)

        for seed in range(10):
            report = predict_deadlocks(trace_of(prog, seed))
            assert not report.has_potential_deadlock

    def test_single_lock_programs_clean(self, racefree):
        assert not predict_deadlocks(trace_of(racefree, seed=0)).has_potential_deadlock

    def test_carter01_predicted(self):
        from repro import bench

        prog = bench.get("CS/carter01")
        for seed in range(50):
            result = run_program(prog, PosPolicy(seed))
            if not result.crashed:
                assert predict_deadlocks(result.trace).has_potential_deadlock
                return
        raise AssertionError("no passing carter01 schedule found")


class TestAnalysisOnBenchmarks:
    """Cross-checks: the analyses implicate the bugs the models encode."""

    @pytest.mark.parametrize(
        "name",
        ["CS/account", "CS/stack", "Splash2/barnes", "Chess/WorkStealQueue"],
    )
    def test_racy_benchmarks_have_hb_races(self, name):
        from repro import bench

        trace = trace_of(bench.get(name), seed=2)
        assert len(find_races(trace)) > 0, f"{name} shows no HB race"

    def test_deadlock_benchmarks_have_lock_cycles(self):
        from repro import bench

        prog = bench.get("CS/deadlock01")
        for seed in range(50):
            result = run_program(prog, PosPolicy(seed))
            if not result.crashed:
                assert predict_deadlocks(result.trace).has_potential_deadlock
                return
        raise AssertionError("no passing deadlock01 run")
