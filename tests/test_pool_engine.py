"""Differential + unit suite for the persistent batched worker pool.

The pooled engine's contract: for a fixed (seed, allocator) it is a pure
wall-clock optimisation — serial == per-cell == pool, bit for bit, under
every start method the platform offers (fork, and forkserver which is the
3.12+ default).  These tests pin that, plus the batching/packing algebra,
the wire-format interning, the telemetry schema of the new events, and
the per-worker profiling satellite.
"""

from __future__ import annotations

import sys
from dataclasses import replace

import pytest

from repro import bench
from repro.core.trace import intern_schedule
from repro.harness.allocator import LaplaceAllocator, pack_batches
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.parallel import (
    CellSpec,
    ParallelCampaign,
    _default_start_method,
)
from repro.harness.pool import wire_slice
from repro.harness.supervisor import SupervisedCampaign
from repro.harness.telemetry import TelemetryAggregator
from repro.harness.tools import pct_tool, random_tool

TOOLS = ["Random", "PCT3"]
PROGRAMS = ["CS/reorder_3", "CS/account", "CS/deadlock01", "Splash2/lu"]
CONFIG = CampaignConfig(trials=2, budget=30, base_seed=11)
ALLOC_CONFIG = CampaignConfig(
    trials=2, budget=40, base_seed=7, allocator=LaplaceAllocator(rounds=3)
)


@pytest.fixture(scope="module")
def serial():
    return Campaign(CONFIG).run(
        [random_tool(), pct_tool()], [bench.get(p) for p in PROGRAMS]
    )


@pytest.fixture(scope="module")
def serial_allocated():
    return Campaign(ALLOC_CONFIG).run(
        [random_tool(), pct_tool()], [bench.get(p) for p in PROGRAMS]
    )


# ----------------------------------------------------------------------
# Batch packing
# ----------------------------------------------------------------------
def spec(budget: int, trial: int = 0) -> CellSpec:
    return CellSpec(
        tool="Random",
        program="CS/account",
        trial=trial,
        seed=trial,
        budget=budget,
        factory_ref="repro.harness.tools:random_tool",
    )


class TestPackBatches:
    def test_count_cap(self):
        batches = pack_batches([spec(1, t) for t in range(7)], 3, 1000)
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_budget_cap_closes_batches(self):
        items = [spec(10, t) for t in range(4)]
        batches = pack_batches(items, 100, 25)
        assert [[s.budget for s in b] for b in batches] == [[10, 10], [10, 10]]

    def test_oversized_slice_gets_singleton_batch(self):
        items = [spec(5, 0), spec(500, 1), spec(5, 2), spec(5, 3)]
        batches = pack_batches(items, 100, 20)
        assert [[s.budget for s in b] for b in batches] == [[5], [500], [5, 5]]

    def test_order_preserved(self):
        items = [spec(1, t) for t in range(10)]
        batches = pack_batches(items, 4, 1000)
        flat = [s.trial for batch in batches for s in batch]
        assert flat == list(range(10))

    def test_deterministic(self):
        items = [spec(7, t) for t in range(9)]
        assert pack_batches(items, 2, 10) == pack_batches(items, 2, 10)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            pack_batches([spec(1)], 0, 10)


class TestWireFormat:
    def test_wire_slice_is_interned(self):
        first, second = wire_slice(spec(10)), wire_slice(spec(10))
        assert first is second  # identical slices share one tuple object

    def test_intern_schedule_roundtrip(self):
        items = ("Random", "CS/account", 0, 11, 30, "m:f")
        assert intern_schedule(items) == items
        assert intern_schedule(("x",)) is intern_schedule(("x",))


# ----------------------------------------------------------------------
# Bit-identity under both start methods
# ----------------------------------------------------------------------
START_METHODS = ["fork", "forkserver"]


class TestPoolBitIdentity:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_single_pass_matches_serial(self, serial, start_method):
        pool = ParallelCampaign(
            CONFIG,
            processes=2,
            engine="pool",
            batch_size=3,
            start_method=start_method,
        ).run(TOOLS, PROGRAMS)
        assert pool.results == serial.results

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_allocated_supervised_matches_serial(self, serial_allocated, start_method):
        pool = SupervisedCampaign(
            ALLOC_CONFIG,
            processes=2,
            engine="pool",
            start_method=start_method,
            heartbeat_seconds=0.05,
        ).run(TOOLS, PROGRAMS)
        assert pool.results == serial_allocated.results
        assert pool.allocation == serial_allocated.allocation

    def test_pool_matches_percell_with_store_and_checkpoint(self, tmp_path):
        def run(engine, sub):
            return ParallelCampaign(
                CONFIG,
                processes=2,
                engine=engine,
                store=tmp_path / f"store-{sub}",
                checkpoint=tmp_path / f"ck-{sub}.jsonl",
            ).run(TOOLS, PROGRAMS)

        assert run("percell", "a").results == run("pool", "b").results

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ParallelCampaign(CONFIG, engine="threads").run(TOOLS, PROGRAMS)


class TestStartMethodDefault:
    def test_prefers_forkserver_on_312(self, monkeypatch):
        monkeypatch.setattr(sys, "version_info", (3, 12, 0, "final", 0))
        assert _default_start_method() == "forkserver"

    def test_keeps_fork_before_312(self, monkeypatch):
        monkeypatch.setattr(sys, "version_info", (3, 11, 7, "final", 0))
        assert _default_start_method() == "fork"


# ----------------------------------------------------------------------
# Telemetry + caches
# ----------------------------------------------------------------------
class TestPoolTelemetry:
    def test_batch_dispatch_events_are_schema_valid(self):
        # The aggregator validates every record against EVENT_SCHEMA on
        # emit, so a completed run proves the new events carry their
        # required fields.
        aggregator = TelemetryAggregator()
        ParallelCampaign(
            CONFIG, processes=2, engine="pool", batch_size=2, telemetry=aggregator
        ).run(TOOLS, PROGRAMS)
        assert aggregator.batches_dispatched > 1
        for record in aggregator.of_type("batch_dispatch"):
            assert record["slices"] >= 1
            assert record["budget"] >= 1
        # Every cell completed exactly once: no loss, no duplication.
        keys = [
            (r["tool"], r["program"], r["trial"]) for r in aggregator.of_type("cell_end")
        ]
        assert len(keys) == len(set(keys)) == len(TOOLS) * len(PROGRAMS) * CONFIG.trials

    def test_pool_amortizes_processes(self):
        # The point of the fork server: far fewer worker processes than
        # slices.  2 pool workers serve all 16 cells.
        aggregator = TelemetryAggregator()
        ParallelCampaign(
            CONFIG, processes=2, engine="pool", telemetry=aggregator
        ).run(TOOLS, PROGRAMS)
        exits = aggregator.of_type("worker_exit")
        assert 1 <= len(exits) <= 2
        assert all(r["kind"] == "ok" for r in exits)

    def test_supervised_pool_heartbeats(self):
        aggregator = TelemetryAggregator()
        # Long enough cells that several 5ms beats land mid-slice.
        config = replace(CONFIG, budget=400)
        SupervisedCampaign(
            config,
            processes=1,
            engine="pool",
            telemetry=aggregator,
            heartbeat_seconds=0.005,
        ).run(TOOLS, PROGRAMS)
        # Beats carry the identity of the running slice.
        assert aggregator.heartbeats >= 1
        for record in aggregator.of_type("heartbeat"):
            assert (record["tool"], record["program"], record["trial"])[0] in TOOLS


class TestReusableOptOut:
    def test_testing_tool_defaults_reusable(self):
        assert random_tool().reusable is True
        assert pct_tool().reusable is True


# ----------------------------------------------------------------------
# Profiling satellite
# ----------------------------------------------------------------------
class TestProfiling:
    def test_profile_dumps_and_summary(self, tmp_path, serial):
        from repro.harness.reporting import profile_summary

        profile_dir = tmp_path / "prof"
        result = ParallelCampaign(
            CONFIG, processes=2, engine="pool", profile_dir=profile_dir
        ).run(TOOLS, PROGRAMS)
        assert result.results == serial.results  # profiling never changes results
        dumps = list(profile_dir.glob("worker-*.pstats"))
        assert 1 <= len(dumps) <= 2
        summary = profile_summary(profile_dir, top=5)
        assert "Worker profile" in summary
        assert "cumulative" in summary

    def test_profile_summary_empty_dir(self, tmp_path):
        from repro.harness.reporting import profile_summary

        assert "no .pstats dumps" in profile_summary(tmp_path)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_pool_flags_require_pool_engine(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--batch-size", "4"]) == 2
        assert "--batch-size requires --engine pool" in capsys.readouterr().err

    def test_profile_requires_pool_engine(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--profile", "prof/"]) == 2
        assert "--profile requires --engine pool" in capsys.readouterr().err

    def test_pool_campaign_from_cli(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--engine", "pool",
                "--pool-size", "2",
                "--batch-size", "4",
                "--profile", str(tmp_path / "prof"),
                "--tools", "Random",
                "--programs", "CS/reorder_3", "CS/account",
                "--trials", "2",
                "--budget", "25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pooled batches:" in out
        assert "Worker profile" in out
