"""Systematic exploration, the PERIOD / GenMC stand-ins and Q-Learning RF."""

from __future__ import annotations

import pytest

from repro.algos.exploration import ScriptPolicy, StatelessExplorer, count_preemptions
from repro.algos.modelcheck import ModelChecker, UnsupportedProgram
from repro.algos.period import PeriodExplorer
from repro.algos.qlearning import QLearningRfPolicy, commutative_rf_hash
from repro.runtime import program, run_program

from tests.conftest import make_reorder


class TestScriptPolicy:
    def test_default_is_nonpreemptive(self, reorder3):
        policy = ScriptPolicy(())
        run_program(reorder3, policy)
        assert count_preemptions(policy.log) == 0

    def test_script_followed_when_enabled(self, reorder3):
        base = ScriptPolicy(())
        run_program(reorder3, base)
        # Flip one decision to a different enabled thread and verify it took.
        for position, step in enumerate(base.log):
            alternatives = [tid for tid in step.enabled if tid != step.chosen]
            if alternatives:
                script = tuple(s.chosen for s in base.log[:position]) + (alternatives[0],)
                replay = ScriptPolicy(script)
                run_program(reorder3, replay)
                assert replay.log[position].chosen == alternatives[0]
                return
        raise AssertionError("no branch point found")

    def test_log_records_pending_abstracts(self, reorder3):
        policy = ScriptPolicy(())
        run_program(reorder3, policy)
        for step in policy.log:
            assert set(step.pending) >= set(step.enabled) or set(step.pending) == set(step.enabled)


class TestStatelessExplorer:
    def test_exhausts_tiny_program(self, racy_counter):
        report = StatelessExplorer(
            racy_counter, max_executions=10_000, stop_on_first_bug=False
        ).run()
        assert report.exhausted
        assert report.found_bug  # the lost update is in the space

    def test_budget_respected(self):
        report = StatelessExplorer(make_reorder(6), max_executions=30).run()
        assert report.executions <= 30

    def test_preemption_bound_zero_misses_preemption_bugs(self, racy_counter):
        # The lost update needs a preemption between read and write.
        report = StatelessExplorer(
            racy_counter, max_executions=10_000, preemption_bound=0
        ).run()
        assert report.exhausted
        assert not report.found_bug

    def test_preemption_bound_one_finds_it(self, racy_counter):
        report = StatelessExplorer(
            racy_counter, max_executions=10_000, preemption_bound=1
        ).run()
        assert report.found_bug

    def test_deterministic(self, reorder3):
        a = StatelessExplorer(reorder3, max_executions=50).run()
        b = StatelessExplorer(reorder3, max_executions=50).run()
        assert a.executions == b.executions
        assert a.first_bug_at == b.first_bug_at

    def test_rf_subsumption_reduces_executions(self):
        prog = make_reorder(4)
        plain = StatelessExplorer(prog, max_executions=400, preemption_bound=1).run()
        pruned = StatelessExplorer(
            prog, max_executions=400, preemption_bound=1, rf_subsume=True, symmetry_reduction=True
        ).run()
        found_plain = plain.first_bug_at or plain.executions + 1
        found_pruned = pruned.first_bug_at or pruned.executions + 1
        assert found_pruned <= found_plain

    def test_distinct_rf_classes_counted(self, reorder3):
        report = StatelessExplorer(reorder3, max_executions=100).run()
        assert 1 <= report.distinct_rf_classes <= report.executions


class TestPeriodExplorer:
    def test_finds_reorder_family_deterministically(self):
        first = PeriodExplorer(make_reorder(5), max_executions=2000).run()
        second = PeriodExplorer(make_reorder(5), max_executions=2000).run()
        assert first.found_bug
        assert first.first_bug_at == second.first_bug_at  # the ± 0 rows

    def test_schedule_counts_grow_linearly_in_threads(self):
        small = PeriodExplorer(make_reorder(3), max_executions=3000).run()
        large = PeriodExplorer(make_reorder(10), max_executions=3000).run()
        assert small.found_bug and large.found_bug
        assert small.first_bug_at < large.first_bug_at

    def test_finds_deadlock(self, abba_deadlock):
        report = PeriodExplorer(abba_deadlock, max_executions=2000).run()
        assert report.found_bug
        assert report.bug_outcome == "deadlock"

    def test_budget_respected(self):
        report = PeriodExplorer(make_reorder(8), max_executions=15).run()
        assert report.executions <= 15


class TestModelChecker:
    def test_unsupported_program_raises(self):
        unsupported = make_reorder(3, mc=False)
        with pytest.raises(UnsupportedProgram):
            ModelChecker(unsupported).check()

    def test_small_program_checked(self, reorder2):
        report = ModelChecker(reorder2, max_executions=20_000).check()
        assert report.found_bug
        assert report.rf_classes >= report.first_bug_at_class

    def test_deterministic(self, reorder2):
        a = ModelChecker(reorder2, max_executions=20_000).check()
        b = ModelChecker(reorder2, max_executions=20_000).check()
        assert a.first_bug_at_class == b.first_bug_at_class
        assert a.executions == b.executions

    def test_bug_free_program_verified(self, racefree):
        from dataclasses import replace

        supported = replace(racefree, mc_supported=True)
        report = ModelChecker(supported, max_executions=50_000).check()
        assert not report.found_bug
        assert report.complete


class TestQLearning:
    def test_hash_is_commutative(self):
        a = commutative_rf_hash(commutative_rf_hash(0, "w1", "r1"), "w2", "r2")
        b = commutative_rf_hash(commutative_rf_hash(0, "w2", "r2"), "w1", "r1")
        assert a == b

    def test_hash_differs_for_different_pairs(self):
        assert commutative_rf_hash(0, "w1", "r1") != commutative_rf_hash(0, "w1", "r2")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QLearningRfPolicy(learning_rate=0)
        with pytest.raises(ValueError):
            QLearningRfPolicy(discount=1.0)

    def test_q_table_accumulates_negative_values(self, reorder3):
        policy = QLearningRfPolicy(seed=0)
        for _ in range(5):
            run_program(reorder3, policy)
        assert policy.q
        assert min(policy.q.values()) < 0

    def test_learning_changes_exploration(self, reorder3):
        """With negative rewards on visited pairs, later executions should
        visit rf classes earlier ones did not."""
        policy = QLearningRfPolicy(seed=0)
        signatures = [run_program(reorder3, policy).trace.rf_signature() for _ in range(30)]
        assert len(set(signatures)) > 1

    def test_finds_shallow_bug(self, racy_counter):
        policy = QLearningRfPolicy(seed=1)
        assert any(run_program(racy_counter, policy).crashed for _ in range(200))
