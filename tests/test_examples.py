"""Smoke-run every example script: the README's promises must execute."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bug found after" in out
        assert "replayed outcome: assertion (reproduced: True)" in out
        assert "0/200" in out  # POS finds nothing

    def test_custom_program(self):
        out = run_example("custom_program.py")
        assert "bug found after" in out
        assert "overdrawn" in out or "money created" in out
        assert "outcome: assertion" in out

    def test_compare_tools_small(self):
        out = run_example("compare_tools.py", "--trials", "2", "--budget", "120")
        assert "mean bugs found" in out
        assert "RFF" in out and "PERIOD" in out

    def test_explore_safestack_small(self):
        out = run_example("explore_safestack.py", "--executions", "120")
        assert "gini" in out
        assert out.count("rf signatures") >= 2

    def test_weak_memory(self):
        out = run_example("weak_memory.py")
        assert "SC : 0/" in out
        assert "TSO:" in out
        assert "bug found after" in out

    def test_server_audit(self):
        out = run_example("server_audit.py")
        assert "double-free" in out
        assert "CONFIRMED" in out
        assert "matches: True" in out


@pytest.mark.parametrize(
    "name",
    [p.name for p in sorted(EXAMPLES.glob("*.py"))],
)
def test_every_example_has_main_guard(name):
    source = (EXAMPLES / name).read_text()
    assert '__name__ == "__main__"' in source
    assert source.startswith("#!/usr/bin/env python3")
