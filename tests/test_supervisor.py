"""Supervised campaign engine: heartbeats, leases, backoff, triage.

The supervisor's contract extends the parallel engine's: worker liveness is
now judged by heartbeats against a lease, wedged workers are killed and
their cells reassigned with exponential backoff — and none of it may change
results.  Every scenario here ends in full dataclass equality with the
serial ``Campaign``.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.harness import faults
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.supervisor import SupervisedCampaign
from repro.harness.telemetry import TelemetryAggregator
from repro.harness.tools import PeriodTool, RffTool, pos_tool

TOOLS = ["RFF", "POS", "PERIOD"]
PROGRAMS = ["CS/account", "Splash2/lu"]
CONFIG = CampaignConfig(trials=2, budget=120, base_seed=7)


@pytest.fixture(scope="module")
def serial():
    return Campaign(CONFIG).run(
        [RffTool(), pos_tool(), PeriodTool()], [bench.get(p) for p in PROGRAMS]
    )


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Arm the crash_once hook against one cell; returns the re-arm helper."""

    def arm(tool: str, program: str, trial: int, mode: str = "crash", state: str = "fired"):
        monkeypatch.setenv(faults.ENV_TARGET, faults.cell_key(tool, program, trial))
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / state))
        monkeypatch.setenv(faults.ENV_MODE, mode)
        monkeypatch.setenv(faults.ENV_HANG_SECONDS, "3600")

    return arm


class TestDeterminism:
    def test_supervised_bit_identical_to_serial(self, serial):
        supervised = SupervisedCampaign(CONFIG, processes=2).run(TOOLS, PROGRAMS)
        assert supervised == serial

    def test_serial_engine_mode_bit_identical(self, serial):
        assert SupervisedCampaign(CONFIG, processes=0).run(TOOLS, PROGRAMS) == serial

    def test_heartbeats_observed_from_slowed_workers(self, serial, tmp_path, monkeypatch):
        # A 100%-skew chaos plan makes every worker sleep 0.3s mid-cell, so a
        # 0.05s heartbeat interval must land several beats per cell.
        plan = faults.ChaosPlan(seed=1, skew=1.0, skew_seconds=0.3)
        for key, value in plan.to_env(tmp_path).items():
            monkeypatch.setenv(key, value)
        aggregator = TelemetryAggregator()
        supervised = SupervisedCampaign(
            CONFIG,
            processes=2,
            telemetry=aggregator,
            heartbeat_seconds=0.05,
            fault_hook=faults.CHAOS_HOOK_REF,
        ).run(TOOLS, PROGRAMS)
        assert supervised == serial
        assert aggregator.heartbeats > 0
        assert aggregator.lease_reassignments == 0  # skew is benign


class TestLeases:
    def test_hung_worker_loses_lease_and_cell_is_reassigned(self, serial, fault_env):
        fault_env("RFF", "CS/account", 1, mode="hang")
        aggregator = TelemetryAggregator()
        supervised = SupervisedCampaign(
            CONFIG,
            processes=2,
            telemetry=aggregator,
            heartbeat_seconds=0.05,
            lease_seconds=0.5,
            backoff_base=0.01,
            fault_hook=faults.CRASH_ONCE_REF,
        ).run(TOOLS, PROGRAMS)
        assert supervised == serial
        assert aggregator.lease_reassignments == 1
        lease_exits = [
            r for r in aggregator.of_type("worker_exit") if r["kind"] == "lease"
        ]
        assert len(lease_exits) == 1
        reassign = aggregator.of_type("lease_reassign")[0]
        assert (reassign["tool"], reassign["program"], reassign["trial"]) == (
            "RFF",
            "CS/account",
            1,
        )
        assert reassign["kind"] == "lease"
        assert reassign["delay"] == pytest.approx(0.01)

    def test_crashed_worker_reassigned_with_backoff(self, serial, fault_env):
        fault_env("POS", "Splash2/lu", 0, mode="crash")
        aggregator = TelemetryAggregator()
        supervised = SupervisedCampaign(
            CONFIG,
            processes=2,
            telemetry=aggregator,
            backoff_base=0.01,
            fault_hook=faults.CRASH_ONCE_REF,
        ).run(TOOLS, PROGRAMS)
        assert supervised == serial
        assert aggregator.lease_reassignments == 1
        assert aggregator.retries == 1
        crash_exits = [
            r for r in aggregator.of_type("worker_exit") if r["kind"] == "crash"
        ]
        assert crash_exits[0]["exitcode"] == faults.CRASH_EXIT_CODE


class TestTriage:
    def test_deterministic_crasher_classified(self, fault_env, monkeypatch):
        monkeypatch.setenv(faults.ENV_TARGET, faults.cell_key("RFF", "CS/account", 0))
        aggregator = TelemetryAggregator()
        result = SupervisedCampaign(
            CampaignConfig(trials=1, budget=60, base_seed=7),
            processes=2,
            max_retries=2,
            backoff_base=0.01,
            telemetry=aggregator,
            fault_hook=faults.CRASH_ALWAYS_REF,
        ).run(["RFF"], ["CS/account"])
        (cell,) = result.results[("RFF", "CS/account")]
        assert cell.error is not None
        assert "deterministic crasher" in cell.error
        assert aggregator.retries == 2  # the full retry budget burned
        error = aggregator.of_type("cell_error")[0]
        assert "deterministic crasher" in error["detail"]

    def test_mixed_failure_kinds_classified_flaky(self):
        engine = SupervisedCampaign(CONFIG)
        engine._failure_kinds = {("T", "P", 0): ["crash", "lease", "crash"]}
        assert "flaky environment" in engine._classify(("T", "P", 0))
        engine._failure_kinds = {("T", "P", 0): ["crash", "crash", "crash"]}
        assert "deterministic crasher" in engine._classify(("T", "P", 0))
