"""Unit tests for the shared-state objects of the runtime."""

from __future__ import annotations

import pytest

from repro.runtime.errors import DoubleFree, ProgramError, UseAfterFree
from repro.runtime.objects import Barrier, CondVar, Heap, Mutex, Semaphore, SharedVar


class TestSharedVar:
    def test_initial_value(self):
        var = SharedVar("x", 42)
        assert var.value == 42

    def test_initial_writer_is_pseudo_event_zero(self):
        assert SharedVar("x").last_writer == 0

    def test_location_is_namespaced(self):
        assert SharedVar("x").location == "var:x"

    def test_default_init_is_zero(self):
        assert SharedVar("x").value == 0


class TestMutex:
    def test_starts_unowned(self):
        mutex = Mutex("m")
        assert not mutex.held
        assert mutex.owner is None

    def test_held_after_assigning_owner(self):
        mutex = Mutex("m")
        mutex.owner = 3
        assert mutex.held

    def test_location_is_namespaced(self):
        assert Mutex("m").location == "mutex:m"

    def test_error_checking_flag_defaults_true(self):
        assert Mutex("m").error_checking is True
        assert Mutex("m", error_checking=False).error_checking is False


class TestCondVar:
    def test_starts_with_no_waiters(self):
        cond = CondVar("c")
        assert len(cond.waiters) == 0
        assert list(cond.waiters) == []

    def test_location_is_namespaced(self):
        assert CondVar("c").location == "cond:c"


class TestSemaphore:
    def test_initial_count(self):
        assert Semaphore("s", 3).count == 3

    def test_negative_init_rejected(self):
        with pytest.raises(ProgramError):
            Semaphore("s", -1)

    def test_location_is_namespaced(self):
        assert Semaphore("s").location == "sem:s"


class TestBarrier:
    def test_parties_must_be_positive(self):
        with pytest.raises(ProgramError):
            Barrier("b", 0)

    def test_starts_with_no_arrivals(self):
        barrier = Barrier("b", 2)
        assert barrier.arrived == []
        assert barrier.generation == 0

    def test_location_is_namespaced(self):
        assert Barrier("b", 2).location == "barrier:b"


class TestHeap:
    def test_malloc_names_by_site_and_order(self):
        heap = Heap()
        first = heap.malloc("node")
        second = heap.malloc("node")
        other = heap.malloc("leaf")
        assert first.name == "node#0"
        assert second.name == "node#1"
        assert other.name == "leaf#0"

    def test_fields_initialised_from_malloc(self):
        heap = Heap()
        obj = heap.malloc("node", {"val": 7})
        assert obj.read_field("val") == 7

    def test_missing_field_reads_none(self):
        obj = Heap().malloc("node")
        assert obj.read_field("whatever") is None

    def test_write_then_read_field(self):
        obj = Heap().malloc("node")
        obj.write_field("x", 5)
        assert obj.read_field("x") == 5

    def test_free_marks_object_dead(self):
        heap = Heap()
        obj = heap.malloc("node")
        heap.free(obj)
        assert obj.freed

    def test_double_free_raises(self):
        heap = Heap()
        obj = heap.malloc("node")
        heap.free(obj)
        with pytest.raises(DoubleFree):
            heap.free(obj)

    def test_read_after_free_raises(self):
        heap = Heap()
        obj = heap.malloc("node", {"val": 1})
        heap.free(obj)
        with pytest.raises(UseAfterFree):
            obj.read_field("val")

    def test_write_after_free_raises(self):
        heap = Heap()
        obj = heap.malloc("node")
        heap.free(obj)
        with pytest.raises(UseAfterFree):
            obj.write_field("val", 2)

    def test_field_location_naming(self):
        obj = Heap().malloc("node")
        assert obj.location_of("val") == "heap:node#0.val"
