"""Scaling laws of the schedule space and the MUZZ negative result.

These tests check *shape* claims of the paper's analysis (Section 2's
combinatorics, Section 5.1's MUZZ reimplementation) rather than point
values: how each technique's difficulty scales with thread count.
"""

from __future__ import annotations

import pytest

from repro.core.fuzzer import fuzz
from repro.runtime import run_program
from repro.schedulers import MuzzLikePolicy, PosPolicy

from tests.conftest import make_reorder


class TestMuzzNegativeResult:
    def test_static_priorities_never_find_reorder_3(self):
        """Paper Section 5.1: the MUZZ reimplementation 'was not able to
        find the bug after millions of executions on only the three-thread
        version'."""
        prog = make_reorder(3)
        crashes = sum(run_program(prog, MuzzLikePolicy(s)).crashed for s in range(2000))
        assert crashes == 0

    def test_why_it_fails_thread_order_only(self):
        """Structural check: under static priorities, each thread's events
        form a contiguous block whenever every thread stays enabled —
        no mid-thread interleaving, hence no reorder bug."""
        prog = make_reorder(3)
        result = run_program(prog, MuzzLikePolicy(7))
        # After the spawn phase, per-thread events must be contiguous.
        worker_events = [e.tid for e in result.trace if e.tid != 0]
        blocks = []
        for tid in worker_events:
            if not blocks or blocks[-1] != tid:
                blocks.append(tid)
        assert len(blocks) == len(set(worker_events)), (
            f"thread blocks interleaved: {blocks}"
        )

    def test_even_shallow_lost_updates_rarely_found(self, racy_counter):
        # Lost updates need mid-thread preemption too.
        crashes = sum(run_program(racy_counter, MuzzLikePolicy(s)).crashed for s in range(500))
        assert crashes == 0


class TestReorderScaling:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_pos_hit_rate_decays_with_threads(self, n):
        """Section 2: the uniform-sampling hit probability collapses as the
        setter count grows."""
        small = sum(run_program(make_reorder(2), PosPolicy(s)).crashed for s in range(300))
        large = sum(run_program(make_reorder(2 + n * 3), PosPolicy(s)).crashed for s in range(300))
        assert small > large

    def test_rff_schedules_to_bug_flat_in_threads(self):
        """The abstract-schedule space stays at ~25 options regardless of n,
        so RFF's cost must not grow with the thread count."""
        costs = {}
        for n in (5, 20, 60):
            hits = [
                fuzz(make_reorder(n), max_executions=200, seed=s, stop_on_first_crash=True).first_crash_at
                for s in range(6)
            ]
            assert all(h is not None for h in hits), f"missed at n={n}: {hits}"
            costs[n] = sum(hits) / len(hits)
        # Flatness: the largest instance costs at most ~3x the smallest.
        assert costs[60] <= 3 * costs[5] + 5, costs

    def test_schedule_space_collapse(self):
        """Count distinct rf signatures POS visits: it grows only mildly
        with n because the abstract space is tiny (paper: 25 classes)."""
        def classes(n):
            signatures = set()
            for seed in range(120):
                result = run_program(make_reorder(n), PosPolicy(seed))
                signatures.add(result.trace.rf_signature())
            return len(signatures)

        small, large = classes(3), classes(12)
        assert large <= small * 3, (small, large)
