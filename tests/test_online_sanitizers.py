"""Online sanitizer pipeline: executor hooks, detectors, fuzzer wiring.

The core property is *differential*: the streaming sanitizers driven by the
executor must produce exactly the same verdicts as the offline analyzers
re-scanning the recorded trace — the epoch-optimized online race detector
bit-for-bit equal to ``find_races``, the lockset/lockorder sanitizers equal
by shared construction.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.analysis import check_lock_discipline, find_races, predict_deadlocks
from repro.analysis.online import (
    SANITIZERS,
    OnlineLockOrderSanitizer,
    OnlineLocksetSanitizer,
    OnlineRaceSanitizer,
    Sanitizer,
    SanitizerReport,
    _canonical_cycle,
    build_stack,
    parse_sanitizers,
)
from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.runtime import program, run_program
from repro.schedulers import PctPolicy, RandomWalkPolicy


@program("test/wronglock", bug_kinds=())
def wronglock_program(t):
    """Both threads lock, but different mutexes: discipline violation."""

    def worker(t, m, x):
        yield t.lock(m)
        value = yield t.read(x)
        yield t.write(x, value + 1)
        yield t.unlock(m)

    ma = t.mutex("A")
    mb = t.mutex("B")
    x = t.var("x", 0)
    h1 = yield t.spawn(worker, ma, x)
    h2 = yield t.spawn(worker, mb, x)
    yield t.join(h1)
    yield t.join(h2)


@pytest.fixture
def wronglock():
    return wronglock_program


def run_with(prog, policy, names=("race", "lockset", "lockorder")):
    stack = build_stack(tuple(names))
    result = run_program(prog, policy, sanitizers=stack)
    return result, stack


# ----------------------------------------------------------------------
# Registry and report plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_parse_all_and_none(self):
        assert parse_sanitizers("all") == ("race", "lockset", "lockorder")
        assert parse_sanitizers("") == ()
        assert parse_sanitizers("none") == ()

    def test_parse_subset_canonical_order(self):
        assert parse_sanitizers("lockset,race") == ("race", "lockset")
        assert parse_sanitizers(" race , race ") == ("race",)

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer"):
            parse_sanitizers("race,tsan")

    def test_build_stack_fresh_instances(self):
        a = build_stack(("race",))
        b = build_stack(("race",))
        assert a[0] is not b[0]
        with pytest.raises(ValueError):
            build_stack(("nope",))

    def test_registry_names_match_instances(self):
        for name, cls in SANITIZERS.items():
            assert cls().name == name
            assert issubclass(cls, Sanitizer)

    def test_report_roundtrip_and_str(self):
        report = SanitizerReport(
            sanitizer="race",
            kind="write-write",
            location="var:x",
            pair=("w(var:x)@a:1", "w(var:x)@b:1"),
            message="boom",
            eids=(3, 7),
        )
        assert SanitizerReport.from_dict(report.to_dict()) == report
        assert report.dedup_key == ("race", "write-write", "w(var:x)@a:1", "w(var:x)@b:1")
        assert str(report) == "[race] boom"

    def test_canonical_cycle_rotation(self):
        assert _canonical_cycle(("mutex:B", "mutex:A")) == ("mutex:A", "mutex:B")
        assert _canonical_cycle(("mutex:A", "mutex:B")) == ("mutex:A", "mutex:B")


# ----------------------------------------------------------------------
# Executor hooks
# ----------------------------------------------------------------------
class _RecordingSanitizer(Sanitizer):
    name = "recording"

    def __init__(self):
        self.starts: list[tuple[int, int | None]] = []
        self.exits: list[int] = []
        self.events: list = []
        self.finished = 0

    def on_thread_start(self, tid, parent_tid):
        self.starts.append((tid, parent_tid))

    def on_event(self, event):
        self.events.append(event)

    def on_thread_exit(self, tid):
        self.exits.append(tid)

    def finish(self):
        self.finished += 1
        return [
            SanitizerReport(
                sanitizer=self.name,
                kind="probe",
                location="-",
                pair=("-", "-"),
                message=f"saw {len(self.events)} events",
            )
        ]


class TestExecutorHooks:
    def test_hooks_fire_in_trace_order(self, racefree):
        probe = _RecordingSanitizer()
        result = run_program(racefree, RandomWalkPolicy(0), sanitizers=[probe])
        assert probe.events == result.trace.events
        assert probe.finished == 1
        # Main thread starts with no parent; workers carry their spawner.
        assert probe.starts[0] == (0, None)
        assert all(parent == 0 for _, parent in probe.starts[1:])
        assert {tid for tid, _ in probe.starts[1:]} == set(probe.exits) - {0}

    def test_finish_reports_on_result(self, sequential):
        probe = _RecordingSanitizer()
        result = run_program(sequential, RandomWalkPolicy(0), sanitizers=[probe])
        assert len(result.sanitizer_reports) == 1
        assert result.sanitizer_reports[0].message == f"saw {len(result.trace)} events"

    def test_finish_called_even_on_crash(self, racy_counter):
        for seed in range(300):
            probe = _RecordingSanitizer()
            result = run_program(racy_counter, RandomWalkPolicy(seed), sanitizers=[probe])
            if result.crashed:
                assert probe.finished == 1
                assert result.sanitizer_reports
                return
        raise AssertionError("expected a crashing schedule in 300 runs")

    def test_no_sanitizers_is_default(self, sequential):
        result = run_program(sequential, RandomWalkPolicy(0))
        assert result.sanitizer_reports == []


# ----------------------------------------------------------------------
# Individual detectors on known-good / known-bad programs
# ----------------------------------------------------------------------
class TestDetectors:
    def test_race_found_on_racy_counter(self, racy_counter):
        result, stack = run_with(racy_counter, RandomWalkPolicy(1), ("race",))
        assert any(r.sanitizer == "race" for r in result.sanitizer_reports)
        assert all(r.location == "var:x" for r in result.sanitizer_reports)

    def test_race_silent_on_locked_program(self, racefree):
        result, _ = run_with(racefree, RandomWalkPolicy(1), ("race",))
        assert result.sanitizer_reports == []

    def test_lockset_flags_wronglock(self, wronglock):
        # Discipline violations are schedule-insensitive: any interleaving
        # where both threads run implicates var:x.
        result, _ = run_with(wronglock, RandomWalkPolicy(0), ("lockset",))
        assert any(
            r.kind == "lock-discipline" and r.location == "var:x"
            for r in result.sanitizer_reports
        )

    def test_lockorder_predicts_abba(self, abba_deadlock):
        for seed in range(100):
            result = run_program(
                abba_deadlock,
                RandomWalkPolicy(seed),
                sanitizers=build_stack(("lockorder",)),
            )
            if result.crashed:
                continue  # actual deadlock: both locks never fully acquired
            if result.sanitizer_reports:
                report = result.sanitizer_reports[0]
                assert report.kind == "lock-order-cycle"
                assert report.pair[0] == "mutex:A -> mutex:B"
                return
        raise AssertionError("no ABBA prediction in 100 non-deadlocking runs")

    def test_benign_race_after_join_not_reported(self, racefree):
        # Joins transfer happens-before: the main thread's final read is
        # ordered after both workers, so no race — and lockset ownership
        # transfer keeps the post-join read benign too.
        result, _ = run_with(racefree, RandomWalkPolicy(3))
        assert result.sanitizer_reports == []


# ----------------------------------------------------------------------
# Differential property: online == offline
# ----------------------------------------------------------------------
def _policies():
    return [RandomWalkPolicy(11), PctPolicy(depth=3, seed=11)]


@pytest.mark.parametrize("name", sorted(bench.all_programs()))
def test_online_matches_offline(name):
    prog = bench.get(name)
    for policy in _policies():
        stack = build_stack(("race", "lockset", "lockorder"))
        result = run_program(
            prog, policy, max_steps=prog.max_steps or 20000, sanitizers=stack
        )
        race, lockset, lockorder = stack
        trace = result.trace

        offline_races = find_races(trace)
        assert race.report.races == offline_races.races

        offline_lockset = check_lock_discipline(trace)
        assert lockset.report.violations == offline_lockset.violations
        assert lockset.report.candidate_locksets == offline_lockset.candidate_locksets
        assert lockset.report.states == offline_lockset.states

        offline_graph = predict_deadlocks(trace)
        online_cycles = {
            _canonical_cycle(p.cycle) for p in lockorder.report.predictions
        }
        offline_cycles = {
            _canonical_cycle(p.cycle) for p in offline_graph.predictions
        }
        assert online_cycles == offline_cycles


def test_finish_is_deterministic():
    prog = bench.get("CS/account")
    runs = []
    for _ in range(2):
        stack = build_stack(("race", "lockset", "lockorder"))
        result = run_program(prog, RandomWalkPolicy(5), sanitizers=stack)
        runs.append(result.sanitizer_reports)
    assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Fuzzer integration
# ----------------------------------------------------------------------
class TestFuzzerIntegration:
    def test_sanitizer_records_are_bugs(self, racy_counter):
        config = RffConfig(sanitizers=("race",))
        report = RffFuzzer(racy_counter, seed=3, config=config).run(60)
        assert report.sanitizer_records
        assert report.found_bug
        record = report.sanitizer_records[0]
        assert record.report.sanitizer == "race"
        assert record.abstract_schedule is not None
        assert report.first_bug_at is not None
        assert report.first_bug_at <= report.executions

    def test_records_deduped_across_executions(self, racy_counter):
        config = RffConfig(sanitizers=("race", "lockset"))
        report = RffFuzzer(racy_counter, seed=3, config=config).run(80)
        keys = [r.report.dedup_key for r in report.sanitizer_records]
        assert len(keys) == len(set(keys))

    def test_no_sanitizers_no_records(self, racy_counter):
        report = RffFuzzer(racy_counter, seed=3, config=RffConfig()).run(30)
        assert report.sanitizer_records == []

    def test_sanitized_fuzzing_is_deterministic(self, reorder3):
        # Same seed, same sanitizer stack: identical exploration and records.
        config = RffConfig(sanitizers=("race", "lockset"))
        a = RffFuzzer(reorder3, seed=9, config=config).run(50)
        b = RffFuzzer(reorder3, seed=9, config=config).run(50)
        assert a.signature_counts == b.signature_counts
        assert a.sanitizer_records == b.sanitizer_records

    def test_stop_on_first_bug_counts_sanitizer_findings(self, racy_counter):
        config = RffConfig(sanitizers=("race",))
        fuzzer = RffFuzzer(racy_counter, seed=3, config=config)
        report = fuzzer.run(200, stop_on_first_crash=True)
        assert report.found_bug
        first = report.first_bug_at
        assert first is not None
        # The run halted at the finding rather than exhausting the budget.
        assert report.executions < 200 or first == report.executions
