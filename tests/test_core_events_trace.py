"""Events, abstract events and the reads-from trace machinery."""

from __future__ import annotations

import pytest

from repro.core.events import AbstractEvent, Event
from repro.core.trace import Trace
from repro.runtime import run_program
from repro.schedulers import RandomWalkPolicy


def ev(eid, tid, kind, loc="f:1", location="var:x", rf=None):
    return Event(eid=eid, tid=tid, kind=kind, location=location, loc=loc, rf=rf)


class TestAbstractEvent:
    def test_read_kinds(self):
        assert AbstractEvent("r", "var:x", "f:1").is_read
        assert AbstractEvent("hr", "heap:n#0.v", "f:1").is_read
        assert AbstractEvent("lock", "mutex:m", "f:1").is_read
        assert not AbstractEvent("w", "var:x", "f:1").is_read

    def test_write_kinds(self):
        assert AbstractEvent("w", "var:x", "f:1").is_write
        assert AbstractEvent("unlock", "mutex:m", "f:1").is_write
        assert AbstractEvent("free", "heap:n#0", "f:1").is_write
        assert not AbstractEvent("r", "var:x", "f:1").is_write

    def test_rmw_is_both(self):
        rmw = AbstractEvent("rmw", "var:x", "f:1")
        assert rmw.is_read and rmw.is_write

    def test_spawn_is_neither(self):
        spawn = AbstractEvent("spawn", "thread:spawn", "f:1")
        assert not spawn.is_read and not spawn.is_write

    def test_equality_by_value(self):
        assert AbstractEvent("r", "var:x", "f:1") == AbstractEvent("r", "var:x", "f:1")
        assert AbstractEvent("r", "var:x", "f:1") != AbstractEvent("r", "var:x", "f:2")

    def test_str_form(self):
        assert str(AbstractEvent("r", "var:x", "f:1")) == "r(var:x)@f:1"


class TestEvent:
    def test_abstract_drops_id_and_thread(self):
        concrete = ev(5, 2, "w")
        assert concrete.abstract == AbstractEvent("w", "var:x", "f:1")

    def test_same_abstract_for_different_threads(self):
        assert ev(1, 1, "w").abstract == ev(9, 7, "w").abstract


class TestTraceReadsFrom:
    def trace(self):
        return Trace(
            events=[
                ev(1, 0, "w", loc="main:1"),
                ev(2, 1, "r", loc="worker:1", rf=1),
                ev(3, 2, "w", loc="main:1"),
                ev(4, 1, "r", loc="worker:2", rf=3),
                ev(5, 1, "r", loc="worker:3", rf=0),
            ]
        )

    def test_reads_from_mapping(self):
        assert self.trace().reads_from() == {2: 1, 4: 3, 5: 0}

    def test_rf_pairs_are_abstract(self):
        pairs = self.trace().rf_pairs()
        assert (AbstractEvent("w", "var:x", "main:1"), AbstractEvent("r", "var:x", "worker:1")) in pairs

    def test_initial_read_pairs_with_none(self):
        pairs = self.trace().rf_pairs()
        assert (None, AbstractEvent("r", "var:x", "worker:3")) in pairs

    def test_signature_is_hashable_frozenset(self):
        signature = self.trace().rf_signature()
        assert isinstance(signature, frozenset)
        assert len({signature}) == 1

    def test_event_by_id(self):
        assert self.trace().event_by_id(3).tid == 2


class TestSlicedTraces:
    """Minimized/sliced traces keep their original (now sparse) event ids."""

    def sliced(self):
        # A ddmin-style subsequence: events 2 and 4 of the dense trace were
        # dropped, survivors keep their original eids.
        return Trace(
            events=[
                ev(1, 0, "w", loc="main:1"),
                ev(3, 1, "r", loc="worker:1", rf=1),
                ev(5, 1, "r", loc="worker:2", rf=4),
                ev(6, 1, "r", loc="worker:3", rf=0),
            ]
        )

    def test_event_by_id_on_sparse_ids(self):
        trace = self.sliced()
        assert trace.event_by_id(1).tid == 0
        assert trace.event_by_id(3).loc == "worker:1"
        assert trace.event_by_id(5).loc == "worker:2"

    def test_event_by_id_missing_raises(self):
        with pytest.raises(KeyError):
            self.sliced().event_by_id(2)
        with pytest.raises(KeyError):
            self.sliced().event_by_id(99)

    def test_rf_pairs_skip_dropped_writers(self):
        pairs = self.sliced().rf_pairs()
        # Event 5 read from the dropped event 4: no witnessed pair.
        assert pairs == {
            (AbstractEvent("w", "var:x", "main:1"), AbstractEvent("r", "var:x", "worker:1")),
            (None, AbstractEvent("r", "var:x", "worker:3")),
        }

    def test_rf_signature_usable_on_slice(self):
        signature = self.sliced().rf_signature()
        assert isinstance(signature, frozenset)
        assert len(signature) == 2

    def test_index_rebuilt_after_mutation(self):
        trace = self.sliced()
        trace.event_by_id(3)  # build the index
        trace.events.append(ev(9, 2, "w", loc="main:2"))
        assert trace.event_by_id(9).loc == "main:2"

    def test_ddmin_reduced_trace_keeps_rf_machinery(self, reorder3):
        result = run_program(reorder3, RandomWalkPolicy(0))
        full = result.trace
        # Slice out every other event, as a minimizer would.
        reduced = Trace(events=full.events[::2])
        assert reduced.rf_pairs() <= full.rf_pairs()
        for event in reduced.events:
            assert reduced.event_by_id(event.eid) is event


class TestRfEquivalence:
    def test_reorders_of_same_rf_are_equivalent(self, reorder3):
        # Find two different concrete schedules with equal signatures.
        by_signature = {}
        for seed in range(40):
            result = run_program(reorder3, RandomWalkPolicy(seed))
            if result.crashed:
                continue
            key = result.trace.rf_signature()
            if key in by_signature and by_signature[key].schedule != result.schedule:
                other = by_signature[key]
                assert result.trace.rf_equivalent(other.trace)
                return
            by_signature[key] = result
        raise AssertionError("expected two rf-equivalent schedules in 40 runs")

    def test_crashing_and_passing_runs_not_equivalent(self, reorder3):
        crash = ok = None
        for seed in range(300):
            result = run_program(reorder3, RandomWalkPolicy(seed))
            if result.crashed and crash is None:
                crash = result
            if not result.crashed and ok is None:
                ok = result
            if crash and ok:
                break
        assert crash and ok
        assert not crash.trace.rf_equivalent(ok.trace)

    def test_empty_traces_equivalent(self):
        assert Trace().rf_equivalent(Trace())


class TestTraceUtilities:
    def test_memory_abstract_events_partition(self, reorder3):
        result = run_program(reorder3, RandomWalkPolicy(1))
        reads, writes = result.trace.memory_abstract_events()
        assert all(e.is_read for e in reads)
        assert all(e.is_write for e in writes)

    def test_format_limits_output(self):
        trace = Trace(events=[ev(i, 0, "w") for i in range(1, 11)])
        text = trace.format(limit=3)
        assert "7 more events" in text

    def test_format_includes_outcome(self):
        trace = Trace(events=[ev(1, 0, "w")], outcome="assertion", failure="boom")
        assert "assertion" in trace.format()
