"""JSON persistence round-trips and crash-schedule minimization."""

from __future__ import annotations

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.fuzzer import fuzz
from repro.core.minimize import crash_rate, minimize_schedule
from repro.harness.persist import (
    crash_from_dict,
    crash_to_dict,
    load_crash,
    result_to_dict,
    save_crashes,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.harness.tools import RffTool
from repro.runtime import run_program
from repro.schedulers import PosPolicy, ReplayPolicy

from tests.conftest import make_reorder


class TestTraceRoundTrip:
    def test_events_survive_round_trip(self, reorder3):
        trace = run_program(reorder3, PosPolicy(3)).trace
        again = trace_from_dict(trace_to_dict(trace))
        assert [str(e) for e in again] == [str(e) for e in trace]
        assert again.outcome == trace.outcome

    def test_rf_signature_preserved(self, reorder3):
        trace = run_program(reorder3, PosPolicy(4)).trace
        again = trace_from_dict(trace_to_dict(trace))
        assert again.rf_signature() == trace.rf_signature()

    def test_crash_trace_round_trip(self, racy_counter):
        for seed in range(300):
            result = run_program(racy_counter, PosPolicy(seed))
            if result.crashed:
                again = trace_from_dict(trace_to_dict(result.trace))
                assert again.crashed and again.outcome == result.outcome
                return
        raise AssertionError("no crash found")


class TestScheduleRoundTrip:
    def _schedule(self):
        read = AbstractEvent("r", "var:x", "f:1")
        write = AbstractEvent("w", "var:x", "g:2")
        return AbstractSchedule.of(
            Constraint(read, write),
            Constraint(read, None, positive=False),
        )

    def test_round_trip_equality(self):
        alpha = self._schedule()
        assert schedule_from_dict(schedule_to_dict(alpha)) == alpha

    def test_empty_schedule(self):
        assert schedule_from_dict(schedule_to_dict(AbstractSchedule.empty())) == AbstractSchedule.empty()


class TestCrashPersistence:
    def test_crash_round_trip_and_replay(self, reorder3, tmp_path):
        report = fuzz(reorder3, max_executions=400, seed=1, stop_on_first_crash=True)
        crash = report.crashes[0]
        again = crash_from_dict(crash_to_dict(crash))
        assert again == crash
        # The persisted concrete schedule still reproduces the failure.
        replay = run_program(reorder3, ReplayPolicy(list(again.concrete_schedule)))
        assert replay.crashed

    def test_save_and_load_crash_files(self, reorder3, tmp_path):
        report = fuzz(reorder3, max_executions=400, seed=2, stop_on_first_crash=True)
        paths = save_crashes(report, tmp_path)
        assert len(paths) == 1
        program_name, crash = load_crash(paths[0])
        assert program_name == reorder3.name
        assert crash == report.crashes[0]

    def test_save_json_creates_parents(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "deep" / "nested" / "x.json")
        assert path.exists()

    def test_bug_search_result_serialisable(self, reorder3):
        result = RffTool().find_bug(reorder3, budget=200, seed=0)
        payload = result_to_dict(result)
        assert payload["tool"] == "RFF"
        assert payload["found"] == result.found
        import json

        json.dumps(payload)  # must be JSON-clean


class TestMinimization:
    def test_minimized_schedule_still_crashes(self):
        program = make_reorder(10)
        report = fuzz(program, max_executions=400, seed=3, stop_on_first_crash=True)
        crash = report.crashes[0]
        outcome = minimize_schedule(program, crash.abstract_schedule, probes=4)
        assert outcome.reproduction_rate >= 0.5
        assert len(outcome.minimized) <= len(outcome.original)

    def test_minimization_removes_padding_constraints(self):
        """Inflate a crashing schedule with irrelevant constraints: the
        minimizer must strip (most of) them."""
        program = make_reorder(5)
        report = fuzz(program, max_executions=400, seed=4, stop_on_first_crash=True)
        base = report.crashes[0].abstract_schedule
        # Confirm the base still reproduces, then pad it with noise drawn
        # from unrelated rf pairs (spawn-location reads do not exist, so
        # draw from the trace's real events instead).
        from repro.core.mutation import EventPool
        import random

        pool = EventPool()
        for seed in range(5):
            pool.observe(run_program(program, PosPolicy(seed)).trace)
        rng = random.Random(0)
        padded = base
        for _ in range(4):
            constraint = pool.random_constraint(rng, positive_bias=0.0)
            if constraint is not None:
                padded = padded.insert(constraint)
        if crash_rate(program, padded, probes=4) < 0.5:
            # The noise broke reproduction; minimize from the base instead.
            padded = base
        outcome = minimize_schedule(program, padded, probes=4)
        assert len(outcome.minimized) <= len(padded)
        assert outcome.reproduction_rate >= 0.5

    def test_crash_rate_bounds(self):
        program = make_reorder(3)
        rate = crash_rate(program, AbstractSchedule.empty(), probes=6)
        assert 0.0 <= rate <= 1.0

    def test_one_minimality(self):
        """Removing any constraint from the minimized schedule drops the
        reproduction rate below the threshold (by construction)."""
        program = make_reorder(10)
        report = fuzz(program, max_executions=400, seed=5, stop_on_first_crash=True)
        outcome = minimize_schedule(program, report.crashes[0].abstract_schedule, probes=4)
        for constraint in outcome.minimized:
            reduced = outcome.minimized.delete(constraint)
            assert crash_rate(program, reduced, probes=4) < 0.6
