"""Hyperparameter sweeps and adversarial-scheduling robustness."""

from __future__ import annotations

from repro.harness.sweeps import (
    ablation_grid,
    beta_sweep,
    constraint_cap_sweep,
    default_grid,
    energy_sweep,
    positive_bias_sweep,
    render_sweep,
    sweep_config,
)
from repro.runtime import program, run_program
from repro.schedulers.base import SchedulerPolicy

from tests.conftest import make_reorder


class TestSweeps:
    def test_grid_builders_label_uniquely(self):
        for grid in (beta_sweep(), energy_sweep(), constraint_cap_sweep(), positive_bias_sweep()):
            labels = [label for label, _ in grid]
            assert len(labels) == len(set(labels))

    def test_default_grid_dedupes(self):
        grid = default_grid()
        configs = [config for _, config in grid]
        assert len(configs) == len(set(configs))

    def test_sweep_on_reorder_all_betas_find_bug(self):
        points = sweep_config(make_reorder(10), beta_sweep((1.0, 4.0)), trials=3, budget=200)
        for point in points:
            assert point.found == point.trials, f"{point.label} missed the bug"
            assert point.mean_schedules is not None

    def test_ablation_grid_ordering(self):
        """The full config must find reorder at least as reliably as the
        constraint-blind arms."""
        points = {p.label: p for p in sweep_config(make_reorder(15), ablation_grid(), trials=3, budget=200)}
        assert points["full"].found >= points["no-constraints"].found
        assert points["full"].found >= points["pure-pos"].found
        assert points["full"].found == 3

    def test_render_sweep_table(self):
        points = sweep_config(make_reorder(5), [("default", __import__("repro").RffConfig())],
                              trials=2, budget=100)
        table = render_sweep(points)
        assert "config" in table and "default" in table


class _Starver(SchedulerPolicy):
    """Adversarial: always runs the lowest-tid enabled thread (starves the
    highest); exercises fairness-free executor behaviour."""

    def choose(self, candidates, execution):
        return min(candidates, key=lambda c: c.tid)


class _AntiStarver(SchedulerPolicy):
    """Always runs the highest-tid enabled thread."""

    def choose(self, candidates, execution):
        return max(candidates, key=lambda c: c.tid)


class _Alternator(SchedulerPolicy):
    """Pathological ping-pong between the two extreme enabled threads."""

    def begin(self, execution):
        self._flip = False

    def choose(self, candidates, execution):
        self._flip = not self._flip
        key = min if self._flip else max
        return key(candidates, key=lambda c: c.tid)


class TestAdversarialScheduling:
    def test_starvation_still_terminates(self, reorder3):
        for policy_class in (_Starver, _AntiStarver, _Alternator):
            result = run_program(reorder3, policy_class())
            assert not result.truncated

    def test_locked_program_correct_under_adversaries(self, racefree):
        for policy_class in (_Starver, _AntiStarver, _Alternator):
            result = run_program(racefree, policy_class())
            assert not result.crashed

    def test_spinner_starved_by_adversary_truncates_cleanly(self):
        @program("t/starved_spinner")
        def prog(t):
            def spinner(t, flag):
                while True:
                    done = yield t.read(flag)
                    if done:
                        return

            def setter(t, flag):
                yield t.write(flag, 1)

            flag = t.var("flag", 0)
            h1 = yield t.spawn(spinner, flag)
            h2 = yield t.spawn(setter, flag)
            yield t.join(h1)
            yield t.join(h2)

        # The starver runs the spinner (lowest worker tid) forever.
        result = run_program(prog, _Starver(), max_steps=200)
        assert result.truncated
        assert not result.crashed

    def test_condvar_handshake_under_adversaries(self):
        @program("t/adv_handshake")
        def prog(t):
            def consumer(t, m, c, ready):
                yield t.lock(m)
                ok = yield t.read(ready)
                if not ok:
                    yield t.wait(c, m)
                yield t.unlock(m)

            def producer(t, m, c, ready):
                yield t.lock(m)
                yield t.write(ready, 1)
                yield t.signal(c)
                yield t.unlock(m)

            m = t.mutex("m")
            c = t.cond("c")
            ready = t.var("ready", 0)
            h1 = yield t.spawn(consumer, m, c, ready)
            h2 = yield t.spawn(producer, m, c, ready)
            yield t.join(h1)
            yield t.join(h2)

        for policy_class in (_Starver, _AntiStarver, _Alternator):
            result = run_program(prog, policy_class())
            assert result.outcome is None, f"{policy_class.__name__}: {result.outcome}"
