"""Executor behaviour: event recording, reads-from edges, op semantics."""

from __future__ import annotations

import pytest

from repro.runtime import ProgramError, program, run_program
from repro.runtime.executor import Executor
from repro.schedulers import RandomWalkPolicy, ReplayPolicy


def run_seq(prog, **kwargs):
    """Run a program under a deterministic single-choice-friendly policy."""
    return run_program(prog, RandomWalkPolicy(0), **kwargs)


class TestSequentialExecution:
    def test_single_thread_completes(self, sequential):
        result = run_seq(sequential)
        assert not result.crashed
        assert not result.truncated

    def test_events_have_dense_ids(self, sequential):
        result = run_seq(sequential)
        assert [e.eid for e in result.trace.events] == list(range(1, len(result.trace) + 1))

    def test_read_observes_prior_write(self, sequential):
        result = run_seq(sequential)
        write = next(e for e in result.trace if e.kind == "w")
        read = next(e for e in result.trace if e.kind == "r")
        assert read.rf == write.eid

    def test_read_of_untouched_var_observes_initial_pseudo_write(self):
        @program("t/read_init")
        def prog(t):
            x = t.var("x", 9)
            value = yield t.read(x)
            t.require(value == 9)

        result = run_seq(prog)
        read = next(e for e in result.trace if e.kind == "r")
        assert read.rf == 0

    def test_schedule_records_thread_ids(self, sequential):
        result = run_seq(sequential)
        assert result.schedule == [0] * len(result.trace)

    def test_loc_labels_are_function_and_line(self, sequential):
        result = run_seq(sequential)
        for event in result.trace:
            func, _, line = event.loc.partition(":")
            assert func == "sequential_program"
            assert line.isdigit()


class TestValuesAndRmw:
    def test_rmw_returns_old_value(self):
        @program("t/rmw")
        def prog(t):
            x = t.var("x", 10)
            old = yield t.rmw(x, lambda v: v + 5)
            t.require(old == 10)
            now = yield t.read(x)
            t.require(now == 15)

        assert not run_seq(prog).crashed

    def test_add_helper(self):
        @program("t/add")
        def prog(t):
            x = t.var("x", 1)
            old = yield t.add(x, 3)
            t.require(old == 1)
            now = yield t.read(x)
            t.require(now == 4)

        assert not run_seq(prog).crashed

    def test_cas_success_and_failure(self):
        @program("t/cas")
        def prog(t):
            x = t.var("x", 0)
            ok = yield t.cas(x, 0, 7)
            t.require(ok)
            bad = yield t.cas(x, 0, 9)
            t.require(not bad)
            now = yield t.read(x)
            t.require(now == 7)

        assert not run_seq(prog).crashed

    def test_failed_cas_is_not_a_write(self):
        @program("t/cas_rf")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.cas(x, 99, 5)  # fails
            yield t.read(x)

        result = run_seq(prog)
        read = result.trace.events[-1]
        write = result.trace.events[0]
        assert read.rf == write.eid  # still observes the write, not the CAS


class TestSpawnJoin:
    def test_spawn_returns_handle_and_join_waits(self):
        @program("t/spawnjoin")
        def prog(t):
            def child(t, x):
                yield t.write(x, 5)

            x = t.var("x", 0)
            handle = yield t.spawn(child, x)
            yield t.join(handle)
            value = yield t.read(x)
            t.require(value == 5)

        assert not run_seq(prog).crashed

    def test_join_blocks_until_child_finishes(self):
        # Under every schedule, the post-join read sees the child's write.
        @program("t/join_blocks")
        def prog(t):
            def child(t, x):
                yield t.pause()
                yield t.write(x, 1)

            x = t.var("x", 0)
            handle = yield t.spawn(child, x)
            yield t.join(handle)
            value = yield t.read(x)
            t.require(value == 1)

        for seed in range(20):
            assert not run_program(prog, RandomWalkPolicy(seed)).crashed

    def test_spawning_non_generator_is_program_error(self):
        @program("t/badspawn")
        def prog(t):
            yield t.spawn(lambda t: 42)

        with pytest.raises(ProgramError):
            run_seq(prog)

    def test_thread_ids_assigned_in_spawn_order(self):
        @program("t/tids")
        def prog(t):
            def child(t):
                yield t.pause()

            h1 = yield t.spawn(child)
            h2 = yield t.spawn(child)
            t.require(h1.tid == 1 and h2.tid == 2)

        assert not run_seq(prog).crashed


class TestCrashRecording:
    def test_assertion_failure_sets_outcome(self):
        @program("t/fail")
        def prog(t):
            yield t.pause()
            t.fail("boom")

        result = run_seq(prog)
        assert result.crashed
        assert result.outcome == "assertion"
        assert "boom" in result.trace.failure

    def test_trace_preserved_up_to_crash(self):
        @program("t/fail2")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)
            t.fail("late")

        result = run_seq(prog)
        assert [e.kind for e in result.trace] == ["w", "w"]


class TestStepBound:
    def test_spin_loop_truncates(self):
        @program("t/spin")
        def prog(t):
            x = t.var("x", 0)
            while True:
                yield t.read(x)

        result = run_program(prog, RandomWalkPolicy(0), max_steps=50)
        assert result.truncated
        assert result.steps == 50
        assert not result.crashed


class TestApiMisuse:
    def test_duplicate_object_names_rejected(self):
        @program("t/dup")
        def prog(t):
            t.var("x", 0)
            t.var("x", 1)
            yield t.pause()

        with pytest.raises(ProgramError):
            run_seq(prog)

    def test_unlocking_unowned_mutex_is_program_error(self):
        @program("t/badunlock")
        def prog(t):
            m = t.mutex("m")
            yield t.unlock(m)

        with pytest.raises(ProgramError):
            run_seq(prog)

    def test_non_error_checking_mutex_tolerates_it(self):
        @program("t/sloppy")
        def prog(t):
            m = t.mutex("m", error_checking=False)
            yield t.unlock(m)

        assert not run_seq(prog).crashed

    def test_yielding_non_op_is_program_error(self):
        @program("t/badyield")
        def prog(t):
            yield 42

        with pytest.raises(ProgramError):
            run_seq(prog)


class TestReplay:
    def test_replay_reproduces_crash(self, racy_counter):
        crashing = None
        for seed in range(200):
            result = run_program(racy_counter, RandomWalkPolicy(seed))
            if result.crashed:
                crashing = result
                break
        assert crashing is not None, "racy counter should crash under some schedule"
        replayed = run_program(racy_counter, ReplayPolicy(crashing.schedule))
        assert replayed.crashed
        assert replayed.outcome == crashing.outcome
        assert replayed.schedule == crashing.schedule

    def test_replay_reports_divergence_on_bogus_schedule(self, racy_counter):
        policy = ReplayPolicy([99, 99, 99])
        result = run_program(racy_counter, policy)
        assert policy.diverged == 0
        assert not result.truncated
