"""Bug reachability: every model's bug fires under some schedule, with the
declared outcome kind, and the easy/hard difficulty bands of Appendix B hold
in shape (RFF reaches nearly everything; POS misses the deep ones)."""

from __future__ import annotations

import pytest

from repro import bench
from repro.core import fuzz
from repro.runtime import run_program
from repro.schedulers import PosPolicy

#: Programs the paper reports as unfound (within budget) by every tool.
EXPECTED_UNFOUND = {"SafeStack", "RADBench/bug5"}

#: Deep bugs POS cannot find in a small budget (paper: "-" or huge counts).
POS_HARD = [
    "CS/reorder_20",
    "CS/reorder_50",
    "CS/reorder_100",
    "CB/pbzip2-0.9.4",
]

FINDABLE = sorted(set(bench.names()) - EXPECTED_UNFOUND)


class TestBugReachability:
    @pytest.mark.parametrize("name", FINDABLE)
    def test_rff_reaches_the_bug(self, name):
        prog = bench.get(name)
        found = None
        for seed in range(4):
            report = fuzz(prog, max_executions=400, seed=seed, stop_on_first_crash=True)
            if report.found_bug:
                found = report
                break
        assert found is not None, f"RFF missed {name} in 4x400 schedules"
        assert found.crashes[0].outcome in prog.bug_kinds, (
            f"{name}: outcome {found.crashes[0].outcome} not in {sorted(prog.bug_kinds)}"
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_UNFOUND))
    def test_hard_subjects_resist_small_budgets(self, name):
        """The paper's '-' rows: found rarely or never at small budgets.

        Our SafeStack model is reachable-but-hard (the real one is
        astronomically hard), so a stray lucky seed is tolerated."""
        prog = bench.get(name)
        hits = [
            fuzz(prog, max_executions=120, seed=seed, stop_on_first_crash=True).first_crash_at
            for seed in range(5)
        ]
        found = [h for h in hits if h is not None]
        assert len(found) <= 2, f"{name} found in {len(found)}/5 small-budget campaigns: {hits}"
        # When found at all, only deep in the budget — never shallow.
        assert all(h >= 40 for h in found), f"{name} found too easily: {hits}"

    @pytest.mark.parametrize("name", FINDABLE)
    def test_some_schedule_passes_cleanly(self, name):
        """Bugs are schedule-dependent: at least one schedule must pass."""
        prog = bench.get(name)
        outcomes = [
            run_program(prog, PosPolicy(seed), max_steps=prog.max_steps or 20_000).outcome
            for seed in range(30)
        ]
        assert None in outcomes, f"{name} crashes under every schedule tried"


class TestDifficultyShape:
    @pytest.mark.parametrize("name", POS_HARD)
    def test_pos_misses_deep_bugs(self, name):
        prog = bench.get(name)
        crashes = sum(
            run_program(prog, PosPolicy(seed), max_steps=prog.max_steps or 20_000).crashed
            for seed in range(60)
        )
        assert crashes == 0, f"POS unexpectedly found {name} ({crashes}/60)"

    def test_rff_beats_pos_on_reorder_100(self):
        prog = bench.get("CS/reorder_100")
        report = fuzz(prog, max_executions=60, seed=0, stop_on_first_crash=True)
        assert report.found_bug and report.first_crash_at <= 30

    @pytest.mark.parametrize(
        "name", ["CB/aget-bug2", "CS/account", "Splash2/lu", "Inspect_benchmarks/ctrace-test"]
    )
    def test_shallow_bugs_found_fast(self, name):
        prog = bench.get(name)
        report = fuzz(prog, max_executions=100, seed=0, stop_on_first_crash=True)
        assert report.found_bug and report.first_crash_at <= 30


class TestOutcomeKinds:
    def test_deadlock_models_deadlock(self):
        for name in ("CS/deadlock01", "CS/carter01", "RADBench/bug6"):
            report = fuzz(bench.get(name), max_executions=400, seed=0, stop_on_first_crash=True)
            assert report.found_bug
            assert report.crashes[0].outcome == "deadlock", name

    def test_double_free_model(self):
        report = fuzz(
            bench.get("ConVul-CVE-Benchmarks/CVE-2016-9806"),
            max_executions=400,
            seed=0,
            stop_on_first_crash=True,
        )
        assert report.crashes[0].outcome == "double-free"

    def test_null_deref_model(self):
        report = fuzz(
            bench.get("ConVul-CVE-Benchmarks/CVE-2009-3547"),
            max_executions=400,
            seed=0,
            stop_on_first_crash=True,
        )
        assert report.crashes[0].outcome == "null-dereference"

    def test_uaf_models(self):
        for name in (
            "ConVul-CVE-Benchmarks/CVE-2011-2183",
            "ConVul-CVE-Benchmarks/CVE-2016-1973",
        ):
            report = fuzz(bench.get(name), max_executions=400, seed=0, stop_on_first_crash=True)
            assert report.found_bug
            assert report.crashes[0].outcome == "use-after-free", name
