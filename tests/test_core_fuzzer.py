"""The RFF fuzzing loop (Algorithm 1) end to end."""

from __future__ import annotations

from repro.core.constraints import AbstractSchedule
from repro.core.fuzzer import RffConfig, RffFuzzer, fuzz

from tests.conftest import make_reorder


class TestFuzzingLoop:
    def test_budget_respected(self, reorder3):
        report = fuzz(reorder3, max_executions=25, seed=0)
        assert report.executions == 25

    def test_stop_on_first_crash(self, reorder3):
        report = fuzz(reorder3, max_executions=500, seed=0, stop_on_first_crash=True)
        assert report.found_bug
        assert report.executions == report.first_crash_at

    def test_corpus_grows_beyond_seed(self, reorder3):
        report = fuzz(reorder3, max_executions=50, seed=0)
        assert report.corpus_size > 1

    def test_crash_records_carry_schedules(self, reorder3):
        report = fuzz(reorder3, max_executions=500, seed=1, stop_on_first_crash=True)
        crash = report.crashes[0]
        assert crash.outcome == "assertion"
        assert isinstance(crash.abstract_schedule, AbstractSchedule)
        assert crash.concrete_schedule  # replayable thread-id sequence

    def test_crash_replay_via_recorded_schedule(self, reorder3):
        from repro.runtime import run_program
        from repro.schedulers import ReplayPolicy

        report = fuzz(reorder3, max_executions=500, seed=2, stop_on_first_crash=True)
        crash = report.crashes[0]
        replay = run_program(reorder3, ReplayPolicy(list(crash.concrete_schedule)))
        assert replay.crashed
        assert replay.outcome == crash.outcome

    def test_signature_counts_sum_to_executions(self, reorder3):
        report = fuzz(reorder3, max_executions=60, seed=3)
        assert sum(report.signature_counts.values()) == report.executions

    def test_determinism_across_identical_runs(self, reorder3):
        a = fuzz(reorder3, max_executions=40, seed=9)
        b = fuzz(reorder3, max_executions=40, seed=9)
        assert a.first_crash_at == b.first_crash_at
        assert a.pair_coverage == b.pair_coverage
        assert a.unique_signatures == b.unique_signatures

    def test_different_seeds_differ(self, reorder3):
        firsts = {fuzz(reorder3, max_executions=200, seed=s, stop_on_first_crash=True).first_crash_at
                  for s in range(8)}
        assert len(firsts) > 1


class TestPaperHeadline:
    def test_reorder_100_found_in_few_schedules(self):
        """Section 2: 'RFF exposes the bug in about 6 iterations in each of
        the 20 trials' — the paper's headline example."""
        hits = []
        for trial in range(10):
            report = fuzz(make_reorder(100), max_executions=100, seed=trial,
                          stop_on_first_crash=True)
            assert report.found_bug, f"trial {trial} missed the reorder_100 bug"
            hits.append(report.first_crash_at)
        assert sum(hits) / len(hits) <= 20

    def test_pos_ablation_misses_reorder_20(self):
        """RQ2: without abstract-schedule constraints RFF degrades to POS,
        which cannot find high-thread-count reorder bugs."""
        config = RffConfig(use_constraints=False)
        report = fuzz(make_reorder(20), max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert not report.found_bug

    def test_full_rff_beats_ablation_on_reorder(self):
        full = fuzz(make_reorder(20), max_executions=300, seed=0, stop_on_first_crash=True)
        assert full.found_bug


class TestConfigKnobs:
    def test_no_feedback_keeps_corpus_at_seed(self, reorder3):
        config = RffConfig(use_feedback=False)
        report = fuzz(reorder3, max_executions=50, seed=0, config=config)
        assert report.corpus_size == 1

    def test_no_power_schedule_still_finds_bugs(self, reorder3):
        config = RffConfig(use_power_schedule=False)
        report = fuzz(reorder3, max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_max_constraints_respected_in_corpus(self, reorder3):
        config = RffConfig(max_constraints=2)
        fuzzer = RffFuzzer(reorder3, seed=0, config=config)
        fuzzer.run(100)
        assert all(len(entry.schedule) <= 2 for entry in fuzzer.corpus)

    def test_max_steps_override(self, reorder3):
        config = RffConfig(max_steps=5)
        report = fuzz(reorder3, max_executions=10, seed=0, config=config)
        assert report.truncated_runs == 10

    def test_seed_corpus_used(self, reorder3):
        seeds = [AbstractSchedule.empty()]
        fuzzer = RffFuzzer(reorder3, seed=0, seeds=seeds)
        assert len(fuzzer.corpus) == 1

    def test_bug_free_program_never_crashes(self, racefree):
        report = fuzz(racefree, max_executions=150, seed=0)
        assert not report.found_bug
        assert report.executions == 150


class TestDeadlockAndHeapBugs:
    def test_fuzzer_finds_deadlock(self, abba_deadlock):
        report = fuzz(abba_deadlock, max_executions=300, seed=0, stop_on_first_crash=True)
        assert report.found_bug
        assert report.crashes[0].outcome == "deadlock"

    def test_fuzzer_finds_memory_safety_bug(self, uaf):
        report = fuzz(uaf, max_executions=300, seed=0, stop_on_first_crash=True)
        assert report.found_bug
        assert report.crashes[0].outcome in ("use-after-free", "null-dereference")
