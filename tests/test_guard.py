"""Runtime guardrails: watchdogs, livelock detection, exception isolation.

The load-bearing property is determinism: a guard kill is part of the
execution's outcome, so the same schedule under the same budget must trip
at exactly the same point — serially, in parallel workers, and under
replay.  Wall-clock kills are the documented exception (flagged
non-deterministic) and are tested against a fake clock only.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.core.reproduce import dedup_key
from repro.harness.telemetry import GLOBAL_COUNTERS
from repro.runtime import program, run_program
from repro.runtime.errors import (
    ExecutionTimeout,
    LivelockDetected,
    ProgramError,
    UncaughtProgramException,
)
from repro.runtime.executor import Executor
from repro.runtime.guard import GuardConfig, LivelockDetector, Watchdog
from repro.schedulers import RandomWalkPolicy, ReplayPolicy


@program("test/guard_spinner", bug_kinds=())
def spinner_program(t):
    """One thread spins on a flag nobody ever sets: runs forever."""

    def spin(t, x):
        while True:
            value = yield t.read(x)
            if value:
                break

    x = t.var("x", 0)
    yield t.spawn(spin, x)


@program("test/guard_divzero", bug_kinds=())
def divzero_program(t):
    """A worker raises an arbitrary Python exception mid-execution."""

    def worker(t, x):
        value = yield t.read(x)
        yield t.write(x, 1 // value)

    x = t.var("x", 0)
    h = yield t.spawn(worker, x)
    yield t.join(h)


class TestGuardConfig:
    def test_disabled_by_default(self):
        assert not GuardConfig().enabled

    def test_enabled_by_any_knob(self):
        assert GuardConfig(step_budget=10).enabled
        assert GuardConfig(wall_seconds=1.0).enabled
        assert GuardConfig(livelock_window=8).enabled

    def test_identity_tuple(self):
        config = GuardConfig(step_budget=5, wall_seconds=2.5, livelock_window=9)
        assert config.as_tuple() == (5, 2.5, 9)

    def test_livelock_window_validated(self):
        with pytest.raises(ValueError, match="window must be >= 2"):
            LivelockDetector(1)


class TestStepBudget:
    def test_trips_as_timeout_outcome(self):
        result = run_program(
            spinner_program,
            RandomWalkPolicy(0),
            guard=GuardConfig(step_budget=25),
        )
        assert result.timed_out
        assert result.crashed  # a watchdog kill is a finding, not noise
        assert result.outcome == "timeout"
        assert result.steps == 25
        assert result.failure_frames  # frontier recorded for triage

    def test_budget_zero_means_no_events(self):
        result = run_program(
            spinner_program, RandomWalkPolicy(0), guard=GuardConfig(step_budget=0)
        )
        assert result.timed_out and result.steps == 0

    def test_deterministic_same_schedule_same_kill(self):
        runs = [
            run_program(
                spinner_program,
                RandomWalkPolicy(7),
                guard=GuardConfig(step_budget=30),
            )
            for _ in range(2)
        ]
        assert runs[0].outcome == runs[1].outcome == "timeout"
        assert runs[0].steps == runs[1].steps
        assert list(runs[0].schedule) == list(runs[1].schedule)
        assert dedup_key(runs[0]) == dedup_key(runs[1])

    def test_timeout_replays_identically(self):
        found = run_program(
            spinner_program, RandomWalkPolicy(3), guard=GuardConfig(step_budget=40)
        )
        assert found.timed_out
        replayed = run_program(
            spinner_program,
            ReplayPolicy(list(found.schedule)),
            guard=GuardConfig(step_budget=40),
        )
        assert replayed.outcome == "timeout"
        assert replayed.steps == found.steps
        assert replayed.diverged is None
        assert dedup_key(replayed) == dedup_key(found)

    def test_counter_incremented(self):
        before = GLOBAL_COUNTERS.snapshot()
        run_program(
            spinner_program, RandomWalkPolicy(0), guard=GuardConfig(step_budget=10)
        )
        assert GLOBAL_COUNTERS.delta(before).timeouts == 1

    def test_unguarded_behavior_unchanged(self):
        # Without a guard the spinner is truncated at max_steps, not crashed.
        result = run_program(spinner_program, RandomWalkPolicy(0), max_steps=50)
        assert result.truncated
        assert not result.crashed
        assert result.outcome is None


class TestLivelock:
    def test_spinner_flagged(self):
        result = run_program(
            spinner_program,
            RandomWalkPolicy(0),
            guard=GuardConfig(livelock_window=12),
        )
        assert result.livelocked
        assert result.outcome == "livelock"
        assert result.failure_frames  # the cycling program points

    def test_livelock_deterministic(self):
        runs = [
            run_program(
                spinner_program,
                RandomWalkPolicy(5),
                guard=GuardConfig(livelock_window=10),
            )
            for _ in range(2)
        ]
        assert runs[0].outcome == runs[1].outcome == "livelock"
        assert runs[0].steps == runs[1].steps
        assert dedup_key(runs[0]) == dedup_key(runs[1])

    def test_progressing_program_not_flagged(self, racefree):
        result = run_program(
            racefree, RandomWalkPolicy(0), guard=GuardConfig(livelock_window=6)
        )
        assert not result.livelocked
        assert not result.crashed

    def test_counter_incremented(self):
        before = GLOBAL_COUNTERS.snapshot()
        run_program(
            spinner_program, RandomWalkPolicy(0), guard=GuardConfig(livelock_window=8)
        )
        assert GLOBAL_COUNTERS.delta(before).livelocks == 1


class TestWallClock:
    def test_fake_clock_trips_nondeterministic_timeout(self):
        ticks = iter(range(1000))
        watchdog = Watchdog(
            GuardConfig(wall_seconds=3.0, wall_check_interval=1),
            clock=lambda: float(next(ticks)),
        )
        watchdog.start()
        watchdog.check_step(0, tuple)  # 1s elapsed: fine
        watchdog.check_step(1, tuple)  # 2s
        with pytest.raises(ExecutionTimeout) as excinfo:
            for step in range(2, 10):
                watchdog.check_step(step, tuple)
        assert excinfo.value.deterministic is False

    def test_checked_only_at_interval(self):
        def make_clock():
            ticks = iter(range(100, 1000))
            return lambda: float(next(ticks))

        watchdog = Watchdog(
            GuardConfig(wall_seconds=0.0, wall_check_interval=64), clock=make_clock()
        )
        watchdog.start()
        with pytest.raises(ExecutionTimeout):
            watchdog.check_step(0, tuple)
        watchdog = Watchdog(
            GuardConfig(wall_seconds=0.0, wall_check_interval=64), clock=make_clock()
        )
        watchdog.start()
        watchdog.check_step(7, tuple)  # off-interval step: not checked

    def test_real_executor_wall_timeout(self):
        result = run_program(
            spinner_program,
            RandomWalkPolicy(0),
            max_steps=10_000_000,
            guard=GuardConfig(wall_seconds=0.0, wall_check_interval=1),
        )
        assert result.timed_out


class TestExceptionIsolation:
    def test_uncaught_exception_becomes_structured_crash(self):
        result = run_program(divzero_program, RandomWalkPolicy(0))
        assert result.crashed
        assert result.outcome == "exception"
        assert "ZeroDivisionError" in (result.trace.failure or "")
        assert any("worker" in frame for frame in result.failure_frames)

    def test_exception_crash_is_deterministic_and_replayable(self):
        found = run_program(divzero_program, RandomWalkPolicy(2))
        assert found.outcome == "exception"
        replayed = run_program(divzero_program, ReplayPolicy(list(found.schedule)))
        assert replayed.outcome == "exception"
        assert replayed.diverged is None
        assert dedup_key(replayed) == dedup_key(found)

    def test_violation_subclass(self):
        error = UncaughtProgramException("KeyError", "'x'", ("worker:3",))
        assert error.kind == "exception"
        assert "KeyError" in str(error) and "worker:3" in str(error)

    def test_infrastructure_errors_still_raise(self):
        @program("test/guard_badspawn", bug_kinds=())
        def badspawn(t):
            yield t.spawn(None)

        with pytest.raises(ProgramError):
            run_program(badspawn, RandomWalkPolicy(0))


class TestErrorTypes:
    def test_execution_timeout_kinds(self):
        assert ExecutionTimeout("x").kind == "timeout"
        assert ExecutionTimeout("x").deterministic is True
        assert LivelockDetected("x", window=9).kind == "livelock"
        assert LivelockDetected("x", window=9).window == 9


class TestGuardOnBench:
    def test_guarded_bug_still_found(self):
        # A generous guard must not change what a bench execution finds.
        prog = bench.get("CS/account")
        guard = GuardConfig(step_budget=100_000, livelock_window=10_000)
        for seed in range(12):
            plain = run_program(prog, RandomWalkPolicy(seed))
            guarded = run_program(prog, RandomWalkPolicy(seed), guard=guard)
            assert plain.outcome == guarded.outcome
            assert list(plain.schedule) == list(guarded.schedule)
