"""Mutation operators and the observed-event pool."""

from __future__ import annotations

import random

import pytest

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.mutation import MUTATION_OPERATORS, EventPool, ScheduleMutator
from repro.runtime import run_program
from repro.schedulers import RandomWalkPolicy


def filled_pool(program, seeds=5):
    pool = EventPool()
    for seed in range(seeds):
        pool.observe(run_program(program, RandomWalkPolicy(seed)).trace)
    return pool


class TestEventPool:
    def test_observe_counts_new_events_once(self, reorder3):
        pool = EventPool()
        trace = run_program(reorder3, RandomWalkPolicy(0)).trace
        first = pool.observe(trace)
        second = pool.observe(trace)
        assert first > 0
        assert second == 0

    def test_reads_and_writes_split_by_location(self, reorder3):
        pool = filled_pool(reorder3)
        assert "var:a" in pool.reads and "var:a" in pool.writes
        assert all(e.is_read for events in pool.reads.values() for e in events)
        assert all(e.is_write for events in pool.writes.values() for e in events)

    def test_random_constraint_none_on_empty_pool(self):
        assert EventPool().random_constraint(random.Random(0)) is None

    def test_random_constraint_well_formed(self, reorder3):
        pool = filled_pool(reorder3)
        rng = random.Random(1)
        for _ in range(100):
            constraint = pool.random_constraint(rng)
            assert constraint is not None
            assert constraint.read.is_read
            assert constraint.write is None or constraint.write.location == constraint.read.location

    def test_random_constraint_can_target_initial_write(self, reorder3):
        pool = filled_pool(reorder3)
        rng = random.Random(2)
        draws = [pool.random_constraint(rng) for _ in range(200)]
        assert any(c.write is None for c in draws)
        assert any(c.write is not None for c in draws)

    def test_positive_bias_respected(self, reorder3):
        pool = filled_pool(reorder3)
        rng = random.Random(3)
        always_negative = [pool.random_constraint(rng, positive_bias=0.0) for _ in range(50)]
        assert all(not c.positive for c in always_negative)
        always_positive = [pool.random_constraint(rng, positive_bias=1.0) for _ in range(50)]
        assert all(c.positive for c in always_positive)

    def test_len_counts_distinct_abstract_events(self, reorder3):
        pool = filled_pool(reorder3)
        assert len(pool) > 0


class TestScheduleMutator:
    def test_operator_set_matches_paper(self):
        assert set(MUTATION_OPERATORS) == {"insert", "swap", "delete", "negate"}

    def test_mutation_of_empty_schedule_inserts(self, reorder3):
        pool = filled_pool(reorder3)
        mutator = ScheduleMutator(random.Random(0))
        mutant = mutator.mutate(AbstractSchedule.empty(), pool)
        assert len(mutant) == 1

    def test_empty_pool_returns_alpha_unchanged(self):
        mutator = ScheduleMutator(random.Random(0))
        alpha = AbstractSchedule.empty()
        assert mutator.mutate(alpha, EventPool()) == alpha

    def test_size_never_exceeds_cap(self, reorder3):
        pool = filled_pool(reorder3)
        mutator = ScheduleMutator(random.Random(0), max_constraints=3)
        alpha = AbstractSchedule.empty()
        for _ in range(200):
            alpha = mutator.mutate(alpha, pool)
            assert len(alpha) <= 3

    def test_all_operators_eventually_used(self, reorder3):
        pool = filled_pool(reorder3)
        mutator = ScheduleMutator(random.Random(0))
        alpha = AbstractSchedule.empty()
        for _ in range(300):
            alpha = mutator.mutate(alpha, pool)
        assert all(count > 0 for count in mutator.operator_counts.values())

    def test_mutation_deterministic_given_rng(self, reorder3):
        pool_a = filled_pool(reorder3)
        pool_b = filled_pool(reorder3)
        m1 = ScheduleMutator(random.Random(7))
        m2 = ScheduleMutator(random.Random(7))
        a = b = AbstractSchedule.empty()
        for _ in range(50):
            a = m1.mutate(a, pool_a)
            b = m2.mutate(b, pool_b)
        assert a == b

    def test_negate_produces_negative_constraint(self, reorder3):
        pool = filled_pool(reorder3)
        rng = random.Random(0)
        constraint = pool.random_constraint(rng, positive_bias=1.0)
        alpha = AbstractSchedule.of(constraint)
        negated = alpha.negate(constraint)
        assert next(iter(negated.constraints)).positive is False

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ScheduleMutator(random.Random(0), max_constraints=0)

    def test_mutants_stay_well_formed(self, reorder3):
        pool = filled_pool(reorder3)
        mutator = ScheduleMutator(random.Random(11))
        alpha = AbstractSchedule.empty()
        for _ in range(300):
            alpha = mutator.mutate(alpha, pool)
            for constraint in alpha:
                assert isinstance(constraint, Constraint)
                assert constraint.read.is_read
                if constraint.write is not None:
                    assert isinstance(constraint.write, AbstractEvent)
                    assert constraint.write.location == constraint.read.location
