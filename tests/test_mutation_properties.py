"""Property-based tests (hypothesis) for schedule mutation and minimization.

Complements tests/test_property.py: these properties pin down the mutation
operators' *well-formedness* contract — every mutant is a valid abstract
schedule built only from observed events, within the constraint cap — and
minimization's contract that its output is a subset of the input that still
reproduces the crash verdict.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent, Event
from repro.core.fuzzer import fuzz
from repro.core.minimize import crash_rate, minimize_schedule
from repro.core.mutation import MUTATION_OPERATORS, EventPool, ScheduleMutator
from repro.core.trace import Trace
from repro.gen.synth import GenConfig, synthesize
from repro.runtime.executor import Executor
from repro.schedulers.random_walk import RandomWalkPolicy

from tests.conftest import make_reorder

_locations = st.sampled_from(["var:x", "var:y", "var:z"])
#: Read/write-capable kinds beyond plain r/w, so well-formedness is checked
#: for rmw-style events too (they are both read- and write-capable).
_read_kinds = st.sampled_from(["r", "rmw", "cas"])
_write_kinds = st.sampled_from(["w", "rmw", "cas"])


@st.composite
def pools(draw):
    """An EventPool populated through observe(), as the fuzzer would."""
    events = []
    eid = 1
    for _ in range(draw(st.integers(1, 12))):
        location = draw(_locations)
        if draw(st.booleans()):
            kind = draw(_read_kinds)
            rf = 0
        else:
            kind = draw(_write_kinds)
            rf = 0 if kind in ("rmw", "cas") else None
        events.append(
            Event(eid, draw(st.integers(0, 2)), kind, location, f"f:{draw(st.integers(1, 6))}", rf=rf)
        )
        eid += 1
    pool = EventPool()
    pool.observe(Trace(events=events))
    return pool


@st.composite
def schedules_from(draw, pool):
    """A well-formed schedule drawn from a pool (may be empty)."""
    alpha = AbstractSchedule.empty()
    rng = random.Random(draw(st.integers(0, 10_000)))
    for _ in range(draw(st.integers(0, 4))):
        constraint = pool.random_constraint(rng)
        if constraint is not None:
            alpha = alpha.insert(constraint)
    return alpha


@st.composite
def pool_and_schedule(draw):
    pool = draw(pools())
    return pool, draw(schedules_from(pool))


def _assert_well_formed(constraint: Constraint) -> None:
    """Re-run the Constraint invariants explicitly (not just __post_init__)."""
    assert constraint.read.is_read
    if constraint.write is not None:
        assert constraint.write.is_write
        assert constraint.write.location == constraint.read.location


class TestMutationProperties:
    @given(pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_mutants_are_well_formed_and_pool_closed(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        mutator = ScheduleMutator(random.Random(seed), max_constraints=5)
        mutant = alpha
        for _ in range(10):
            mutant = mutator.mutate(mutant, pool)
            for constraint in mutant:
                _assert_well_formed(constraint)
                # Pool closure: every constraint — inherited, negated or
                # freshly inserted — is drawn from observed events; the
                # write side may also be the initial pseudo-write (None).
                assert constraint.read in pool.reads.get(constraint.location, [])
                assert constraint.write is None or constraint.write in pool.writes.get(
                    constraint.location, []
                )

    @given(pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_single_mutation_changes_size_by_at_most_one(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        mutator = ScheduleMutator(random.Random(seed), max_constraints=8)
        mutant = mutator.mutate(alpha, pool)
        assert abs(len(mutant) - len(alpha)) <= 1

    @given(pool_and_schedule(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_mutation_chain_respects_cap(self, pool_alpha, seed, cap):
        pool, alpha = pool_alpha
        assume(len(alpha) <= cap)
        mutator = ScheduleMutator(random.Random(seed), max_constraints=cap)
        mutant = alpha
        for _ in range(15):
            mutant = mutator.mutate(mutant, pool)
            assert len(mutant) <= cap

    @given(pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_operator_counts_track_calls(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        mutator = ScheduleMutator(random.Random(seed), max_constraints=5)
        for _ in range(7):
            alpha = mutator.mutate(alpha, pool)
        assert sum(mutator.operator_counts.values()) == 7
        assert set(mutator.operator_counts) == set(MUTATION_OPERATORS)

    @given(pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_mutation_is_deterministic_given_rng_seed(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        a = ScheduleMutator(random.Random(seed), max_constraints=5).mutate(alpha, pool)
        b = ScheduleMutator(random.Random(seed), max_constraints=5).mutate(alpha, pool)
        assert a == b


class TestSpliceProperties:
    @given(pool_and_schedule(), pool_and_schedule(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_child_is_bounded_subset_of_parents(self, pa, pb, seed, cap):
        _, alpha = pa
        _, beta = pb
        mutator = ScheduleMutator(random.Random(seed), max_constraints=cap)
        child = mutator.splice(alpha, beta)
        union = alpha.constraints | beta.constraints
        assert child.constraints <= union
        assert len(child) <= cap
        if union:
            assert len(child) >= 1
        else:
            assert child == AbstractSchedule.empty()

    @given(pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_splice_is_deterministic_given_rng_seed(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        other = AbstractSchedule(frozenset(c.negated() for c in alpha))
        a = ScheduleMutator(random.Random(seed)).splice(alpha, other)
        b = ScheduleMutator(random.Random(seed)).splice(alpha, other)
        assert a == b


class TestEventPoolProperties:
    @given(pools(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_random_constraint_is_well_formed_and_pool_drawn(self, pool, seed):
        rng = random.Random(seed)
        constraint = pool.random_constraint(rng)
        if constraint is None:
            assert not pool.constrainable_locations
            return
        _assert_well_formed(constraint)
        assert constraint.read in pool.reads[constraint.location]
        assert constraint.write is None or constraint.write in pool.writes[constraint.location]

    @given(pools(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_positive_bias_extremes(self, pool, seed):
        rng = random.Random(seed)
        always = pool.random_constraint(rng, positive_bias=1.0)
        never = pool.random_constraint(rng, positive_bias=0.0)
        if always is not None:
            assert always.positive
        if never is not None:
            assert not never.positive

    @given(pools())
    @settings(max_examples=100, deadline=None)
    def test_observe_is_idempotent(self, pool):
        size = len(pool)
        reads = {loc: list(events) for loc, events in pool.reads.items()}
        trace = Trace(
            events=[
                Event(i + 1, 0, e.kind, e.location, e.loc)
                for i, e in enumerate(pool._seen)
            ]
        )
        assert pool.observe(trace) == 0
        assert len(pool) == size
        assert pool.reads == reads


@st.composite
def generated_pools(draw):
    """An EventPool observed from a real trace of a *generated* program.

    Synthetic event lists (``pools()``) exercise the operators on arbitrary
    shapes; this strategy pins the same contracts on traces the executor
    actually produces — sync events, spawns/joins, rmw/cas, planted-bug
    windows and all (ROADMAP item 5 / ISSUE 6 satellite).
    """
    seed = draw(st.integers(0, 250))
    generated = synthesize(seed, GenConfig(max_threads=3, max_blocks=3))
    policy = RandomWalkPolicy(seed=draw(st.integers(0, 50)))
    result = Executor(
        generated.program, policy, max_steps=generated.spec.step_budget
    ).run()
    pool = EventPool()
    pool.observe(result.trace)
    return pool


@st.composite
def generated_pool_and_schedule(draw):
    pool = draw(generated_pools())
    return pool, draw(schedules_from(pool))


class TestGeneratedProgramMutation:
    """Mutation/splice properties over pools from generated-program traces."""

    @given(generated_pool_and_schedule(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_mutants_are_well_formed_and_pool_closed(self, pool_alpha, seed):
        pool, alpha = pool_alpha
        mutator = ScheduleMutator(random.Random(seed), max_constraints=5)
        mutant = alpha
        for _ in range(8):
            mutant = mutator.mutate(mutant, pool)
            for constraint in mutant:
                _assert_well_formed(constraint)
                assert constraint.read in pool.reads.get(constraint.location, [])
                assert constraint.write is None or constraint.write in pool.writes.get(
                    constraint.location, []
                )

    @given(generated_pool_and_schedule(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_mutation_chain_respects_cap(self, pool_alpha, seed, cap):
        pool, alpha = pool_alpha
        assume(len(alpha) <= cap)
        mutator = ScheduleMutator(random.Random(seed), max_constraints=cap)
        mutant = alpha
        for _ in range(10):
            mutant = mutator.mutate(mutant, pool)
            assert len(mutant) <= cap

    @given(generated_pool_and_schedule(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_splice_child_is_bounded_subset_of_parents(self, pool_alpha, seed, cap):
        pool, alpha = pool_alpha
        beta = AbstractSchedule(frozenset(c.negated() for c in alpha))
        mutator = ScheduleMutator(random.Random(seed), max_constraints=cap)
        child = mutator.splice(alpha, beta)
        union = alpha.constraints | beta.constraints
        assert child.constraints <= union
        assert len(child) <= cap

    @given(st.integers(0, 60))
    @settings(max_examples=5, deadline=None)
    def test_minimized_generated_crash_is_subset(self, seed):
        """Minimization's subset contract holds on generated planted bugs."""
        generated = synthesize(seed, GenConfig(max_threads=3, max_blocks=3))
        assume(generated.ground_truth.crash_outcome == "assertion")
        report = fuzz(
            generated.program, max_executions=200, seed=0, stop_on_first_crash=True
        )
        assume(report.crashes)
        alpha = report.crashes[0].abstract_schedule
        assume(crash_rate(generated.program, alpha, probes=3, base_seed=0) >= 0.6)
        outcome = minimize_schedule(
            generated.program, alpha, probes=3, threshold=0.6, base_seed=0
        )
        assert outcome.minimized.constraints <= outcome.original.constraints
        assert outcome.removed == len(outcome.original) - len(outcome.minimized)


class TestMinimizationProperties:
    @given(st.integers(2, 4), st.integers(0, 5))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    )
    def test_minimized_schedule_is_subset_and_reproduces(self, width, seed):
        """For any crash whose schedule reproduces reliably on the probe
        seeds, minimization (a) only removes constraints and (b) yields a
        schedule that still reproduces the crash verdict on those seeds.

        (Reproduction on *other* seeds is not part of the contract — the
        proactive scheduler is randomized around the constraints.)"""
        program = make_reorder(width)
        report = fuzz(program, max_executions=300, seed=seed, stop_on_first_crash=True)
        assume(report.crashes)
        alpha = report.crashes[0].abstract_schedule
        assume(crash_rate(program, alpha, probes=4, base_seed=0) >= 0.6)
        outcome = minimize_schedule(program, alpha, probes=4, threshold=0.6, base_seed=0)
        assert outcome.minimized.constraints <= outcome.original.constraints
        assert outcome.removed == len(outcome.original) - len(outcome.minimized)
        assert crash_rate(program, outcome.minimized, probes=4, base_seed=0) >= 0.6

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_minimization_is_deterministic(self, seed):
        program = make_reorder(3)
        report = fuzz(program, max_executions=300, seed=seed, stop_on_first_crash=True)
        assume(report.crashes)
        alpha = report.crashes[0].abstract_schedule
        a = minimize_schedule(program, alpha, probes=3)
        b = minimize_schedule(program, alpha, probes=3)
        assert a.minimized == b.minimized
        assert a.executions == b.executions
