"""Determinism diagnostics, DOT export and the splice mutation stage."""

from __future__ import annotations

import random

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.fuzzer import RffConfig, fuzz
from repro.core.mutation import ScheduleMutator
from repro.runtime import program, run_program
from repro.runtime.diagnostics import trace_to_dot, verify_determinism
from repro.schedulers import PosPolicy


class TestVerifyDeterminism:
    def test_deterministic_program_passes(self, reorder3):
        report = verify_determinism(reorder3, seeds=5)
        assert report.deterministic
        assert report.seeds_checked == 5

    def test_nondeterministic_program_flagged(self):
        import itertools

        counter = itertools.count()

        @program("t/nondet")
        def nondet(t):
            x = t.var("x", 0)
            # Hidden cross-execution state: a classic PUT-authoring bug.
            yield t.write(x, next(counter))

        report = verify_determinism(nondet, seeds=5)
        assert not report.deterministic
        assert report.diverging_seed == 0
        assert "divergence" in report.detail

    def test_all_benchmarks_are_deterministic_sample(self):
        from repro import bench

        for name in ("CS/account", "SafeStack", "Chess/WorkStealQueue",
                     "ConVul-CVE-Benchmarks/CVE-2016-9806"):
            report = verify_determinism(bench.get(name), seeds=3)
            assert report.deterministic, f"{name}: {report.detail}"


class TestTraceToDot:
    def test_dot_structure(self, reorder3):
        trace = run_program(reorder3, PosPolicy(0)).trace
        dot = trace_to_dot(trace)
        assert dot.startswith("digraph trace {") and dot.endswith("}")
        assert dot.count("[label=") >= len(trace)
        assert "rf" in dot  # at least one reads-from edge

    def test_crash_trace_marks_outcome(self, racy_counter):
        for seed in range(300):
            result = run_program(racy_counter, PosPolicy(seed))
            if result.crashed:
                dot = trace_to_dot(result.trace)
                assert "octagon" in dot and "assertion" in dot
                return
        raise AssertionError("no crash found")

    def test_dot_parses_as_graph(self, reorder3):
        """networkx's pydot-free DOT reading is unavailable; instead verify
        structural balance: every declared node id appears, edges reference
        declared nodes."""
        trace = run_program(reorder3, PosPolicy(1)).trace
        dot = trace_to_dot(trace)
        declared = {f"e{e.eid}" for e in trace}
        for line in dot.splitlines():
            line = line.strip()
            if "->" in line:
                src, _, rest = line.partition("->")
                src = src.strip()
                dst = rest.strip().split()[0].rstrip(";")
                assert src in declared | {"outcome"}, src
                assert dst in declared | {"outcome"}, dst


class TestSplice:
    def _constraint(self, loc_suffix):
        read = AbstractEvent("r", "var:x", f"r:{loc_suffix}")
        write = AbstractEvent("w", "var:x", f"w:{loc_suffix}")
        return Constraint(read, write)

    def test_child_draws_from_both_parents(self):
        mutator = ScheduleMutator(random.Random(0))
        a = AbstractSchedule.of(self._constraint(1), self._constraint(2))
        b = AbstractSchedule.of(self._constraint(3), self._constraint(4))
        children = [mutator.splice(a, b) for _ in range(50)]
        union = a.constraints | b.constraints
        for child in children:
            assert child.constraints <= union
            assert len(child) >= 1
        # Over many draws, some child must mix both parents.
        assert any(
            child.constraints & a.constraints and child.constraints & b.constraints
            for child in children
        )

    def test_respects_cap(self):
        mutator = ScheduleMutator(random.Random(1), max_constraints=2)
        a = AbstractSchedule.of(*(self._constraint(i) for i in range(4)))
        b = AbstractSchedule.of(*(self._constraint(i + 10) for i in range(4)))
        for _ in range(50):
            assert len(mutator.splice(a, b)) <= 2

    def test_empty_parents_yield_empty(self):
        mutator = ScheduleMutator(random.Random(2))
        assert mutator.splice(AbstractSchedule.empty(), AbstractSchedule.empty()) == AbstractSchedule.empty()

    def test_fuzzer_with_splicing_still_finds_bugs(self, reorder3):
        config = RffConfig(splice_probability=0.5)
        report = fuzz(reorder3, max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_fuzzer_with_splicing_disabled(self, reorder3):
        config = RffConfig(splice_probability=0.0)
        report = fuzz(reorder3, max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert report.found_bug
