"""Extensions: extras suite, directed confirmation, parallel campaigns,
coverage estimation."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import confirm_races, predict_races
from repro.bench.extras import extras_programs
from repro.core import fuzz
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.coverage import CoverageEstimate, chao1, estimate_coverage, good_turing_discovery
from repro.harness.parallel import ParallelCampaign
from repro.harness.tools import RffTool, pos_tool
from repro.runtime import run_program, run_program_tso
from repro.schedulers import PosPolicy, ReplayPolicy


def _extra(name: str):
    return next(p for p in extras_programs() if p.name == name)


class TestExtrasSuite:
    def test_six_curated_programs(self):
        names = [p.name for p in extras_programs()]
        assert len(names) == len(set(names)) == 6
        assert all(name.startswith("extras/") for name in names)

    def test_dekker_safe_under_sc(self):
        prog = _extra("extras/dekker")
        for seed in range(60):
            result = run_program(prog, PosPolicy(seed), max_steps=prog.max_steps or 2000)
            assert not result.crashed, f"Dekker violated under SC, seed {seed}"

    def test_dekker_broken_under_tso(self):
        prog = _extra("extras/dekker")
        crashes = sum(
            run_program_tso(prog, PosPolicy(s), max_steps=prog.max_steps or 2000).crashed
            for s in range(200)
        )
        assert crashes > 0, "Dekker should break under TSO"

    def test_peterson_safe_under_sc(self):
        prog = _extra("extras/peterson")
        for seed in range(60):
            result = run_program(prog, PosPolicy(seed), max_steps=prog.max_steps or 1500)
            assert not result.crashed

    def test_ticket_lock_is_bug_free(self):
        prog = _extra("extras/ticket_lock")
        for seed in range(80):
            result = run_program(prog, PosPolicy(seed), max_steps=prog.max_steps or 2000)
            assert not result.crashed, f"ticket lock broke under seed {seed}"

    def test_readers_writers_torn_read_findable(self):
        report = fuzz(_extra("extras/readers_writers"), max_executions=400, seed=0,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_aba_counter_findable(self):
        report = fuzz(_extra("extras/aba_counter"), max_executions=400, seed=0,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_barrier_desertion_always_deadlocks(self):
        prog = _extra("extras/barrier_desertion")
        for seed in range(10):
            assert run_program(prog, PosPolicy(seed)).outcome == "deadlock"

    def test_extras_not_in_evaluation_registry(self):
        from repro import bench

        assert not any(name.startswith("extras/") for name in bench.names())


class TestDirectedConfirmation:
    def test_predicts_races_on_racy_program(self, racy_counter):
        races = predict_races(racy_counter, executions=10)
        assert races

    def test_no_predictions_on_clean_program(self, racefree):
        assert predict_races(racefree, executions=10) == []

    def test_confirms_account_race(self):
        from repro import bench

        results = confirm_races(bench.get("CS/account"), executions=8)
        assert any(r.confirmed for r in results)

    def test_confirmed_schedule_is_replayable(self):
        from repro import bench

        program = bench.get("CS/account")
        confirmed = [r for r in confirm_races(program, executions=8) if r.confirmed]
        assert confirmed
        replay = run_program(program, ReplayPolicy(list(confirmed[0].crashing_concrete)))
        assert replay.crashed

    def test_reorder_race_confirmed_via_constraints(self):
        from repro import bench

        results = confirm_races(bench.get("CS/reorder_10"), executions=8)
        hits = [r for r in results if r.confirmed]
        assert hits, "directed search should confirm the reorder race"
        assert any(r.crashing_schedule and len(r.crashing_schedule) > 0 for r in hits)

    def test_unconfirmable_race_reported_as_such(self):
        """A racy-but-benign program: races predicted, never confirmed."""
        from repro.runtime import program

        @program("t/benign_race")
        def benign(t):
            def writer(t, x):
                yield t.write(x, 1)

            x = t.var("x", 0)
            yield t.spawn(writer, x)
            yield t.read(x)  # racy but the program asserts nothing

        results = confirm_races(benign, executions=8)
        assert results
        assert all(not r.confirmed for r in results)
        assert all(r.schedules_tried > 0 for r in results)


class TestParallelCampaign:
    def test_matches_serial_results(self):
        config = CampaignConfig(trials=2, budget=150, base_seed=99)
        programs = ["CS/account", "Splash2/lu"]
        serial = Campaign(config).run(
            [RffTool(), pos_tool()], [__import__("repro").bench.get(n) for n in programs]
        )
        parallel = ParallelCampaign(config, processes=2).run(["RFF", "POS"], programs)
        for tool in ("RFF", "POS"):
            for name in programs:
                assert parallel.schedules_to_bug(tool, name) == serial.schedules_to_bug(tool, name)

    def test_unknown_tool_rejected(self):
        campaign = ParallelCampaign(CampaignConfig(trials=1, budget=10))
        with pytest.raises(KeyError):
            campaign.run(["NotATool"], ["CS/account"])


class TestCoverageEstimation:
    def test_chao1_all_distinct(self):
        # Every class seen once: estimate far exceeds observation.
        assert chao1([1] * 10) == 10 + 10 * 9 / 2

    def test_chao1_saturated(self):
        # Every class seen many times: nothing left to discover.
        assert chao1([50, 40, 30]) == 3

    def test_good_turing_bounds(self):
        assert good_turing_discovery([]) == 1.0
        assert good_turing_discovery([10, 10]) == 0.0
        assert 0 < good_turing_discovery([1, 1, 2]) < 1

    def test_estimate_from_counter(self):
        counter = Counter({"a": 5, "b": 1, "c": 1, "d": 2})
        estimate = estimate_coverage(counter)
        assert estimate.observed_classes == 4
        assert estimate.executions == 9
        assert estimate.estimated_classes >= 4
        assert 0 <= estimate.saturation <= 1

    def test_estimates_on_real_campaign(self, reorder3):
        report = fuzz(reorder3, max_executions=150, seed=0)
        estimate = estimate_coverage(Counter(report.signature_counts))
        assert isinstance(estimate, CoverageEstimate)
        assert estimate.observed_classes == report.unique_signatures
        assert estimate.discovery_probability <= 1.0
