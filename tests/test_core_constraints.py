"""Abstract schedules: constraint validity, instantiation, set algebra."""

from __future__ import annotations

import pytest

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.trace import Trace
from repro.runtime import run_program
from repro.schedulers import RandomWalkPolicy

READ = AbstractEvent("r", "var:x", "reader:1")
WRITE = AbstractEvent("w", "var:x", "writer:1")
OTHER_WRITE = AbstractEvent("w", "var:x", "writer:2")
Y_READ = AbstractEvent("r", "var:y", "reader:2")


class TestConstraintValidity:
    def test_well_formed_positive(self):
        c = Constraint(READ, WRITE)
        assert c.positive and c.location == "var:x"

    def test_initial_write_allowed(self):
        c = Constraint(READ, None)
        assert c.write is None
        assert "init" in str(c)

    def test_read_side_must_read(self):
        with pytest.raises(ValueError):
            Constraint(WRITE, WRITE)

    def test_write_side_must_write(self):
        with pytest.raises(ValueError):
            Constraint(READ, Y_READ)

    def test_locations_must_match(self):
        y_write = AbstractEvent("w", "var:y", "writer:9")
        with pytest.raises(ValueError):
            Constraint(READ, y_write)

    def test_negation_flips_sign_twice_is_identity(self):
        c = Constraint(READ, WRITE)
        assert c.negated().positive is False
        assert c.negated().negated() == c

    def test_str_arrow_differs_by_sign(self):
        c = Constraint(READ, WRITE)
        assert "--rf->" in str(c)
        assert "-/rf/->" in str(c.negated())


class TestScheduleAlgebra:
    def test_empty_schedule(self):
        alpha = AbstractSchedule.empty()
        assert len(alpha) == 0
        assert str(alpha) == "α{}"

    def test_insert_delete_roundtrip(self):
        c = Constraint(READ, WRITE)
        alpha = AbstractSchedule.empty().insert(c)
        assert c in alpha.constraints
        assert len(alpha.delete(c)) == 0

    def test_insert_is_idempotent(self):
        c = Constraint(READ, WRITE)
        alpha = AbstractSchedule.of(c).insert(c)
        assert len(alpha) == 1

    def test_swap_replaces(self):
        c1 = Constraint(READ, WRITE)
        c2 = Constraint(READ, OTHER_WRITE)
        alpha = AbstractSchedule.of(c1).swap(c1, c2)
        assert alpha.constraints == frozenset({c2})

    def test_negate_in_place(self):
        c = Constraint(READ, WRITE)
        alpha = AbstractSchedule.of(c).negate(c)
        assert alpha.constraints == frozenset({c.negated()})

    def test_positives_negatives_partition(self):
        c1 = Constraint(READ, WRITE)
        c2 = Constraint(Y_READ, None, positive=False)
        alpha = AbstractSchedule.of(c1, c2)
        assert alpha.positives == frozenset({c1})
        assert alpha.negatives == frozenset({c2})

    def test_schedules_are_hashable(self):
        c = Constraint(READ, WRITE)
        assert len({AbstractSchedule.of(c), AbstractSchedule.of(c)}) == 1


class TestInstantiation:
    def _trace_with_pair(self):
        from repro.core.events import Event

        return Trace(
            events=[
                Event(1, 1, "w", "var:x", "writer:1"),
                Event(2, 2, "r", "var:x", "reader:1", rf=1),
            ]
        )

    def test_positive_witnessed(self):
        trace = self._trace_with_pair()
        assert Constraint(READ, WRITE).witnessed_by(trace)
        assert AbstractSchedule.of(Constraint(READ, WRITE)).instantiated_by(trace)

    def test_negative_violated_when_witnessed(self):
        trace = self._trace_with_pair()
        alpha = AbstractSchedule.of(Constraint(READ, WRITE, positive=False))
        assert not alpha.instantiated_by(trace)

    def test_positive_unwitnessed_fails(self):
        trace = self._trace_with_pair()
        alpha = AbstractSchedule.of(Constraint(READ, OTHER_WRITE))
        assert not alpha.instantiated_by(trace)

    def test_negative_unwitnessed_holds(self):
        trace = self._trace_with_pair()
        alpha = AbstractSchedule.of(Constraint(READ, OTHER_WRITE, positive=False))
        assert alpha.instantiated_by(trace)

    def test_empty_schedule_instantiated_by_everything(self):
        assert AbstractSchedule.empty().instantiated_by(self._trace_with_pair())
        assert AbstractSchedule.empty().instantiated_by(Trace())

    def test_paper_equivalence_property(self, reorder3):
        """If two traces are rf-equivalent, either both or neither
        instantiate any abstract schedule (paper Section 3)."""
        runs = [run_program(reorder3, RandomWalkPolicy(s)) for s in range(30)]
        pairs = [
            (a, b)
            for i, a in enumerate(runs)
            for b in runs[i + 1 :]
            if a.trace.rf_equivalent(b.trace)
        ]
        assert pairs, "expected at least one rf-equivalent pair"
        a, b = pairs[0]
        some_pair = next(iter(a.trace.rf_pairs()))
        writer, reader = some_pair
        alpha = AbstractSchedule.of(Constraint(reader, writer))
        assert alpha.instantiated_by(a.trace) == alpha.instantiated_by(b.trace)
