"""The ``rff`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_programs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CS/reorder_100" in out
        assert out.count("\n") == 49

    def test_marks_mc_supported(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[mc]" in out


class TestFuzz:
    def test_fuzz_finds_reorder(self, capsys):
        assert main(["fuzz", "CS/reorder_10", "--budget", "200", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "first crash at:" in out
        assert "assertion" in out

    def test_fuzz_ablation_flags(self, capsys):
        code = main(
            ["fuzz", "CS/reorder_20", "--budget", "100", "--no-constraints", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first crash at:     None" in out

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            main(["fuzz", "CS/bogus"])


class TestRun:
    def test_run_pos(self, capsys):
        assert main(["run", "CS/account", "--tool", "POS", "--budget", "300"]) == 0
        assert "POS on CS/account" in capsys.readouterr().out

    def test_run_genmc_error(self, capsys):
        assert main(["run", "CS/reorder_10", "--tool", "GenMC"]) == 2
        assert "Error" in capsys.readouterr().out

    def test_unknown_tool_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "CS/account", "--tool", "NotATool"])


class TestCampaign:
    def test_small_campaign(self, capsys):
        code = main(
            [
                "campaign",
                "--trials", "2",
                "--budget", "100",
                "--programs", "CS/account", "Splash2/lu",
                "--tools", "RFF", "POS",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean bugs found" in out
        assert "cumulative bugs" in out


class TestFigure5:
    def test_figure5_runs(self, capsys):
        code = main(["figure5", "--program", "CS/reorder_3", "--executions", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("rf signatures") == 2  # POS and RFF blocks
