"""The ``rff`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_programs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CS/reorder_100" in out
        assert out.count("\n") == 49

    def test_marks_mc_supported(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[mc]" in out


class TestFuzz:
    def test_fuzz_finds_reorder(self, capsys):
        assert main(["fuzz", "CS/reorder_10", "--budget", "200", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "first crash at:" in out
        assert "assertion" in out

    def test_fuzz_ablation_flags(self, capsys):
        code = main(
            ["fuzz", "CS/reorder_20", "--budget", "100", "--no-constraints", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first crash at:     None" in out

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            main(["fuzz", "CS/bogus"])


class TestRun:
    def test_run_pos(self, capsys):
        assert main(["run", "CS/account", "--tool", "POS", "--budget", "300"]) == 0
        assert "POS on CS/account" in capsys.readouterr().out

    def test_run_genmc_error(self, capsys):
        assert main(["run", "CS/reorder_10", "--tool", "GenMC"]) == 2
        assert "Error" in capsys.readouterr().out

    def test_unknown_tool_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "CS/account", "--tool", "NotATool"])


class TestCampaign:
    def test_small_campaign(self, capsys):
        code = main(
            [
                "campaign",
                "--trials", "2",
                "--budget", "100",
                "--programs", "CS/account", "Splash2/lu",
                "--tools", "RFF", "POS",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean bugs found" in out
        assert "cumulative bugs" in out


class TestGen:
    def test_gen_prints_corpus_table(self, capsys):
        assert main(["gen", "--seed", "5", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "gen:5" in out and "gen:10" in out
        assert "6 programs" in out

    def test_gen_writes_jsonl(self, capsys, tmp_path):
        target = tmp_path / "corpus.jsonl"
        assert main(
            ["gen", "--seed", "5", "--count", "3", "--quiet", "--out", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert len(lines) == 3
        import json

        record = json.loads(lines[0])
        assert record["spec"]["seed"] == 5
        assert "ground_truth" in record

    def test_gen_with_config_token(self, capsys):
        assert main(["gen", "--seed", "1", "--count", "2", "--config", "t=2"]) == 0
        assert "gen:1:t=2" in capsys.readouterr().out

    def test_gen_rejects_bad_config_token(self):
        with pytest.raises(SystemExit):
            main(["gen", "--config", "zz=9"])

    def test_fuzz_accepts_gen_name(self, capsys):
        assert main(["fuzz", "gen:3", "--budget", "50", "--seed", "0"]) == 0
        assert "gen:3" in capsys.readouterr().out


class TestEvalGen:
    def test_small_eval_writes_report(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code = main(
            [
                "eval-gen",
                "--seed", "2000",
                "--count", "4",
                "--tools", "RFF",
                "--trials", "1",
                "--budget", "60",
                "--sanitizer-budget", "20",
                "--out", str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Crash channel" in out
        assert "Sanitizer channel" in out
        import json

        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert set(payload["tools"]) == {"RFF"}
        assert set(payload["sanitizers"]) == {"race", "lockset", "lockorder"}
        assert len(payload["corpus"]["programs"]) == 4


class TestFigure5:
    def test_figure5_runs(self, capsys):
        code = main(["figure5", "--program", "CS/reorder_3", "--executions", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("rf signatures") == 2  # POS and RFF blocks
