"""The ``rff`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_programs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CS/reorder_100" in out
        assert out.count("\n") == 49

    def test_marks_mc_supported(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[mc]" in out


class TestFuzz:
    def test_fuzz_finds_reorder(self, capsys):
        assert main(["fuzz", "CS/reorder_10", "--budget", "200", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "first crash at:" in out
        assert "assertion" in out

    def test_fuzz_ablation_flags(self, capsys):
        code = main(
            ["fuzz", "CS/reorder_20", "--budget", "100", "--no-constraints", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first crash at:     None" in out

    def test_unknown_program_exits_cleanly(self):
        # A typo must exit with a did-you-mean diagnostic, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "CS/bogus"])
        assert "did you mean" in str(excinfo.value)


class TestRun:
    def test_run_pos(self, capsys):
        assert main(["run", "CS/account", "--tool", "POS", "--budget", "300"]) == 0
        assert "POS on CS/account" in capsys.readouterr().out

    def test_run_genmc_error_goes_to_stderr(self, capsys):
        assert main(["run", "CS/reorder_10", "--tool", "GenMC"]) == 2
        captured = capsys.readouterr()
        assert "Error" in captured.err
        assert "Error" not in captured.out

    def test_unknown_tool_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "CS/account", "--tool", "NotATool"])


class TestCampaign:
    def test_small_campaign(self, capsys):
        code = main(
            [
                "campaign",
                "--trials", "2",
                "--budget", "100",
                "--programs", "CS/account", "Splash2/lu",
                "--tools", "RFF", "POS",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean bugs found" in out
        assert "cumulative bugs" in out


class TestGen:
    def test_gen_prints_corpus_table(self, capsys):
        assert main(["gen", "--seed", "5", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "gen:5" in out and "gen:10" in out
        assert "6 programs" in out

    def test_gen_writes_jsonl(self, capsys, tmp_path):
        target = tmp_path / "corpus.jsonl"
        assert main(
            ["gen", "--seed", "5", "--count", "3", "--quiet", "--out", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert len(lines) == 3
        import json

        record = json.loads(lines[0])
        assert record["spec"]["seed"] == 5
        assert "ground_truth" in record

    def test_gen_with_config_token(self, capsys):
        assert main(["gen", "--seed", "1", "--count", "2", "--config", "t=2"]) == 0
        assert "gen:1:t=2" in capsys.readouterr().out

    def test_gen_rejects_bad_config_token(self):
        with pytest.raises(SystemExit):
            main(["gen", "--config", "zz=9"])

    def test_fuzz_accepts_gen_name(self, capsys):
        assert main(["fuzz", "gen:3", "--budget", "50", "--seed", "0"]) == 0
        assert "gen:3" in capsys.readouterr().out

    def test_gen_json_success_is_parseable(self, capsys):
        import json

        assert main(["gen", "--seed", "5", "--count", "3", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] is True
        assert payload["seed"] == 5
        assert len(payload["programs"]) == 3
        assert all("kind" in row and "name" in row for row in payload["programs"])
        # Human summary stays off the JSON stream.
        assert "3 programs" in captured.err

    def test_gen_json_failure_is_parseable(self, capsys):
        import json

        assert main(["gen", "--config", "zz=9", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "zz" in payload["error"]
        assert "valid knobs:" in payload["error"]


class TestSubstrate:
    def test_list_py_namespace(self, capsys):
        assert main(["list", "--substrate", "py"]) == 0
        out = capsys.readouterr().out
        assert "py:counter_race" in out
        assert "CS/reorder_100" not in out

    def test_run_py_target_with_bare_name(self, capsys):
        code = main(
            ["run", "counter_race", "--substrate", "py",
             "--tool", "RFF", "--budget", "200"]
        )
        assert code == 0
        assert "py:counter_race" in capsys.readouterr().out

    def test_py_program_rejects_tso(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["fuzz", "py:counter_race", "--substrate", "py",
                 "--memory-model", "tso", "--budget", "10"]
            )
        assert "real memory" in str(excinfo.value)

    def test_replay_substrate_mismatch_exits_2(self, capsys, tmp_path):
        import json

        crash_file = tmp_path / "crash.json"
        crash_file.write_text(json.dumps({"program": "CS/account", "schedule": []}))
        code = main(["replay", str(crash_file), "--substrate", "py"])
        assert code == 2
        captured = capsys.readouterr()
        assert "dsl substrate" in captured.err
        assert captured.out == ""


class TestEvalGen:
    def test_small_eval_writes_report(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code = main(
            [
                "eval-gen",
                "--seed", "2000",
                "--count", "4",
                "--tools", "RFF",
                "--trials", "1",
                "--budget", "60",
                "--sanitizer-budget", "20",
                "--out", str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Crash channel" in out
        assert "Sanitizer channel" in out
        import json

        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert set(payload["tools"]) == {"RFF"}
        assert set(payload["sanitizers"]) == {"race", "lockset", "lockorder"}
        assert len(payload["corpus"]["programs"]) == 4


class TestFigure5:
    def test_figure5_runs(self, capsys):
        code = main(["figure5", "--program", "CS/reorder_3", "--executions", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("rf signatures") == 2  # POS and RFF blocks


CAMPAIGN_ARGS = [
    "campaign",
    "--trials", "1",
    "--budget", "80",
    "--programs", "CS/account",
    "--tools", "RFF",
]


class TestResumeDiagnostics:
    def test_resume_without_target_is_an_error(self, capsys):
        assert main(CAMPAIGN_ARGS + ["--resume"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--resume requires" in err

    def test_resume_missing_checkpoint_is_an_error(self, capsys, tmp_path):
        missing = tmp_path / "absent.jsonl"
        code = main(CAMPAIGN_ARGS + ["--checkpoint", str(missing), "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "drop --resume" in err

    def test_resume_empty_checkpoint_is_an_error(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        code = main(CAMPAIGN_ARGS + ["--checkpoint", str(empty), "--resume"])
        assert code == 2
        assert "is empty" in capsys.readouterr().err

    def test_diagnostics_go_to_stderr_only(self, capsys):
        main(CAMPAIGN_ARGS + ["--resume"])
        captured = capsys.readouterr()
        assert captured.out == ""


class TestDurableCampaign:
    def test_durable_requires_store(self, capsys):
        assert main(CAMPAIGN_ARGS + ["--durable"]) == 2
        assert "--durable requires --store" in capsys.readouterr().err

    def test_existing_store_requires_resume(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(CAMPAIGN_ARGS + ["--durable", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(CAMPAIGN_ARGS + ["--durable", "--store", str(store)]) == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_durable_campaign_then_resume(self, capsys, tmp_path):
        store = tmp_path / "store"
        args = CAMPAIGN_ARGS + ["--durable", "--store", str(store)]
        assert main(args) == 0
        fresh = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        # The resumed run replays the ledger: identical Appendix-B table
        # (throughput lines differ — replayed cells run no schedules).
        assert "mean bugs found" in resumed
        table = lambda text: [l for l in text.splitlines() if "CS/account" in l and "cells" not in l]
        assert table(fresh) == table(resumed)


class TestStoreCommands:
    def _populate(self, tmp_path):
        store = tmp_path / "store"
        assert main(CAMPAIGN_ARGS + ["--store", str(store)]) == 0
        return store

    def test_inspect(self, capsys, tmp_path):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Corpus store" in out
        assert "records:" in out

    def test_verify_ok(self, capsys, tmp_path):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", str(store)]) == 0
        assert "verify: ok" in capsys.readouterr().out

    def test_verify_detects_corruption(self, capsys, tmp_path):
        store = self._populate(tmp_path)
        capsys.readouterr()
        segment = next(store.glob("segment-*.jsonl"))
        text = segment.read_text()
        segment.write_text(text.replace('"found": true', '"found": false', 1))
        assert main(["store", "verify", str(store)]) == 2
        assert "checksum" in capsys.readouterr().err

    def test_compact(self, capsys, tmp_path):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "compact", str(store)]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_inspect_missing_store_is_an_error(self, capsys, tmp_path):
        assert main(["store", "inspect", str(tmp_path / "nope")]) == 2
        assert "not a corpus store" in capsys.readouterr().err
