"""Triage & reproduction: dedup keys, replay verification, artifacts.

The differential property at the bottom is the subsystem's contract over
the whole benchmark suite: any bug found under RandomWalk or PCT either
replays 20× with the identical outcome and dedup key (STABLE) or is
explicitly quarantined as FLAKY — there is no third state in which a
finding silently counts as reproduced.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.core.minimize import any_crash, crash_rate, minimize_schedule
from repro.core.reproduce import (
    FLAKY,
    STABLE,
    bucket_id,
    dedup_key,
    same_bucket,
    verify_replay,
)
from repro.harness.persist import (
    ChecksumError,
    TornLineError,
    append_jsonl,
    attach_checksum,
    crash_from_dict,
    crash_to_dict,
    payload_checksum,
    read_jsonl,
    result_from_dict,
    result_to_dict,
    verify_checksum,
)
from repro.harness.telemetry import GLOBAL_COUNTERS
from repro.harness.triage import (
    load_artifact,
    make_artifact,
    triage_report,
    verify_artifact,
    write_artifacts,
)
from repro.runtime import program, run_program
from repro.schedulers import PctPolicy, RandomWalkPolicy, ReplayPolicy
from repro.schedulers.replay import ReplayDivergence


def _reader_a(t, x):
    value = yield t.read(x)
    t.require(value == 0, "bug A: reader saw the x write")


def _reader_b(t, y):
    value = yield t.read(y)
    t.require(value == 0, "bug B: reader saw the y write")


@program("test/twobugs", bug_kinds=("assertion",))
def twobugs_program(t):
    """Two independent bugs in one program: schedule decides which fires."""
    x = t.var("x", 0)
    y = t.var("y", 0)
    ha = yield t.spawn(_reader_a, x)
    hb = yield t.spawn(_reader_b, y)
    yield t.write(x, 1)
    yield t.write(y, 1)
    yield t.join(ha)
    yield t.join(hb)


def _find_crash(prog, predicate, max_seeds=200):
    for seed in range(max_seeds):
        result = run_program(prog, RandomWalkPolicy(seed))
        if result.crashed and predicate(result):
            return result
    raise AssertionError("no matching crash found")


# ----------------------------------------------------------------------
# Dedup keys
# ----------------------------------------------------------------------
class TestDedupKey:
    def test_same_bug_same_key_across_schedules(self):
        hits = []
        for seed in range(100):
            result = run_program(twobugs_program, RandomWalkPolicy(seed))
            if result.crashed and "bug A" in (result.trace.failure or ""):
                hits.append(result)
        assert len(hits) >= 2
        keys = {dedup_key(r) for r in hits}
        assert len(keys) == 1
        schedules = {tuple(r.schedule) for r in hits}
        assert len(schedules) > 1  # different interleavings, one bucket

    def test_distinct_bugs_distinct_keys(self):
        a = _find_crash(twobugs_program, lambda r: "bug A" in r.trace.failure)
        b = _find_crash(twobugs_program, lambda r: "bug B" in r.trace.failure)
        assert dedup_key(a) != dedup_key(b)
        assert dedup_key(a)[0] == dedup_key(b)[0] == "assertion"

    def test_bucket_id_is_stable_and_greppable(self):
        a = _find_crash(twobugs_program, lambda r: "bug A" in r.trace.failure)
        bucket = bucket_id(dedup_key(a))
        assert bucket.startswith("assertion-")
        assert bucket == bucket_id(dedup_key(a))


# ----------------------------------------------------------------------
# Strict replay & divergence surfacing
# ----------------------------------------------------------------------
class TestReplayDivergence:
    def test_exact_replay_has_no_divergence(self):
        found = _find_crash(twobugs_program, lambda r: r.crashed)
        replayed = run_program(
            twobugs_program, ReplayPolicy(list(found.schedule))
        )
        assert replayed.diverged is None
        assert replayed.outcome == found.outcome

    def test_nonstrict_records_first_divergence(self):
        found = _find_crash(twobugs_program, lambda r: r.crashed)
        # Thread 99 never exists: the first step already diverges.
        bogus = [99] + list(found.schedule)
        replayed = run_program(twobugs_program, ReplayPolicy(bogus))
        assert replayed.diverged == 0

    def test_strict_mode_raises(self):
        found = _find_crash(twobugs_program, lambda r: r.crashed)
        bogus = [99] + list(found.schedule)
        with pytest.raises(ReplayDivergence) as excinfo:
            run_program(twobugs_program, ReplayPolicy(bogus, strict=True))
        assert excinfo.value.step == 0
        assert excinfo.value.wanted == 99

    def test_strict_past_end_raises(self):
        # An empty strict schedule diverges at step 0 (program outlives it).
        with pytest.raises(ReplayDivergence) as excinfo:
            run_program(twobugs_program, ReplayPolicy([], strict=True))
        assert excinfo.value.wanted is None


# ----------------------------------------------------------------------
# Replay verification
# ----------------------------------------------------------------------
class TestVerifyReplay:
    def test_stable_bug(self):
        found = _find_crash(twobugs_program, lambda r: "bug A" in r.trace.failure)
        key = dedup_key(found)
        verdict = verify_replay(
            twobugs_program, tuple(found.schedule), found.outcome, key, replays=20
        )
        assert verdict.verdict == STABLE
        assert verdict.matches == verdict.replays == 20
        assert all(run.key == key for run in verdict.runs)
        assert verdict.first_divergence is None

    def test_outcome_mismatch_is_flaky(self):
        clean = None
        for seed in range(100):
            result = run_program(twobugs_program, RandomWalkPolicy(seed))
            if not result.crashed:
                clean = result
                break
        assert clean is not None
        verdict = verify_replay(
            twobugs_program, tuple(clean.schedule), "assertion", replays=3
        )
        assert verdict.verdict == FLAKY
        assert verdict.matches == 0

    def test_verification_is_deterministic(self):
        found = _find_crash(twobugs_program, lambda r: r.crashed)
        key = dedup_key(found)
        verdicts = [
            verify_replay(
                twobugs_program, tuple(found.schedule), found.outcome, key, replays=5
            )
            for _ in range(2)
        ]
        assert verdicts[0] == verdicts[1]

    def test_replays_counter(self):
        found = _find_crash(twobugs_program, lambda r: r.crashed)
        before = GLOBAL_COUNTERS.snapshot()
        verify_replay(
            twobugs_program, tuple(found.schedule), found.outcome, replays=4
        )
        assert GLOBAL_COUNTERS.delta(before).replays == 4

    def test_replays_must_be_positive(self):
        with pytest.raises(ValueError, match="replays"):
            verify_replay(twobugs_program, (), "assertion", replays=0)

    def test_wall_clock_guard_cannot_flip_stable_to_flaky(self):
        from repro.runtime.guard import GuardConfig

        found = _find_crash(twobugs_program, lambda r: r.crashed)
        key = dedup_key(found)
        # An absurdly tight wall clock would time out every replay if it
        # were honoured; verification must strip it (it is the one
        # machine-speed-dependent guard) while keeping the step budget.
        guard = GuardConfig(wall_seconds=1e-9, step_budget=100_000)
        verdict = verify_replay(
            twobugs_program,
            tuple(found.schedule),
            found.outcome,
            key,
            replays=5,
            guard=guard,
        )
        assert verdict.verdict == STABLE
        assert verdict.matches == 5
        # The caller's config object is untouched.
        assert guard.wall_seconds == 1e-9

    def test_step_budget_still_enforced_during_verification(self):
        from repro.runtime.guard import GuardConfig

        found = _find_crash(twobugs_program, lambda r: r.crashed)
        key = dedup_key(found)
        verdict = verify_replay(
            twobugs_program,
            tuple(found.schedule),
            found.outcome,
            key,
            replays=3,
            guard=GuardConfig(wall_seconds=1e-9, step_budget=1),
        )
        # One step is never enough to reach the bug: deterministic budget
        # violations must still surface as FLAKY, only the wall clock is
        # exempt.
        assert verdict.verdict == FLAKY


# ----------------------------------------------------------------------
# Bucket-preserving minimization (regression: ddmin must not morph bugs)
# ----------------------------------------------------------------------
class TestBucketPreservingMinimize:
    def _crashing_schedule(self):
        fuzzer = RffFuzzer(twobugs_program, seed=9)
        report = fuzzer.run(300, stop_on_first_crash=False)
        keys = {c.dedup_key for c in report.crashes}
        assert len(keys) >= 2, "fuzzer should trip both bugs of the program"
        return report

    def test_minimize_pins_the_original_bucket(self):
        report = self._crashing_schedule()
        # The most-constrained crash: its schedule actually pins a bug.
        crash = max(report.crashes, key=lambda c: len(c.abstract_schedule))
        outcome = minimize_schedule(twobugs_program, crash.abstract_schedule)
        # The default predicate derives the target bucket from the original
        # schedule and only accepts reductions that stay inside it.
        assert outcome.target_key is not None
        assert outcome.reproduction_rate > 0
        rate = crash_rate(
            twobugs_program,
            outcome.minimized,
            probes=5,
            base_seed=7,
            still_failing=same_bucket(outcome.target_key),
        )
        assert rate == outcome.reproduction_rate

    def test_explicit_predicate_respected(self):
        report = self._crashing_schedule()
        by_key: dict = {}
        for crash in report.crashes:
            by_key.setdefault(crash.dedup_key, crash)
        for key, crash in list(by_key.items())[:2]:
            outcome = minimize_schedule(
                twobugs_program,
                crash.abstract_schedule,
                still_failing=same_bucket(key),
            )
            assert outcome.target_key is None  # caller-supplied predicate
            final = crash_rate(
                twobugs_program,
                outcome.minimized,
                probes=10,
                base_seed=7,
                still_failing=same_bucket(key),
            )
            assert final > 0  # the minimized schedule still hits *this* bug

    def test_any_crash_predicate_is_the_permissive_legacy(self):
        report = self._crashing_schedule()
        crash = report.crashes[0]
        strict = crash_rate(
            twobugs_program,
            crash.abstract_schedule,
            still_failing=same_bucket(crash.dedup_key),
        )
        loose = crash_rate(
            twobugs_program, crash.abstract_schedule, still_failing=any_crash
        )
        assert loose >= strict  # any-crash accepts at least as much


# ----------------------------------------------------------------------
# Triage + artifacts
# ----------------------------------------------------------------------
class TestTriage:
    @pytest.fixture(scope="class")
    def triaged(self):
        config = RffConfig()
        fuzzer = RffFuzzer(twobugs_program, seed=9, config=config)
        report = fuzzer.run(300, stop_on_first_crash=False)
        return config, report, triage_report(
            twobugs_program, report, replays=5, config=config
        )

    def test_buckets_fold_findings(self, triaged):
        _, report, result = triaged
        assert result.findings == len(report.crashes)
        assert len(result.bugs) == 2  # both bugs, deduplicated
        assert sum(bug.count for bug in result.bugs) == result.findings
        assert [bug.bucket for bug in result.bugs] == sorted(
            bug.bucket for bug in result.bugs
        )

    def test_every_bug_has_a_verdict(self, triaged):
        _, _, result = triaged
        for bug in result.bugs:
            assert bug.verdict is not None
            assert bug.verdict.verdict in (STABLE, FLAKY)
        assert result.stable and not result.quarantined

    def test_shortest_reproducer_kept(self, triaged):
        _, report, result = triaged
        for bug in result.bugs:
            lengths = [
                len(c.concrete_schedule)
                for c in report.crashes
                if c.dedup_key == bug.key
            ]
            assert len(bug.concrete_schedule) == min(lengths)

    def test_triage_is_deterministic(self, triaged):
        config, report, result = triaged
        again = triage_report(twobugs_program, report, replays=5, config=config)
        assert [b.bucket for b in again.bugs] == [b.bucket for b in result.bugs]
        assert [b.concrete_schedule for b in again.bugs] == [
            b.concrete_schedule for b in result.bugs
        ]
        assert [b.verdict for b in again.bugs] == [b.verdict for b in result.bugs]

    def test_artifact_roundtrip_and_verify(self, triaged, tmp_path):
        config, _, result = triaged
        written = write_artifacts(result, tmp_path, config)
        assert len(written) == len(result.stable)
        for path in written:
            payload = load_artifact(path)
            verdict = verify_artifact(payload, replays=3, program=twobugs_program)
            assert verdict.verdict == STABLE

    def test_tampered_artifact_rejected(self, triaged, tmp_path):
        config, _, result = triaged
        path = write_artifacts(result, tmp_path, config)[0]
        payload = json.loads(path.read_text())
        payload["concrete_schedule"] = payload["concrete_schedule"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            load_artifact(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text(json.dumps(attach_checksum({"artifact": "other"})))
        with pytest.raises(ValueError, match="not a rff-repro artifact"):
            load_artifact(path)

    def test_minimized_triage_stays_in_bucket(self, triaged):
        config, report, plain = triaged
        shrunk = triage_report(
            twobugs_program, report, replays=3, config=config, minimize=True
        )
        assert [b.key for b in shrunk.bugs] == [b.key for b in plain.bugs]
        for small, big in zip(shrunk.bugs, plain.bugs):
            assert len(small.concrete_schedule) <= len(big.concrete_schedule)
            assert small.verdict is not None and small.verdict.stable


# ----------------------------------------------------------------------
# Persistence hardening
# ----------------------------------------------------------------------
class TestPersistHardening:
    def test_crash_record_roundtrips_triage_fields(self):
        fuzzer = RffFuzzer(twobugs_program, seed=9)
        report = fuzzer.run(200, stop_on_first_crash=True)
        crash = report.crashes[0]
        assert crash.dedup_key is not None and crash.frames
        again = crash_from_dict(crash_to_dict(crash))
        assert again == crash

    def test_legacy_crash_dict_still_loads(self):
        fuzzer = RffFuzzer(twobugs_program, seed=9)
        report = fuzzer.run(200, stop_on_first_crash=True)
        legacy = crash_to_dict(report.crashes[0])
        del legacy["dedup_key"]
        del legacy["frames"]
        loaded = crash_from_dict(legacy)
        assert loaded.dedup_key is None and loaded.frames == ()

    def test_result_roundtrips_bucket_and_verdict(self):
        from repro.harness.tools import random_tool

        tool = random_tool()
        tool.verify_replays = 3
        result = tool.find_bug(bench.get("CS/account"), budget=300, seed=1)
        assert result.found and result.bucket and result.replay_verdict
        assert result_from_dict(result_to_dict(result)) == result

    def test_torn_tail_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl({"a": 1}, path)
        append_jsonl({"b": 2}, path)
        with path.open("a") as handle:
            handle.write('{"torn": tr')
        before = GLOBAL_COUNTERS.snapshot()
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]
        assert GLOBAL_COUNTERS.delta(before).torn_lines == 1

    def test_torn_tail_rejected_when_intolerant(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl({"a": 1}, path)
        with path.open("a") as handle:
            handle.write('{"torn": tr')
        with pytest.raises(TornLineError, match="torn trailing line"):
            read_jsonl(path, tolerate_torn_tail=False)

    def test_torn_middle_always_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl({"a": 1}, path)
        with path.open("a") as handle:
            handle.write('{"torn": tr\n')
        append_jsonl({"b": 2}, path)
        with pytest.raises(TornLineError, match="mid-file"):
            read_jsonl(path)

    def test_checksum_primitives(self):
        payload = attach_checksum({"x": 1, "y": [1, 2]})
        assert payload["checksum"] == payload_checksum(payload)
        verify_checksum(payload)
        payload["x"] = 2
        with pytest.raises(ChecksumError):
            verify_checksum(payload)
        with pytest.raises(ChecksumError, match="missing checksum"):
            verify_checksum({"x": 1})


# ----------------------------------------------------------------------
# Campaign integration: serial == parallel, watchdogs included
# ----------------------------------------------------------------------
class TestCampaignDeterminism:
    def _config(self):
        from repro.harness.campaign import CampaignConfig
        from repro.runtime.guard import GuardConfig

        return CampaignConfig(
            trials=2,
            budget=150,
            base_seed=77,
            verify_replays=2,
            guard=GuardConfig(step_budget=5000, livelock_window=2000),
        )

    def test_serial_equals_parallel_with_guard_and_verify(self):
        from repro.harness.campaign import Campaign
        from repro.harness.parallel import ParallelCampaign
        from repro.harness.tools import random_tool

        programs = ["CS/account", "CS/reorder_4"]
        serial = Campaign(self._config()).run(
            [random_tool()], [bench.get(name) for name in programs]
        )
        for processes in (0, 2):
            parallel = ParallelCampaign(self._config(), processes=processes).run(
                ["Random"], programs
            )
            assert parallel.results == serial.results
        for trials in serial.results.values():
            for result in trials:
                if result.found:
                    assert result.bucket is not None
                    assert result.replay_verdict in (STABLE, FLAKY)

    def test_watchdog_kills_are_bit_identical_serial_vs_parallel(self):
        from repro.harness.campaign import Campaign, CampaignConfig
        from repro.harness.parallel import ParallelCampaign
        from repro.harness.tools import random_tool
        from repro.runtime.guard import GuardConfig

        # A 10-step budget kills every execution of this ~15-step program:
        # the kill becomes a deterministic "timeout" finding with a bucket.
        config = CampaignConfig(
            trials=2,
            budget=20,
            base_seed=5,
            verify_replays=3,
            guard=GuardConfig(step_budget=10),
        )
        programs = ["CS/reorder_4"]
        serial = Campaign(config).run(
            [random_tool()], [bench.get(name) for name in programs]
        )
        parallel = ParallelCampaign(config, processes=2).run(["Random"], programs)
        assert parallel.results == serial.results
        for trials in serial.results.values():
            for result in trials:
                assert result.found and result.outcome == "timeout"
                assert result.bucket.startswith("timeout-")
                assert result.replay_verdict == STABLE

    def test_checkpoint_resume_preserves_triage_fields(self, tmp_path):
        from repro.harness.parallel import ParallelCampaign

        checkpoint = tmp_path / "cp.jsonl"
        first = ParallelCampaign(
            self._config(), processes=0, checkpoint=checkpoint
        ).run(["Random"], ["CS/account"])
        resumed = ParallelCampaign(
            self._config(), processes=0, checkpoint=checkpoint
        ).run(["Random"], ["CS/account"])
        assert resumed.results == first.results


# ----------------------------------------------------------------------
# Differential property over the whole suite
# ----------------------------------------------------------------------
def _first_crash(prog, policy_factory, budget=40):
    for index in range(budget):
        result = run_program(
            prog, policy_factory(index), max_steps=prog.max_steps or 20000
        )
        if result.crashed:
            return result
    return None


@pytest.mark.parametrize("name", sorted(bench.all_programs()))
def test_found_bugs_replay_or_quarantine(name):
    """Every bug found under RandomWalk/PCT replays 20× with the identical
    outcome + dedup key, or is explicitly quarantined as FLAKY."""
    prog = bench.get(name)
    factories = {
        "random": lambda seed: RandomWalkPolicy(11 + seed),
        "pct": lambda seed: PctPolicy(depth=3, seed=11 + seed),
    }
    for label, factory in factories.items():
        found = _first_crash(prog, factory)
        if found is None:
            continue
        key = dedup_key(found)
        verdict = verify_replay(
            prog,
            tuple(found.schedule),
            found.outcome,
            key,
            replays=20,
            max_steps=prog.max_steps or 20000,
        )
        assert verdict.replays == 20, (name, label)
        if verdict.verdict == STABLE:
            assert verdict.matches == 20, (name, label)
            assert all(run.key == key and run.diverged is None for run in verdict.runs)
        else:
            # Explicit quarantine: FLAKY, never silently "reproduced".
            assert verdict.verdict == FLAKY, (name, label)
            assert verdict.matches < 20, (name, label)
