"""Seeded statistical efficacy test: adaptive allocation finds more bugs.

On the pinned ``gen:2000..2049`` corpus, under one global budget (50 cells
× 4 schedules), adaptive allocators transfer budget freed by retired cells
(bug already found) to the cells still searching — so across paired seeds
they must detect **at least** as many planted bugs as the uniform split,
and in total strictly more.  Bounds are pinned in
``results/alloc_baseline.json``; the campaigns themselves are
deterministic, so this suite never flakes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import bench
from repro.gen.oracle import judge_result
from repro.gen.synth import from_name
from repro.harness.allocator import (
    LaplaceAllocator,
    NoveltyBiasAllocator,
    UniformAllocator,
)
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.tools import random_tool

BASELINE = json.loads(
    (Path(__file__).resolve().parent.parent / "results" / "alloc_baseline.json").read_text()
)
CORPUS = BASELINE["corpus"]
CFG = BASELINE["config"]
NAMES = [f"gen:{seed}" for seed in range(CORPUS["start"], CORPUS["start"] + CORPUS["count"])]


def _allocators():
    return {
        # Bit-identical to the legacy single-pass split (see
        # test_allocator_differential.py) but carries an allocation ledger.
        "uniform": UniformAllocator,
        "laplace": lambda: LaplaceAllocator(rounds=CFG["rounds"]),
        "novelty": lambda: NoveltyBiasAllocator(rounds=CFG["rounds"]),
    }


@pytest.fixture(scope="module")
def truths():
    return {name: from_name(name).ground_truth for name in NAMES}


@pytest.fixture(scope="module")
def measurements(truths):
    """{allocator: {seed: (detected, campaign_result)}} over the pinned grid."""
    programs = [bench.get(name) for name in NAMES]
    out = {}
    for alloc_name, make in _allocators().items():
        per_seed = {}
        for seed in CFG["seeds"]:
            config = CampaignConfig(
                trials=CFG["trials"], budget=CFG["budget"], base_seed=seed,
                allocator=make(),
            )
            result = Campaign(config).run([random_tool()], programs)
            detected = sum(
                1
                for name in NAMES
                if judge_result(
                    truths[name], result.results[(CFG["tool"], name)][0]
                )["verdict"]
                == "detected"
            )
            per_seed[seed] = (detected, result)
        out[alloc_name] = per_seed
    return out


def test_corpus_shape_matches_baseline(truths):
    planted = sum(1 for truth in truths.values() if truth.crash_outcome)
    assert planted == CORPUS["planted"]
    assert len(NAMES) == CORPUS["count"]


class TestAdaptiveBeatsUniform:
    @pytest.mark.parametrize("adaptive", ["laplace", "novelty"])
    def test_paired_across_seeds_adaptive_never_detects_fewer(self, measurements, adaptive):
        for seed in CFG["seeds"]:
            uniform_detected = measurements["uniform"][seed][0]
            adaptive_detected = measurements[adaptive][seed][0]
            assert adaptive_detected >= uniform_detected, (
                f"seed {seed}: {adaptive} detected {adaptive_detected} "
                f"< uniform {uniform_detected}"
            )

    def test_totals_within_baseline_bounds(self, measurements):
        bounds = BASELINE["bounds"]
        totals = {
            name: sum(d for d, _ in per_seed.values())
            for name, per_seed in measurements.items()
        }
        assert totals["uniform"] <= bounds["uniform_total_max"]
        assert totals["laplace"] >= bounds["laplace_total_min"]
        assert totals["novelty"] >= bounds["novelty_total_min"]
        advantage = totals["laplace"] - totals["uniform"]
        assert advantage >= bounds["min_total_advantage"], (
            f"laplace advantage {advantage} below baseline "
            f"{bounds['min_total_advantage']} (totals: {totals})"
        )


class TestBudgetAccounting:
    def test_every_campaign_spends_at_most_the_global_budget(self, measurements):
        """Retirement frees budget; it never inflates it.  The uniform split
        spends exactly the global budget (nothing retires mid-pass)."""
        global_budget = CORPUS["count"] * CFG["budget"] * CFG["trials"]
        for alloc_name, per_seed in measurements.items():
            for seed, (_, result) in per_seed.items():
                spent = sum(r["budget"] for r in result.allocation["rounds"])
                if alloc_name == "uniform":
                    assert spent == global_budget
                else:
                    assert spent <= global_budget, (alloc_name, seed, spent)

    def test_adaptive_reallocates_rather_than_stops(self, measurements):
        """At least one adaptive round allocates a cell more than its
        uniform per-round share — the transfer actually happens."""
        fair_share = CFG["budget"] / CFG["rounds"]
        for alloc_name in ("laplace", "novelty"):
            _, result = measurements[alloc_name][CFG["seeds"][0]]
            boosted = [
                slice_entry
                for round_entry in result.allocation["rounds"][1:]
                for slice_entry in round_entry["slices"]
                if slice_entry["allocated"] > fair_share
            ]
            assert boosted, f"{alloc_name}: no cell ever got more than the fair share"
