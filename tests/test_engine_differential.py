"""Differential proof that engine optimizations do not change semantics.

The PR-5 hot-path overhaul (dispatch tables, abstract-event interning,
incremental reads-from collection, sanitizer fast paths) is only admissible
if it is *bit-identical* to the engine it replaces: same traces, same
schedules, same reads-from signatures, same sanitizer findings.  This test
locks that in two ways:

1. **Golden recordings** — ``tests/golden/engine_golden.json`` holds digests
   captured from the pre-optimization engine for every bench program under
   RandomWalk, PCT and POS (two seeds each, full sanitizer stack).  Any
   semantic drift in the optimized engine changes a digest and fails the
   comparison with a per-program, per-policy message.
2. **Replay closure** — for each combination the recorded concrete schedule
   is re-executed under :class:`ReplayPolicy` and must reproduce the exact
   trace digest with zero divergence (serial == replay).

Regenerate the goldens (only after intentionally changing semantics) with::

    RFF_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_engine_differential.py -q
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bench
from repro.analysis.online import build_stack
from repro.core.events import AbstractEvent, intern_abstract
from repro.runtime.executor import Executor
from repro.schedulers.pct import PctPolicy
from repro.schedulers.pos import PosPolicy
from repro.schedulers.random_walk import RandomWalkPolicy
from repro.schedulers.replay import ReplayPolicy

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "engine_golden.json"

#: Step cap for the differential runs: deterministic truncation is still
#: deterministic, and it keeps the 49-program sweep fast enough for tier-1.
MAX_STEPS = 4000
SEEDS = (0, 1)
STACK = ("race", "lockset", "lockorder")

POLICIES = {
    "RandomWalk": lambda seed: RandomWalkPolicy(seed),
    "PCT": lambda seed: PctPolicy(depth=3, seed=seed),
    "POS": lambda seed: PosPolicy(seed),
}

#: CPython reprs of objects without a custom __repr__ embed memory
#: addresses; scrub them so digests are stable across runs and machines.
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _stable(value: object) -> str:
    return _ADDRESS.sub("0xX", repr(value))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _trace_digest(result) -> str:
    lines = [
        f"{e.eid}|{e.tid}|{e.kind}|{e.location}|{e.loc}|{e.rf}|{_stable(e.value)}|{_stable(e.aux)}"
        for e in result.trace.events
    ]
    lines.append(f"outcome={result.trace.outcome}")
    lines.append(f"failure={result.trace.failure}")
    lines.append(f"frames={list(result.failure_frames)}")
    lines.append(f"truncated={result.truncated}")
    return _digest("\n".join(lines))


def _record(program, policy_name: str, seed: int) -> dict:
    """One execution under the full sanitizer stack, summarised as digests."""
    policy = POLICIES[policy_name](seed)
    result = Executor(
        program, policy, max_steps=MAX_STEPS, sanitizers=build_stack(STACK)
    ).run()
    rf_lines = sorted(f"{writer}<-{reader}" for writer, reader in result.trace.rf_pairs())
    san_lines = sorted("|".join(r.dedup_key) for r in result.sanitizer_reports)
    return {
        "steps": result.steps,
        "trace": _trace_digest(result),
        "schedule": _digest(",".join(map(str, result.schedule))),
        "rf": _digest("\n".join(rf_lines)),
        "sanitizers": _digest("\n".join(san_lines)),
    }


def _replay_digest(program, schedule: list[int]) -> tuple[str, int | None]:
    result = Executor(program, ReplayPolicy(schedule), max_steps=MAX_STEPS).run()
    return (
        _digest(
            "\n".join(
                f"{e.eid}|{e.tid}|{e.kind}|{e.location}|{e.loc}|{e.rf}" for e in result.trace.events
            )
        ),
        result.diverged,
    )


def _compute_all() -> dict:
    recordings: dict = {}
    for name in bench.names():
        program = bench.get(name)
        per_program: dict = {}
        for policy_name in POLICIES:
            for seed in SEEDS:
                per_program[f"{policy_name}/seed{seed}"] = _record(program, policy_name, seed)
        recordings[name] = per_program
    return recordings


@pytest.mark.skipif(
    not os.environ.get("RFF_REGEN_GOLDEN") and not GOLDEN_PATH.exists(),
    reason="golden recordings missing; run with RFF_REGEN_GOLDEN=1 to create them",
)
def test_engine_bit_identical_to_golden_recordings():
    """The engine reproduces the pre-optimization goldens bit-for-bit."""
    current = _compute_all()
    if os.environ.get("RFF_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(current, indent=1, sort_keys=True) + "\n")
        return
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(current) == set(golden), "bench program set changed; regenerate goldens"
    for name, per_program in golden.items():
        for combo, expected in per_program.items():
            got = current[name][combo]
            assert got == expected, (
                f"{name} under {combo} diverged from the pre-optimization engine:\n"
                f"  expected {expected}\n  got      {got}"
            )


#: Kinds cover reads, writes, both (rmw), neither (spawn) and arbitrary text;
#: locations/locs exercise the prefixes the analyses branch on plus noise.
_kinds = st.sampled_from(["r", "w", "hw", "rmw", "lock", "unlock", "spawn", "flush", "zz"])
_texts = st.one_of(
    st.sampled_from(["var:x", "heap:obj.f", "mutex:m", "worker:3", ""]),
    st.text(max_size=12),
)


@settings(max_examples=200, deadline=None)
@given(kind=_kinds, location=_texts, loc=_texts)
def test_interned_abstract_events_equal_fresh_ones(kind, location, loc):
    """Interning is invisible: interned instances compare, hash, derive and
    print exactly like freshly constructed AbstractEvents."""
    interned = intern_abstract(kind, location, loc)
    fresh = AbstractEvent(kind, location, loc)
    assert interned == fresh
    assert fresh == interned
    assert hash(interned) == hash(fresh)
    assert str(interned) == str(fresh)
    assert repr(interned) == repr(fresh)
    assert interned.is_read == fresh.is_read
    assert interned.is_write == fresh.is_write
    # Interning makes identity coincide with equality...
    assert intern_abstract(kind, location, loc) is interned
    # ...and set/dict membership is interchangeable between the two.
    assert fresh in {interned}
    assert interned in {fresh}
    # A structurally different abstract event never collides.
    other = AbstractEvent(kind + "'", location, loc)
    assert interned != other


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_replay_reproduces_recorded_schedule(policy_name):
    """serial == replay: re-running the recorded schedule is bit-identical."""
    for name in bench.names():
        program = bench.get(name)
        policy = POLICIES[policy_name](0)
        result = Executor(program, policy, max_steps=MAX_STEPS).run()
        original = _digest(
            "\n".join(
                f"{e.eid}|{e.tid}|{e.kind}|{e.location}|{e.loc}|{e.rf}" for e in result.trace.events
            )
        )
        replayed, diverged = _replay_digest(program, result.schedule)
        assert diverged is None, f"{name}: replay diverged at step {diverged}"
        assert replayed == original, f"{name}: replayed trace differs under {policy_name}"
