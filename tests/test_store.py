"""Crash-safe corpus store: WAL segments, checksums, compaction, locking.

The acceptance bar: a campaign can be SIGKILLed at any instant and resume
through the store bit-identically — so every durability mechanism (torn-tail
repair, checksum-verified reads, atomic compaction, fsync barriers, advisory
locks) gets pinned here in isolation before the chaos suite composes them.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.persist import recover_jsonl
from repro.harness.store import (
    MANIFEST_NAME,
    CorpusStore,
    StoreError,
    StoreLockedError,
    StoreMismatchError,
)
from repro.harness.tools import BugSearchResult


def result(tool="RFF", program="CS/account", trial=0, found=True, **kw):
    return BugSearchResult(
        tool=tool,
        program=program,
        trial=trial,
        found=found,
        schedules_to_bug=7 if found else None,
        executions=42,
        outcome="assert" if found else None,
        **kw,
    )


class TestRoundTrip:
    def test_record_and_reopen(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.begin_campaign({"campaign": 1})
            store.record_result(result(trial=0))
            store.record_result(result(trial=1, found=False))
        with CorpusStore(tmp_path / "store") as reopened:
            completed = reopened.completed()
        assert set(completed) == {("RFF", "CS/account", 0), ("RFF", "CS/account", 1)}
        assert completed[("RFF", "CS/account", 0)] == result(trial=0)
        assert completed[("RFF", "CS/account", 1)] == result(trial=1, found=False)

    def test_first_record_wins_dedup(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.record_result(result(found=True))
            store.record_result(result(found=False))  # duplicate key
            assert store.completed()[("RFF", "CS/account", 0)].found

    def test_readonly_refuses_writes(self, tmp_path):
        CorpusStore(tmp_path / "store").close()
        with CorpusStore(tmp_path / "store", readonly=True) as store:
            with pytest.raises(StoreError, match="readonly"):
                store.record_result(result())

    def test_readonly_requires_existing_store(self, tmp_path):
        with pytest.raises(StoreError, match="not a corpus store"):
            CorpusStore(tmp_path / "nope", readonly=True)


class TestHeader:
    def test_header_stamped_once_and_validated(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.begin_campaign({"trials": 2})
        with CorpusStore(tmp_path / "store") as store:
            store.begin_campaign({"trials": 2})  # identical resume: fine
            with pytest.raises(StoreMismatchError, match="different campaign"):
                store.begin_campaign({"trials": 3})


class TestTornTailRecovery:
    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.record_result(result(trial=0))
            segment = store.segments[-1]
        clean_size = segment.stat().st_size
        torn = '{"type": "cell", "resu'
        with segment.open("a") as handle:
            handle.write(torn)  # the torn half-line
        with CorpusStore(tmp_path / "store") as store:
            assert store.recovered_bytes == len(torn)
            assert segment.stat().st_size == clean_size
            assert set(store.completed()) == {("RFF", "CS/account", 0)}
            # Appends after repair extend the valid prefix, not the tear.
            store.record_result(result(trial=1))
            assert len(store.completed()) == 2

    def test_recover_jsonl_reports_truncation(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn')
        records, truncated = recover_jsonl(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert truncated == len('{"torn')
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_recover_jsonl_missing_and_clean_files(self, tmp_path):
        assert recover_jsonl(tmp_path / "absent.jsonl") == ([], 0)
        path = tmp_path / "clean.jsonl"
        path.write_text('{"a": 1}\n')
        assert recover_jsonl(path) == ([{"a": 1}], 0)


class TestChecksums:
    def test_corrupt_record_skipped_not_fatal(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.record_result(result(trial=0))
            store.record_result(result(trial=1))
            segment = store.segments[-1]
        lines = segment.read_text().splitlines()
        lines[0] = lines[0].replace('"found": true', '"found": false')  # bit-rot
        segment.write_text("\n".join(lines) + "\n")
        with CorpusStore(tmp_path / "store") as store:
            inspection = store.inspect()
            assert inspection.corrupt_records == 1
            # The corrupt cell simply looks incomplete: it re-runs on resume.
            assert set(store.completed()) == {("RFF", "CS/account", 1)}
            with pytest.raises(StoreError, match="checksum"):
                store.verify()

    def test_bug_admission_fsyncs(self, tmp_path, monkeypatch):
        fsyncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd)))
        with CorpusStore(tmp_path / "store") as store:
            baseline = len(fsyncs)
            store.record_result(result(found=False))
            assert len(fsyncs) == baseline  # flushed, not fsynced
            store.record_result(result(trial=1, found=True))
            assert len(fsyncs) == baseline + 1  # the bug-admission barrier


class TestSegmentsAndCompaction:
    def test_segment_roll(self, tmp_path):
        with CorpusStore(tmp_path / "store", segment_max_records=2) as store:
            for trial in range(5):
                store.record_result(result(trial=trial))
            assert len(store.segments) == 3
            assert len(store.completed()) == 5
        with CorpusStore(tmp_path / "store", segment_max_records=2) as store:
            assert len(store.completed()) == 5

    def test_compaction_dedups_and_drops_segments(self, tmp_path):
        with CorpusStore(tmp_path / "store", segment_max_records=2) as store:
            for trial in range(4):
                store.record_result(result(trial=trial))
            store.record_result(result(trial=0, found=False))  # late duplicate
            stats = store.compact()
            assert stats == {
                "segments_before": 3,
                "segments_after": 1,
                "records_before": 5,
                "records_after": 4,
            }
            assert store.completed()[("RFF", "CS/account", 0)].found  # first won
            assert len(store.completed()) == 4
            store.record_result(result(trial=9))  # still appendable after
        with CorpusStore(tmp_path / "store") as store:
            assert len(store.completed()) == 5
            assert store.inspect().compactions == 1

    def test_orphan_segments_swept(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.record_result(result())
        # Garbage from a hypothetical interrupted compaction.
        (tmp_path / "store" / "segment-000099.jsonl").write_text('{"junk": 1}\n')
        (tmp_path / "store" / "segment-000100.jsonl.tmp").write_text("partial")
        with CorpusStore(tmp_path / "store") as store:
            assert len(store.completed()) == 1
        assert not (tmp_path / "store" / "segment-000099.jsonl").exists()
        assert not (tmp_path / "store" / "segment-000100.jsonl.tmp").exists()

    def test_manifest_is_authoritative(self, tmp_path):
        with CorpusStore(tmp_path / "store") as store:
            store.record_result(result())
        manifest = json.loads((tmp_path / "store" / MANIFEST_NAME).read_text())
        assert manifest["store_version"] == 1
        assert manifest["segments"] == ["segment-000000.jsonl"]


class TestLocking:
    def test_second_writer_fails_fast(self, tmp_path):
        with CorpusStore(tmp_path / "store"):
            with pytest.raises(StoreLockedError, match="another campaign"):
                CorpusStore(tmp_path / "store")

    def test_reader_excluded_while_writer_active(self, tmp_path):
        with CorpusStore(tmp_path / "store"):
            with pytest.raises(StoreLockedError):
                CorpusStore(tmp_path / "store", readonly=True)

    def test_sequential_reuse_is_fine(self, tmp_path):
        CorpusStore(tmp_path / "store").close()
        CorpusStore(tmp_path / "store").close()
        CorpusStore(tmp_path / "store", readonly=True).close()
