"""Baseline scheduler policies: random walk, POS, PCT."""

from __future__ import annotations

import pytest

from repro.runtime import program, run_program
from repro.schedulers import PctPolicy, PosPolicy, RandomWalkPolicy

from tests.conftest import make_reorder


class TestRandomWalk:
    def test_deterministic_per_seed(self, reorder3):
        a = run_program(reorder3, RandomWalkPolicy(5))
        b = run_program(reorder3, RandomWalkPolicy(5))
        assert a.schedule == b.schedule

    def test_seeds_vary_schedules(self, reorder3):
        schedules = {tuple(run_program(reorder3, RandomWalkPolicy(s)).schedule) for s in range(10)}
        assert len(schedules) > 1

    def test_finds_shallow_race(self, racy_counter):
        assert any(run_program(racy_counter, RandomWalkPolicy(s)).crashed for s in range(300))


class TestPos:
    def test_deterministic_per_seed(self, reorder3):
        a = run_program(reorder3, PosPolicy(5))
        b = run_program(reorder3, PosPolicy(5))
        assert a.schedule == b.schedule

    def test_explores_multiple_rf_classes(self, reorder3):
        signatures = {run_program(reorder3, PosPolicy(s)).trace.rf_signature() for s in range(40)}
        assert len(signatures) >= 3

    def test_finds_small_reorder_sometimes(self):
        prog = make_reorder(2)
        assert any(run_program(prog, PosPolicy(s)).crashed for s in range(500))

    def test_misses_large_reorder(self):
        prog = make_reorder(30)
        assert not any(run_program(prog, PosPolicy(s)).crashed for s in range(200))

    def test_score_reset_on_races(self, reorder3):
        # Internal behaviour: after running, the score table is populated.
        policy = PosPolicy(0)
        run_program(reorder3, policy)
        assert policy._scores  # scores were drawn during the run


class TestPct:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PctPolicy(depth=0)

    def test_deterministic_per_seed(self, reorder3):
        a = run_program(reorder3, PctPolicy(depth=3, seed=5))
        b = run_program(reorder3, PctPolicy(depth=3, seed=5))
        assert a.schedule == b.schedule

    def test_length_estimate_learns(self, reorder3):
        policy = PctPolicy(depth=3, seed=0, initial_length_estimate=4)
        result = run_program(reorder3, policy)
        assert policy.length_estimate >= result.steps

    def test_finds_depth_one_bug(self):
        """A bug needing a single ordering constraint: PCT(3) finds it."""

        @program("t/depth1", bug_kinds=("assertion",))
        def depth1(t):
            def writer(t, x):
                yield t.write(x, 1)

            x = t.var("x", 0)
            handle = yield t.spawn(writer, x)
            value = yield t.read(x)
            yield t.join(handle)
            t.require(value == 0, "read raced ahead of the writer")

        policy = PctPolicy(depth=3, seed=0)
        assert any(run_program(depth1, policy).crashed for _ in range(100))

    def test_struggles_with_deep_reorder(self):
        """reorder_20 has depth > 20: far beyond PCT(3)'s guarantee."""
        prog = make_reorder(20)
        policy = PctPolicy(depth=3, seed=0)
        hits = sum(run_program(prog, policy).crashed for _ in range(150))
        assert hits <= 2

    def test_priorities_assigned_above_change_point_band(self, reorder3):
        policy = PctPolicy(depth=3, seed=1)
        run_program(reorder3, policy)
        # Base priorities live in [depth, depth+1); demoted ones below 1.
        assert all(p < 1.0 or p >= 3.0 for p in policy._priorities.values())
