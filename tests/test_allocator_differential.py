"""Differential suite for allocator-driven campaigns.

Two contracts back the allocator rollout:

* **Uniform is invisible.**  ``--allocator uniform`` campaigns are
  bit-identical to the pre-allocator code path over the full 49-program
  bench × RandomWalk/PCT3 — same results, same store headers, and legacy
  stores resume under it unchanged.
* **Adaptive is engine-independent.**  For a fixed (seed, allocator),
  serial == parallel == supervised == chaos-SIGKILL'd-and-resumed, down
  to the allocation ledger (the ``test_chaos.py`` convergence pattern).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import bench
from repro.harness import faults
from repro.harness.allocator import LaplaceAllocator, NoveltyBiasAllocator, UniformAllocator
from repro.harness.campaign import Campaign, CampaignConfig, CampaignResult
from repro.harness.faults import ChaosKill, ChaosPlan
from repro.harness.parallel import ParallelCampaign
from repro.harness.store import CorpusStore, StoreMismatchError
from repro.harness.supervisor import SupervisedCampaign
from repro.harness.tools import BugSearchResult, RffTool, pct_tool, random_tool

# ----------------------------------------------------------------------
# Uniform == legacy over the full bench
# ----------------------------------------------------------------------
SWEEP_CONFIG = CampaignConfig(trials=1, budget=20, base_seed=11)


def sweep_tools():
    return [random_tool(), pct_tool()]


@pytest.fixture(scope="module")
def legacy_sweep():
    programs = [bench.get(name) for name in bench.names()]
    return Campaign(SWEEP_CONFIG).run(sweep_tools(), programs)


class TestUniformBitIdentity:
    def test_serial_uniform_matches_legacy_over_all_49_programs(self, legacy_sweep):
        config = replace(SWEEP_CONFIG, allocator=UniformAllocator())
        programs = [bench.get(name) for name in bench.names()]
        uniform = Campaign(config).run(sweep_tools(), programs)
        assert uniform.results == legacy_sweep.results
        assert legacy_sweep.allocation is None
        assert uniform.allocation["allocator"] == "uniform"
        assert len(uniform.allocation["rounds"]) == 1

    def test_parallel_uniform_matches_legacy_over_all_49_programs(self, legacy_sweep):
        config = replace(SWEEP_CONFIG, allocator=UniformAllocator())
        engine = ParallelCampaign(config, processes=0)
        uniform = engine.run(["Random", "PCT3"], bench.names())
        assert uniform.results == legacy_sweep.results

    def test_uniform_resumes_a_legacy_store(self, tmp_path):
        """A store written by the pre-allocator path resumes byte-compatibly
        under ``--allocator uniform``: identical header, every cell skipped,
        identical results."""
        store_dir = tmp_path / "store"
        config = CampaignConfig(trials=2, budget=60, base_seed=7)
        tools = [RffTool(), random_tool()]
        programs = [bench.get("CS/account"), bench.get("CS/reorder_4")]
        legacy = Campaign(config).run(tools, programs, store=store_dir)
        resumed = Campaign(replace(config, allocator=UniformAllocator())).run(
            tools, programs, store=store_dir
        )
        assert resumed.results == legacy.results
        with CorpusStore(store_dir, readonly=True) as store:
            inspection = store.inspect()
        assert inspection.slices == 0  # nothing re-ran; no slice records


# ----------------------------------------------------------------------
# Laplace: serial == parallel == supervised == killed-and-resumed
# ----------------------------------------------------------------------
TOOLS = ["RFF", "Random"]
PROGRAMS = ["CS/account", "Splash2/lu"]
LAPLACE_CONFIG = CampaignConfig(
    trials=2, budget=80, base_seed=7, allocator=LaplaceAllocator(rounds=3)
)
ALL_KEYS = {
    (tool, program, trial)
    for tool in TOOLS
    for program in PROGRAMS
    for trial in range(LAPLACE_CONFIG.trials)
}


@pytest.fixture(scope="module")
def laplace_serial():
    return Campaign(LAPLACE_CONFIG).run(
        [RffTool(), random_tool()], [bench.get(p) for p in PROGRAMS]
    )


def seed_with_injections(check) -> int:
    for seed in range(200):
        if check(seed):
            return seed
    raise AssertionError("no seed in range produces the wanted injection")


def arm(monkeypatch, tmp_path, plan: ChaosPlan) -> None:
    state = tmp_path / "chaos-state"
    state.mkdir(exist_ok=True)
    for key, value in plan.to_env(state).items():
        monkeypatch.setenv(key, value)


def cell_keys(plan: ChaosPlan) -> dict[str, str]:
    return plan.injection_points([faults.cell_key(*key) for key in sorted(ALL_KEYS)])


def run_until_converged(store_dir, max_rounds: int = 12, **engine_kwargs):
    """The durable-deployment loop of ``test_chaos.py``, under an adaptive
    allocator: start, die (maybe), resume — slices carry the allocation
    history between attempts."""
    for _ in range(max_rounds):
        engine = SupervisedCampaign(
            LAPLACE_CONFIG,
            processes=2,
            store=store_dir,
            heartbeat_seconds=0.05,
            backoff_base=0.01,
            **engine_kwargs,
        )
        try:
            result = engine.run(TOOLS, PROGRAMS)
        except ChaosKill:
            continue
        with CorpusStore(store_dir, readonly=True) as store:
            if set(store.completed()) == ALL_KEYS:
                return result
    raise AssertionError(f"campaign did not converge in {max_rounds} rounds")


class TestLaplaceEngineEquivalence:
    def test_parallel_matches_serial(self, laplace_serial):
        engine = ParallelCampaign(LAPLACE_CONFIG, processes=2)
        parallel = engine.run(TOOLS, PROGRAMS)
        assert parallel.results == laplace_serial.results
        assert parallel.allocation == laplace_serial.allocation

    def test_degraded_pool_matches_serial(self, laplace_serial):
        engine = ParallelCampaign(LAPLACE_CONFIG, processes=0)
        inprocess = engine.run(TOOLS, PROGRAMS)
        assert inprocess.results == laplace_serial.results
        assert inprocess.allocation == laplace_serial.allocation

    def test_supervised_matches_serial(self, laplace_serial):
        engine = SupervisedCampaign(
            LAPLACE_CONFIG, processes=2, heartbeat_seconds=0.05, backoff_base=0.01
        )
        supervised = engine.run(TOOLS, PROGRAMS)
        assert supervised.results == laplace_serial.results
        assert supervised.allocation == laplace_serial.allocation

    @pytest.mark.parametrize("start_method", ["fork", "forkserver"])
    def test_pooled_matches_serial(self, laplace_serial, start_method):
        engine = ParallelCampaign(
            LAPLACE_CONFIG, processes=2, engine="pool", start_method=start_method
        )
        pooled = engine.run(TOOLS, PROGRAMS)
        assert pooled.results == laplace_serial.results
        assert pooled.allocation == laplace_serial.allocation

    def test_store_resume_from_complete_store_matches_serial(
        self, laplace_serial, tmp_path
    ):
        store_dir = tmp_path / "store"
        tools = [RffTool(), random_tool()]
        programs = [bench.get(p) for p in PROGRAMS]
        first = Campaign(LAPLACE_CONFIG).run(tools, programs, store=store_dir)
        resumed = Campaign(LAPLACE_CONFIG).run(tools, programs, store=store_dir)
        assert first.results == laplace_serial.results
        assert resumed.results == laplace_serial.results
        assert resumed.allocation == laplace_serial.allocation

    def test_worker_kills_converge_to_serial(self, laplace_serial, tmp_path, monkeypatch):
        seed = seed_with_injections(
            lambda s: "kill" in cell_keys(ChaosPlan(seed=s, kill=0.3)).values()
        )
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed, kill=0.3))
        result = run_until_converged(
            tmp_path / "store", fault_hook=faults.CHAOS_HOOK_REF
        )
        assert result.results == laplace_serial.results
        assert result.allocation == laplace_serial.allocation


# ----------------------------------------------------------------------
# Stamped stores refuse mismatched allocators
# ----------------------------------------------------------------------
class TestAllocatorStamping:
    @pytest.fixture()
    def laplace_store(self, tmp_path):
        store_dir = tmp_path / "store"
        config = CampaignConfig(
            trials=1, budget=40, base_seed=7, allocator=LaplaceAllocator(rounds=2)
        )
        Campaign(config).run(
            [random_tool()], [bench.get("CS/account")], store=store_dir
        )
        return store_dir, config

    def test_uniform_resume_of_laplace_store_is_refused(self, laplace_store):
        store_dir, config = laplace_store
        with pytest.raises(StoreMismatchError):
            Campaign(replace(config, allocator=UniformAllocator())).run(
                [random_tool()], [bench.get("CS/account")], store=store_dir
            )

    def test_other_adaptive_allocator_is_refused_too(self, laplace_store):
        store_dir, config = laplace_store
        with pytest.raises(StoreMismatchError):
            Campaign(replace(config, allocator=NoveltyBiasAllocator(rounds=2))).run(
                [random_tool()], [bench.get("CS/account")], store=store_dir
            )

    def test_cli_refuses_resume_with_different_allocator(self, laplace_store, capsys):
        from repro.cli import main

        store_dir, _ = laplace_store
        code = main(
            [
                "campaign",
                "--store",
                str(store_dir),
                "--resume",
                "--tools",
                "Random",
                "--programs",
                "CS/account",
                "--trials",
                "1",
                "--budget",
                "40",
                "--seed",
                "7",
                "--allocator",
                "uniform",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "allocator" in err
        assert "laplace" in err


# ----------------------------------------------------------------------
# cumulative_curve over store-stamped tool strings
# ----------------------------------------------------------------------
class TestCumulativeCurveStampedTools:
    def test_counts_trials_whose_tool_field_came_from_a_store(self):
        """Results resumed from a store carry whatever tool string was
        stamped at record time; the curve must count them because trials
        are already fetched per tool key."""
        result = CampaignResult(config=CampaignConfig(trials=1, budget=10))
        result.results[("RFF", "CS/account")] = [
            BugSearchResult(
                tool="RFF@stamped",  # store-stamped variant string
                program="CS/account",
                trial=0,
                found=True,
                schedules_to_bug=4,
                executions=4,
            )
        ]
        result.results[("RFF", "CS/reorder_4")] = [
            BugSearchResult(
                tool="RFF",
                program="CS/reorder_4",
                trial=0,
                found=True,
                schedules_to_bug=9,
                executions=9,
            )
        ]
        assert result.cumulative_curve("RFF") == [(4, 1), (9, 2)]
