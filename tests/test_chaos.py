"""Differential chaos suite: injected-fault campaigns converge bit-identically.

The acceptance criterion of the durable fabric: under seeded worker-kill /
hang / torn-write / store-corruption injection, a campaign driven through
the corpus store — killed and resumed as many times as the faults demand —
ends with bug ledgers, corpus contents and triage buckets *bit-identical*
to the fault-free serial ``Campaign``.  And a real ``SIGKILL`` of a real
``rff campaign --durable`` process, followed by ``--resume``, recovers
without loss or duplication.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import bench
from repro.harness import faults
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.faults import ChaosKill, ChaosPlan
from repro.harness.store import CorpusStore
from repro.harness.supervisor import SupervisedCampaign
from repro.harness.tools import RffTool, random_tool

TOOLS = ["RFF", "Random"]
PROGRAMS = ["CS/account", "Splash2/lu"]
CONFIG = CampaignConfig(trials=2, budget=80, base_seed=7)
ALL_KEYS = {
    (tool, program, trial)
    for tool in TOOLS
    for program in PROGRAMS
    for trial in range(CONFIG.trials)
}


@pytest.fixture(scope="module")
def serial():
    return Campaign(CONFIG).run(
        [RffTool(), random_tool()], [bench.get(p) for p in PROGRAMS]
    )


def seed_with_injections(check) -> int:
    """The first seed whose plan satisfies ``check`` — keeps the suite
    honest: every scenario provably injects at least one fault."""
    for seed in range(200):
        if check(seed):
            return seed
    raise AssertionError("no seed in range produces the wanted injection")


def arm(monkeypatch, tmp_path, plan: ChaosPlan) -> None:
    state = tmp_path / "chaos-state"
    state.mkdir(exist_ok=True)
    for key, value in plan.to_env(state).items():
        monkeypatch.setenv(key, value)


def run_until_converged(store_dir, max_rounds: int = 10, **engine_kwargs):
    """Drive (possibly chaos-killed) campaigns through one store until the
    ledger covers every cell; returns the final completed run's result.

    This is exactly the operational loop a durable deployment runs: start,
    die (maybe), resume — the store carries all state between attempts.
    """
    for _ in range(max_rounds):
        engine = SupervisedCampaign(
            CONFIG,
            processes=2,
            store=store_dir,
            heartbeat_seconds=0.05,
            backoff_base=0.01,
            **engine_kwargs,
        )
        try:
            result = engine.run(TOOLS, PROGRAMS)
        except ChaosKill:
            continue  # the simulated SIGKILL: resume through the store
        with CorpusStore(store_dir, readonly=True) as store:
            if set(store.completed()) == ALL_KEYS:
                return result
    raise AssertionError(f"campaign did not converge in {max_rounds} rounds")


def cell_keys(plan: ChaosPlan) -> dict[str, str]:
    return plan.injection_points([faults.cell_key(*key) for key in sorted(ALL_KEYS)])


class TestDifferentialConvergence:
    def test_worker_kills_converge(self, serial, tmp_path, monkeypatch):
        seed = seed_with_injections(
            lambda s: "kill" in cell_keys(ChaosPlan(seed=s, kill=0.3)).values()
        )
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed, kill=0.3))
        result = run_until_converged(
            tmp_path / "store", fault_hook=faults.CHAOS_HOOK_REF
        )
        assert result == serial

    def test_hangs_past_lease_converge(self, serial, tmp_path, monkeypatch):
        seed = seed_with_injections(
            lambda s: "hang" in cell_keys(ChaosPlan(seed=s, hang=0.3)).values()
        )
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed, hang=0.3))
        result = run_until_converged(
            tmp_path / "store",
            fault_hook=faults.CHAOS_HOOK_REF,
            lease_seconds=0.5,
        )
        assert result == serial

    def test_torn_writes_converge(self, serial, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=seed_with_injections(
                lambda s: ChaosPlan(seed=s, torn_write=0.3).store_fault(2) == "torn_write"
            ),
            torn_write=0.3,
        )
        arm(monkeypatch, tmp_path, plan)
        result = run_until_converged(tmp_path / "store")
        assert result == serial
        # The torn half-line was truncated on some resume, never re-read.
        with CorpusStore(tmp_path / "store", readonly=True) as store:
            assert store.verify().corrupt_records == 0

    def test_store_corruption_converges(self, serial, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=seed_with_injections(
                lambda s: ChaosPlan(seed=s, corrupt=0.3).store_fault(1) == "corrupt"
            ),
            corrupt=0.3,
        )
        arm(monkeypatch, tmp_path, plan)
        result = run_until_converged(tmp_path / "store")
        assert result == serial
        # Corrupt records stay on disk (append-only) but never reach results;
        # compaction drops them.
        with CorpusStore(tmp_path / "store") as store:
            store.compact()
            assert store.verify().cells == len(ALL_KEYS)

    def test_combined_chaos_converges(self, serial, tmp_path, monkeypatch):
        arm(
            monkeypatch,
            tmp_path,
            ChaosPlan(seed=11, kill=0.2, hang=0.1, skew=0.2, torn_write=0.15, corrupt=0.15),
        )
        result = run_until_converged(
            tmp_path / "store",
            fault_hook=faults.CHAOS_HOOK_REF,
            lease_seconds=0.5,
        )
        assert result == serial

    def test_serial_campaign_through_store_converges(self, serial, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=seed_with_injections(
                lambda s: ChaosPlan(seed=s, torn_write=0.4).store_fault(0) == "torn_write"
            ),
            torn_write=0.4,
        )
        arm(monkeypatch, tmp_path, plan)
        tools = [RffTool(), random_tool()]
        programs = [bench.get(p) for p in PROGRAMS]
        result = None
        for _ in range(10):
            try:
                result = Campaign(CONFIG).run(tools, programs, store=tmp_path / "store")
            except ChaosKill:
                continue
            with CorpusStore(tmp_path / "store", readonly=True) as store:
                if set(store.completed()) == ALL_KEYS:
                    break
        assert result == serial

    def test_injection_accounting_is_exact(self, serial, tmp_path, monkeypatch):
        """Every planned worker fault fires exactly once, and retries match
        the fired claims one-to-one."""
        seed = seed_with_injections(
            lambda s: len(cell_keys(ChaosPlan(seed=s, kill=0.3))) >= 2
        )
        plan = ChaosPlan(seed=seed, kill=0.3)
        arm(monkeypatch, tmp_path, plan)
        from repro.harness.telemetry import TelemetryAggregator

        aggregator = TelemetryAggregator()
        result = run_until_converged(
            tmp_path / "store",
            fault_hook=faults.CHAOS_HOOK_REF,
            telemetry=aggregator,
        )
        assert result == serial
        fired = faults.claimed_tokens(str(tmp_path / "chaos-state"))
        planned = sorted(f"{kind}:{key}" for key, kind in cell_keys(plan).items())
        assert fired == planned
        # One retry per fired kill (all kills hit first attempts here, and
        # the retry budget is never exhausted).
        assert aggregator.retries == len(planned)


class TestRealSigkill:
    def test_sigkill_then_resume_recovers_without_loss_or_duplication(self, tmp_path):
        """Launch a real durable campaign, SIGKILL it mid-flight, resume it,
        and check the ledger against an in-process fault-free baseline."""
        store_dir = tmp_path / "store"
        config = CampaignConfig(trials=2, budget=1500, base_seed=1234)
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "--durable",
            "--store",
            str(store_dir),
            "--parallel",
            "2",
            "--trials",
            "2",
            "--budget",
            "1500",
            "--tools",
            "RFF",
            "Random",
            "--programs",
            *PROGRAMS,
        ]
        env = {**os.environ, "PYTHONPATH": "src"}
        proc = subprocess.Popen(
            argv, cwd="/root/repo", env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as the store holds at least one record — a point
            # chosen by the campaign's own progress, not a fixed sleep.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and proc.poll() is None:
                if store_dir.exists():
                    segments = list(store_dir.glob("segment-*.jsonl"))
                    if any(s.stat().st_size > 0 for s in segments):
                        break
                time.sleep(0.05)
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
        resumed = subprocess.run(
            argv + ["--resume"], cwd="/root/repo", env=env, capture_output=True,
            text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        baseline = Campaign(config).run(
            [RffTool(), random_tool()], [bench.get(p) for p in PROGRAMS]
        )
        with CorpusStore(store_dir, readonly=True) as store:
            completed = store.completed()
            inspection = store.inspect()
        expected = {
            (tool, program, trial): baseline.results[(tool, program)][trial]
            for tool in TOOLS
            for program in PROGRAMS
            for trial in range(config.trials)
        }
        assert completed == expected  # no loss, bit-identical cells
        assert inspection.records == len(expected)  # no duplication
        assert inspection.corrupt_records == 0
