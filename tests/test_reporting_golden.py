"""Golden-structure tests for the report renderers.

These pin the *format* of the rendered artifacts (column layout, cell
syntax, legend lines) without pinning volatile numbers, so accidental
renderer regressions show up as diffs here rather than in EXPERIMENTS.md.
"""

from __future__ import annotations

import re

from repro.harness.campaign import CampaignConfig, CampaignResult
from repro.harness.reporting import (
    APPENDIX_B_ORDER,
    appendix_b_table,
    figure4_ascii,
    figure5_ascii,
)
from repro.harness.reporting import RfDistribution
from repro.harness.tools import BugSearchResult


def _result(tool, program, trial, schedules):
    return BugSearchResult(
        tool=tool,
        program=program,
        trial=trial,
        found=schedules is not None,
        schedules_to_bug=schedules,
        executions=schedules or 100,
        outcome="assertion" if schedules else None,
    )


def _campaign():
    campaign = CampaignResult(config=CampaignConfig(trials=2, budget=100))
    campaign.results[("RFF", "CS/alpha")] = [_result("RFF", "CS/alpha", 0, 3), _result("RFF", "CS/alpha", 1, 5)]
    campaign.results[("POS", "CS/alpha")] = [_result("POS", "CS/alpha", 0, None), _result("POS", "CS/alpha", 1, 9)]
    campaign.results[("GenMC", "CS/alpha")] = [
        BugSearchResult("GenMC", "CS/alpha", 0, False, None, 0, error="unsupported"),
        BugSearchResult("GenMC", "CS/alpha", 1, False, None, 0, error="unsupported"),
    ]
    campaign.results[("RFF", "CS/beta")] = [_result("RFF", "CS/beta", 0, None), _result("RFF", "CS/beta", 1, None)]
    campaign.results[("POS", "CS/beta")] = [_result("POS", "CS/beta", 0, 7), _result("POS", "CS/beta", 1, 7)]
    campaign.results[("GenMC", "CS/beta")] = [_result("GenMC", "CS/beta", 0, 4), _result("GenMC", "CS/beta", 1, 4)]
    return campaign


class TestAppendixTableFormat:
    def test_cell_syntax(self):
        table = appendix_b_table(_campaign())
        assert re.search(r"CS/alpha.*4 ± 1", table)      # mean ± std
        assert re.search(r"CS/alpha.*9 ± 0\*", table)     # starred partial find
        assert re.search(r"CS/alpha.*Error", table)       # error cell
        assert re.search(r"CS/beta\s+-", table) or " -" in table  # dash cell

    def test_column_order_follows_paper(self):
        table = appendix_b_table(_campaign())
        header = table.splitlines()[0]
        present = [t for t in APPENDIX_B_ORDER if t in header]
        assert present == ["RFF", "POS", "GenMC"]

    def test_summary_row_present(self):
        table = appendix_b_table(_campaign())
        assert table.splitlines()[-1].startswith("mean bugs found")

    def test_rows_sorted_by_program(self):
        table = appendix_b_table(_campaign())
        alpha_line = next(i for i, l in enumerate(table.splitlines()) if l.startswith("CS/alpha"))
        beta_line = next(i for i, l in enumerate(table.splitlines()) if l.startswith("CS/beta"))
        assert alpha_line < beta_line


class TestFigureFormats:
    def test_figure4_has_legend_and_axis(self):
        art = figure4_ascii(_campaign())
        assert art.splitlines()[0].startswith("cumulative bugs")
        assert any(line.strip().startswith("+") for line in art.splitlines())
        assert any("= RFF" in line for line in art.splitlines())

    def test_figure5_header_fields(self):
        dist = RfDistribution(tool="POS", executions=100, counts=[50, 30, 15, 5])
        art = figure5_ascii(dist)
        header = art.splitlines()[0]
        assert "POS" in header and "4 rf signatures" in header
        assert "50.0%" in header  # top share
        assert "log-scale" in art

    def test_figure5_empty_distribution(self):
        dist = RfDistribution(tool="RFF", executions=0, counts=[])
        assert "no executions" in figure5_ascii(dist)
