"""Property suite for the budget allocator protocol.

The allocator's determinism contract (see ``repro.harness.allocator``) is
what lets serial, parallel, supervised and resumed campaigns share plans:

* **purity** — ``plan`` is a pure function of (cells, history, round,
  seed);
* **conservation** — every round's slices sum to exactly that round's
  share, and with no retirements the slices over all rounds sum to
  exactly the global budget;
* **starvation freedom** — every live cell receives at least the
  (clamped) ``min_cell_budget`` floor;
* **order insensitivity** — neither cell order nor history-dict order can
  leak into plans or estimates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.allocator import (
    ALLOCATORS,
    CellInfo,
    LaplaceAllocator,
    NoveltyBiasAllocator,
    SliceObservation,
    UniformAllocator,
    make_allocator,
    merge_slices,
    slice_seed,
)
from repro.harness.tools import BugSearchResult

ADAPTIVE = [LaplaceAllocator, NoveltyBiasAllocator]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def cell_lists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    cells = []
    for index in range(count):
        cells.append(
            CellInfo(
                tool=draw(st.sampled_from(["RFF", "Random", "PCT3"])),
                program=f"prog/{index}",
                trial=draw(st.integers(min_value=0, max_value=3)),
                budget=draw(st.integers(min_value=1, max_value=200)),
                one_shot=draw(st.booleans()),
            )
        )
    # Deduplicate by key: a campaign never has two cells with one identity.
    unique = {c.key: c for c in cells}
    return list(unique.values())


@st.composite
def histories(draw, cells):
    history = {}
    for cell in cells:
        if cell.one_shot or not draw(st.booleans()):
            continue
        observations = []
        for round_index in range(draw(st.integers(min_value=1, max_value=3))):
            allocated = draw(st.integers(min_value=1, max_value=60))
            executions = draw(st.integers(min_value=0, max_value=allocated))
            observations.append(
                SliceObservation(
                    round=round_index,
                    allocated=allocated,
                    executions=executions,
                    found=draw(st.booleans()),
                    error=False,
                    new_signatures=draw(st.integers(min_value=0, max_value=executions)),
                )
            )
        history[cell.key] = observations
    return history


@st.composite
def scenarios(draw):
    cells = draw(cell_lists())
    history = draw(histories(cells))
    allocator = draw(st.sampled_from(ADAPTIVE))(
        rounds=draw(st.integers(min_value=1, max_value=5)),
        min_cell_budget=draw(st.integers(min_value=1, max_value=10)),
    )
    round_index = draw(st.integers(min_value=0, max_value=allocator.rounds - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return allocator, cells, history, round_index, seed


# ----------------------------------------------------------------------
# Purity
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(scenarios())
def test_plan_is_pure(scenario):
    allocator, cells, history, round_index, seed = scenario
    first = allocator.plan(cells, history, round_index, seed)
    second = allocator.plan(cells, history, round_index, seed)
    assert first == second
    # A fresh, equal allocator instance plans identically too: no state.
    clone = type(allocator)(rounds=allocator.rounds, min_cell_budget=allocator.min_cell_budget)
    assert clone.plan(cells, history, round_index, seed) == first


@settings(max_examples=60, deadline=None)
@given(scenarios(), st.integers(min_value=0, max_value=2**31))
def test_plan_depends_on_seed_only_through_tiebreaks(scenario, other_seed):
    """Different seeds may permute tie-broken units but never change the
    round total or violate the floor — the seed is jitter, not policy."""
    allocator, cells, history, round_index, seed = scenario
    first = allocator.plan(cells, history, round_index, seed)
    second = allocator.plan(cells, history, round_index, other_seed)
    assert sum(first.values()) == sum(second.values())
    assert set(first) == set(second)


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(scenarios())
def test_round_conserves_its_share(scenario):
    allocator, cells, history, round_index, seed = scenario
    plan = allocator.plan(cells, history, round_index, seed)
    adaptive = [c for c in cells if not c.one_shot]
    pool = sum(c.budget for c in adaptive)
    share = pool // allocator.rounds + (1 if round_index < pool % allocator.rounds else 0)
    one_shot_total = sum(c.budget for c in cells if c.one_shot) if round_index == 0 else 0
    live = [c for c in adaptive if not any(o.found or o.error for o in history.get(c.key, ()))]
    expected = one_shot_total + (share if live and share > 0 else 0)
    assert sum(plan.values()) == expected


@settings(max_examples=80, deadline=None)
@given(cell_lists(), st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2**31))
@pytest.mark.parametrize("allocator_class", ADAPTIVE)
def test_full_campaign_conserves_global_budget(allocator_class, cells, rounds, seed):
    """With no cell retiring, the slices over all rounds sum to exactly
    the global budget (every cell's nominal budget spent somewhere)."""
    allocator = allocator_class(rounds=rounds)
    history = {}
    total = 0
    for round_index in range(allocator.rounds):
        plan = allocator.plan(cells, history, round_index, seed)
        total += sum(plan.values())
        for key, allocated in plan.items():
            history.setdefault(key, []).append(
                SliceObservation(
                    round=round_index,
                    allocated=allocated,
                    executions=allocated,
                    found=False,
                    error=False,
                    new_signatures=0,
                )
            )
    assert total == sum(c.budget for c in cells)


def test_uniform_allocates_nominal_budgets_in_one_round():
    cells = [
        CellInfo("RFF", "p/a", 0, 50),
        CellInfo("RFF", "p/b", 1, 70),
        CellInfo("GenMC", "p/a", 0, 50, one_shot=True),
    ]
    allocator = UniformAllocator()
    plan = allocator.plan(cells, {}, 0, 1234)
    assert plan == {c.key: c.budget for c in cells}
    assert allocator.plan(cells, {}, 1, 1234) == {}
    assert allocator.identity() is None  # header-invisible: legacy stores resume


# ----------------------------------------------------------------------
# Starvation freedom
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(scenarios())
def test_every_live_cell_gets_at_least_the_floor(scenario):
    allocator, cells, history, round_index, seed = scenario
    plan = allocator.plan(cells, history, round_index, seed)
    adaptive = [c for c in cells if not c.one_shot]
    live = [c for c in adaptive if not any(o.found or o.error for o in history.get(c.key, ()))]
    pool = sum(c.budget for c in adaptive)
    share = pool // allocator.rounds + (1 if round_index < pool % allocator.rounds else 0)
    if not live or share <= 0:
        return
    if share < len(live):
        # Degenerate: fewer schedules than live cells — the plan still
        # spends every one of them, one per highest-weighted cell.
        assert sum(plan.get(c.key, 0) for c in live) == share
        return
    floor = max(1, min(allocator.min_cell_budget, share // len(live)))
    for cell in live:
        assert plan[cell.key] >= floor


@settings(max_examples=100, deadline=None)
@given(scenarios())
def test_retired_cells_get_nothing(scenario):
    allocator, cells, history, round_index, seed = scenario
    plan = allocator.plan(cells, history, round_index, seed)
    for cell in cells:
        if cell.one_shot:
            continue
        if any(o.found or o.error for o in history.get(cell.key, ())):
            assert cell.key not in plan


# ----------------------------------------------------------------------
# Order insensitivity
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(scenarios(), st.randoms(use_true_random=False))
def test_plan_and_estimates_ignore_iteration_order(scenario, rng):
    allocator, cells, history, round_index, seed = scenario
    plan = allocator.plan(cells, history, round_index, seed)
    estimates = allocator.estimates(cells, history)
    shuffled_cells = list(cells)
    rng.shuffle(shuffled_cells)
    shuffled_keys = list(history)
    rng.shuffle(shuffled_keys)
    shuffled_history = {key: history[key] for key in shuffled_keys}
    assert allocator.plan(shuffled_cells, shuffled_history, round_index, seed) == plan
    assert allocator.estimates(shuffled_cells, shuffled_history) == estimates


# ----------------------------------------------------------------------
# Seeds, merging, construction helpers
# ----------------------------------------------------------------------
def test_round_zero_slice_seed_matches_legacy_campaign_seed():
    for base_seed in (0, 7, 1234):
        for trial in range(5):
            assert slice_seed(base_seed, trial, 0) == base_seed + 7919 * trial


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=19),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
)
def test_slice_seeds_never_collide_across_rounds(base_seed, trial, round_a, round_b):
    if round_a != round_b:
        assert slice_seed(base_seed, trial, round_a) != slice_seed(base_seed, trial, round_b)


def _slice(found=False, schedules=None, executions=10, new_signatures=0, error=None):
    return BugSearchResult(
        tool="Random",
        program="p/a",
        trial=0,
        found=found,
        schedules_to_bug=schedules,
        executions=executions,
        error=error,
        new_signatures=new_signatures,
    )


def test_merge_single_slice_is_identity():
    result = _slice(found=True, schedules=3, executions=3)
    assert merge_slices([result]) is result


def test_merge_accumulates_schedules_to_bug_across_slices():
    merged = merge_slices(
        [
            _slice(executions=40, new_signatures=5),
            _slice(found=True, schedules=7, executions=7, new_signatures=2),
        ]
    )
    assert merged.found
    assert merged.schedules_to_bug == 47  # 40 fruitless + 7 in the finding slice
    assert merged.executions == 47
    assert merged.new_signatures == 7


def test_merge_without_a_find_sums_executions():
    merged = merge_slices([_slice(executions=40), _slice(executions=25)])
    assert not merged.found
    assert merged.schedules_to_bug is None
    assert merged.executions == 65


def test_merge_stops_at_first_error_slice():
    merged = merge_slices(
        [_slice(executions=12), _slice(executions=0, error="boom"), _slice(executions=99)]
    )
    assert merged.error == "boom"
    assert merged.executions == 12


def test_make_allocator_knows_all_names():
    for name in ALLOCATORS:
        assert make_allocator(name).name == name
    assert make_allocator("laplace", rounds=7, min_cell_budget=3).rounds == 7
    # Uniform is single-round by definition; the rounds knob does not apply.
    assert make_allocator("uniform", rounds=9).rounds == 1
    with pytest.raises(ValueError):
        make_allocator("bandit")
