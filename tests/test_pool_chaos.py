"""Chaos suite for the pooled engine: kill mid-batch, replay, converge.

The crash-replay contract of ``repro.harness.pool``: a worker killed
mid-batch costs exactly the *unfinished* slices of that batch — completed
slices are never re-run (no duplication), unfinished ones are never
dropped (no loss) — and a pooled campaign driven through the durable
store, killed and resumed as the faults demand, converges bit-identically
to the fault-free serial result.  Same plans, same claim-once state, same
assertions as ``tests/test_chaos.py``, pointed at ``engine="pool"``.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.harness import faults
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.faults import ChaosKill, ChaosPlan
from repro.harness.store import CorpusStore
from repro.harness.supervisor import SupervisedCampaign
from repro.harness.telemetry import TelemetryAggregator
from repro.harness.tools import RffTool, random_tool

TOOLS = ["RFF", "Random"]
PROGRAMS = ["CS/account", "Splash2/lu"]
CONFIG = CampaignConfig(trials=2, budget=80, base_seed=7)
ALL_KEYS = {
    (tool, program, trial)
    for tool in TOOLS
    for program in PROGRAMS
    for trial in range(CONFIG.trials)
}


@pytest.fixture(scope="module")
def serial():
    return Campaign(CONFIG).run(
        [RffTool(), random_tool()], [bench.get(p) for p in PROGRAMS]
    )


def seed_with_kill() -> int:
    for seed in range(200):
        plan = ChaosPlan(seed=seed, kill=0.3)
        points = plan.injection_points(
            [faults.cell_key(*key) for key in sorted(ALL_KEYS)]
        )
        if "kill" in points.values():
            return seed
    raise AssertionError("no seed in range produces a kill injection")


def arm(monkeypatch, tmp_path, plan: ChaosPlan) -> None:
    state = tmp_path / "chaos-state"
    state.mkdir(exist_ok=True)
    for key, value in plan.to_env(state).items():
        monkeypatch.setenv(key, value)


class TestKillMidBatchReplay:
    def test_replays_only_unfinished_slices(self, serial, tmp_path, monkeypatch):
        """A chaos-killed pool worker loses its batch remainder, nothing else."""
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed_with_kill(), kill=0.3))
        aggregator = TelemetryAggregator()
        result = SupervisedCampaign(
            CONFIG,
            processes=2,
            engine="pool",
            batch_size=4,
            telemetry=aggregator,
            fault_hook=faults.CHAOS_HOOK_REF,
            heartbeat_seconds=0.05,
            backoff_base=0.01,
        ).run(TOOLS, PROGRAMS)
        # The worker really died mid-batch and was recycled...
        recycles = aggregator.of_type("worker_recycle")
        assert recycles and any(r["kind"] == "crash" for r in recycles)
        crash_exits = [
            r for r in aggregator.of_type("worker_exit") if r["kind"] == "crash"
        ]
        assert any(r["exitcode"] == faults.CRASH_EXIT_CODE for r in crash_exits)
        # ...replaying some slices (cell_retry), but never re-recording a
        # completed one and never dropping one: every cell lands exactly once.
        assert aggregator.retries >= 1
        keys = [
            (r["tool"], r["program"], r["trial"])
            for r in aggregator.of_type("cell_end")
        ]
        assert len(keys) == len(set(keys))
        assert set(keys) == ALL_KEYS
        # And the survivors are bit-identical to the fault-free serial run.
        assert result == serial

    def test_percell_engine_same_plan_same_result(self, serial, tmp_path, monkeypatch):
        """The identical kill plan through the per-cell engine: same answer."""
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed_with_kill(), kill=0.3))
        aggregator = TelemetryAggregator()
        result = SupervisedCampaign(
            CONFIG,
            processes=2,
            telemetry=aggregator,
            fault_hook=faults.CHAOS_HOOK_REF,
            heartbeat_seconds=0.05,
            backoff_base=0.01,
        ).run(TOOLS, PROGRAMS)
        assert aggregator.retries >= 1
        assert result == serial


class TestDurablePoolConvergence:
    def run_until_converged(self, store_dir, max_rounds: int = 10, **engine_kwargs):
        for _ in range(max_rounds):
            engine = SupervisedCampaign(
                CONFIG,
                processes=2,
                engine="pool",
                store=store_dir,
                heartbeat_seconds=0.05,
                backoff_base=0.01,
                **engine_kwargs,
            )
            try:
                result = engine.run(TOOLS, PROGRAMS)
            except ChaosKill:
                continue  # the simulated SIGKILL: resume through the store
            with CorpusStore(store_dir, readonly=True) as store:
                if set(store.completed()) == ALL_KEYS:
                    return result
        raise AssertionError(f"campaign did not converge in {max_rounds} rounds")

    def test_kills_and_torn_writes_converge(self, serial, tmp_path, monkeypatch):
        """Worker kills + torn store writes; killed-and-resumed == serial."""
        seed = next(
            s
            for s in range(200)
            if ChaosPlan(seed=s, torn_write=0.2).store_fault(1) == "torn_write"
        )
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed, kill=0.2, torn_write=0.2))
        result = self.run_until_converged(
            tmp_path / "store", fault_hook=faults.CHAOS_HOOK_REF
        )
        assert result == serial

    def test_pool_resume_from_percell_store(self, serial, tmp_path, monkeypatch):
        """Engines interoperate: a store written per-cell resumes pooled."""
        arm(monkeypatch, tmp_path, ChaosPlan(seed=seed_with_kill(), kill=0.3))
        # First attempt under the per-cell engine, chaos-killed workers and
        # all; whatever it leaves in the store, the pool finishes.
        SupervisedCampaign(
            CONFIG,
            processes=2,
            store=tmp_path / "store",
            fault_hook=faults.CHAOS_HOOK_REF,
            heartbeat_seconds=0.05,
            backoff_base=0.01,
        ).run(TOOLS, PROGRAMS)
        result = self.run_until_converged(tmp_path / "store")
        assert result == serial
