"""Property-based round-trip tests for the persistence layer."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent, Event
from repro.core.trace import Trace
from repro.harness.persist import (
    event_from_dict,
    event_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    trace_from_dict,
    trace_to_dict,
)

_KINDS = ["r", "w", "rmw", "cas", "lock", "unlock", "spawn", "join", "hr", "hw", "flush"]
_LOCATIONS = ["var:x", "var:y", "mutex:m", "heap:n#0.val", "thread:spawn"]


@st.composite
def events(draw, eid=None):
    kind = draw(st.sampled_from(_KINDS))
    return Event(
        eid=eid if eid is not None else draw(st.integers(1, 10_000)),
        tid=draw(st.integers(0, 50)),
        kind=kind,
        location=draw(st.sampled_from(_LOCATIONS)),
        loc=f"f:{draw(st.integers(1, 500))}",
        rf=draw(st.one_of(st.none(), st.integers(0, 10_000))),
        value=draw(st.one_of(st.none(), st.integers(-5, 5), st.text(max_size=8), st.booleans())),
        aux=draw(st.one_of(st.none(), st.integers(0, 50), st.tuples(st.integers(0, 9)))),
    )


@st.composite
def traces(draw):
    size = draw(st.integers(0, 12))
    trace_events = [draw(events(eid=i + 1)) for i in range(size)]
    outcome = draw(st.one_of(st.none(), st.sampled_from(["assertion", "deadlock", "use-after-free"])))
    failure = draw(st.one_of(st.none(), st.text(max_size=20))) if outcome else None
    return Trace(events=trace_events, outcome=outcome, failure=failure)


@st.composite
def schedules(draw):
    constraints = []
    for _ in range(draw(st.integers(0, 5))):
        location = draw(st.sampled_from(["var:x", "var:y"]))
        read = AbstractEvent("r", location, f"r:{draw(st.integers(1, 9))}")
        write = draw(
            st.one_of(
                st.none(),
                st.builds(lambda n, loc=location: AbstractEvent("w", loc, f"w:{n}"), st.integers(1, 9)),
            )
        )
        constraints.append(Constraint(read, write, positive=draw(st.booleans())))
    return AbstractSchedule(frozenset(constraints))


class TestRoundTripProperties:
    @given(events())
    @settings(max_examples=150)
    def test_event_round_trip(self, event):
        again = event_from_dict(event_to_dict(event))
        assert again.eid == event.eid
        assert again.tid == event.tid
        assert again.kind == event.kind
        assert again.location == event.location
        assert again.loc == event.loc
        assert again.rf == event.rf
        assert again.aux == event.aux

    @given(events())
    @settings(max_examples=100)
    def test_event_dict_is_json_clean(self, event):
        json.dumps(event_to_dict(event))

    @given(traces())
    @settings(max_examples=100)
    def test_trace_round_trip_preserves_structure(self, trace):
        again = trace_from_dict(trace_to_dict(trace))
        assert len(again) == len(trace)
        assert again.outcome == trace.outcome
        assert [(e.eid, e.tid, e.kind) for e in again] == [
            (e.eid, e.tid, e.kind) for e in trace
        ]

    @given(schedules())
    @settings(max_examples=150)
    def test_schedule_round_trip_exact(self, schedule):
        assert schedule_from_dict(schedule_to_dict(schedule)) == schedule

    @given(schedules())
    @settings(max_examples=100)
    def test_schedule_dict_is_json_clean(self, schedule):
        json.dumps(schedule_to_dict(schedule))
