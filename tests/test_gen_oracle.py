"""Ground-truth oracle contract on the pinned 50-program corpus.

The corpus ``gen:2000 .. gen:2049`` is the one CI's ``gen-smoke`` job
evaluates; these tests pin the three facts the whole ground-truth story
rests on:

* the corpus itself is frozen — same seeds, same kind breakdown, same
  bytes — so the checked-in baseline keeps meaning something;
* **every planted bug is reachable**: the model checker (where the spec
  is small enough) or a fuzzing witness finds the labelled crash, i.e.
  no ground-truth label is vacuous;
* the sanitizer channel's FN/FP rates stay inside the bounds the
  checked-in ``results/groundtruth_baseline.json`` declares.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.algos.exploration import StatelessExplorer
from repro.core.fuzzer import fuzz
from repro.gen.oracle import aggregate_sanitizers
from repro.gen.synth import corpus
from repro.harness.groundtruth import (
    GroundTruthConfig,
    GroundTruthHarness,
    check_baseline,
    load_baseline,
    tool_factories,
)

CORPUS_SEED = 2000
CORPUS_COUNT = 50
#: sha256 over the concatenated canonical JSON of all 50 programs.  This
#: changes whenever the generator's output changes — which is exactly the
#: point: regenerate it (and re-run ``rff eval-gen``) deliberately, never
#: by accident.
CORPUS_DIGEST = "aebc1872361fcc82bfcf9c12f1a21322ec72dc0ace31b02afeff0178dd81d23e"
BASELINE_PATH = Path(__file__).resolve().parent.parent / "results" / "groundtruth_baseline.json"

#: Escalating fuzz budgets for non-model-checkable programs; the slowest
#: witness in the pinned corpus needs well under the first tier.
FUZZ_TIERS = ((300, 0), (1500, 1), (4000, 2))


@pytest.fixture(scope="module")
def pinned_corpus():
    return corpus(CORPUS_SEED, CORPUS_COUNT)


@pytest.fixture(scope="module")
def baseline():
    return load_baseline(BASELINE_PATH)


class TestPinnedCorpus:
    def test_kind_breakdown_is_frozen(self, pinned_corpus):
        kinds: dict[str, int] = {}
        for generated in pinned_corpus:
            kind = generated.ground_truth.kind
            kinds[kind] = kinds.get(kind, 0) + 1
        assert kinds == {"race": 18, "atomicity": 9, "deadlock": 13, "none": 10}

    def test_corpus_bytes_are_frozen(self, pinned_corpus):
        blob = "\n".join(g.to_json() for g in pinned_corpus).encode()
        assert hashlib.sha256(blob).hexdigest() == CORPUS_DIGEST

    def test_baseline_matches_pinned_corpus(self, baseline):
        assert baseline["corpus"] == {
            "seed": CORPUS_SEED,
            "count": CORPUS_COUNT,
            "gen_config": "",
        }
        assert set(baseline["max_fn_rate"]) == {"race", "lockset", "lockorder"}
        assert set(baseline["min_detection_rate"]) >= {"RFF"}
        assert set(baseline["min_detection_rate"]) <= set(tool_factories())


class TestReachability:
    def test_every_planted_bug_has_a_witness(self, pinned_corpus):
        """No vacuous labels: MC or a fuzzing witness hits every plant."""
        unfound = []
        for generated in pinned_corpus:
            truth = generated.ground_truth
            if truth.kind == "none":
                continue
            if generated.spec.mc_supported:
                report = StatelessExplorer(
                    generated.program,
                    max_executions=2000,
                    rf_subsume=True,
                    max_steps=generated.spec.step_budget,
                ).run()
                if report.found_bug:
                    continue
            for budget, seed in FUZZ_TIERS:
                report = fuzz(
                    generated.program,
                    max_executions=budget,
                    seed=seed,
                    stop_on_first_crash=True,
                )
                if report.crashes:
                    break
            else:
                unfound.append(generated.name)
        assert not unfound, f"planted bugs with no witness: {unfound}"

    def test_bug_free_programs_survive_fuzzing(self, pinned_corpus):
        for generated in pinned_corpus:
            if generated.ground_truth.kind != "none":
                continue
            report = fuzz(
                generated.program, max_executions=100, seed=0, stop_on_first_crash=True
            )
            assert not report.crashes, f"{generated.name} crashed without a plant"


class TestSanitizerChannel:
    @pytest.fixture(scope="class")
    def sweep(self, pinned_corpus):
        harness = GroundTruthHarness(
            GroundTruthConfig(seed=CORPUS_SEED, count=CORPUS_COUNT)
        )
        return aggregate_sanitizers(harness.run_sanitizer_sweep(pinned_corpus))

    def test_fn_rates_within_checked_in_bounds(self, sweep, baseline):
        for name, bound in baseline["max_fn_rate"].items():
            assert sweep[name]["fn_rate"] <= bound, (
                f"{name} fn_rate {sweep[name]['fn_rate']:.3f} exceeds "
                f"baseline bound {bound:.3f}"
            )

    def test_fp_rates_within_checked_in_bounds(self, sweep, baseline):
        for name, bound in baseline["max_fp_rate"].items():
            assert sweep[name]["fp_rate"] <= bound

    def test_every_expected_sanitizer_fires_somewhere(self, sweep):
        """Each sanitizer has planted work in the corpus and finds some."""
        for name, cell in sweep.items():
            assert cell["expected_programs"] > 0, f"{name} never expected"
            assert cell["tp"] > 0, f"{name} found nothing it should"


class TestBaselineChecker:
    def _payload(self, fn_rate=0.0, fp_rate=0.0, detected=40, spurious=0):
        cell = {"fn_rate": fn_rate, "fp_rate": fp_rate}
        return {
            "sanitizers": {n: dict(cell) for n in ("race", "lockset", "lockorder")},
            "tools": {
                "RFF": {
                    "planted_total": 40,
                    "detected_total": detected,
                    "spurious_crashes": spurious,
                }
            },
        }

    def test_clean_payload_passes(self, baseline):
        baseline = dict(baseline, min_detection_rate={"RFF": 0.95})
        assert check_baseline(self._payload(), baseline) == []

    def test_fn_regression_is_flagged(self, baseline):
        problems = check_baseline(self._payload(fn_rate=0.5), baseline)
        assert any("fn_rate" in p for p in problems)

    def test_missed_detection_is_flagged(self, baseline):
        baseline = dict(baseline, min_detection_rate={"RFF": 0.95})
        problems = check_baseline(self._payload(detected=20), baseline)
        assert any("detection rate" in p for p in problems)

    def test_spurious_crash_is_always_a_violation(self, baseline):
        problems = check_baseline(self._payload(spurious=2), baseline)
        assert any("spurious" in p for p in problems)

    def test_baseline_file_is_valid_json_with_bounds(self):
        parsed = json.loads(BASELINE_PATH.read_text())
        for section in ("max_fn_rate", "max_fp_rate", "min_detection_rate"):
            assert section in parsed
            assert all(0.0 <= v <= 1.0 for v in parsed[section].values())
