"""Invariants the paper's analysis rests on, asserted directly.

Section 2's key counting argument: for ``reorder_n`` the *concrete*
schedule space grows super-exponentially in n, but the *abstract* space —
reads-from options for the checker's two reads — is constant.  These tests
pin that collapse, plus runtime scalability at the paper's largest thread
counts.
"""

from __future__ import annotations

from repro.runtime import run_program
from repro.runtime.executor import Executor
from repro.schedulers import PosPolicy, RandomWalkPolicy

from tests.conftest import make_reorder


class TestAbstractSpaceCollapse:
    def _observed_pairs(self, n, runs=60):
        pairs = set()
        for seed in range(runs):
            trace = run_program(make_reorder(n), PosPolicy(seed)).trace
            pairs |= {
                (w, r)
                for (w, r) in trace.rf_pairs()
                if r.location in ("var:a", "var:b")
            }
        return pairs

    def test_abstract_rf_space_constant_in_thread_count(self):
        """The checker's reads each have exactly 2 abstract rf options
        (initial value or *the* setter write), independent of n.

        Plain POS sampling only *witnesses* the rare init-read options at
        small n (at n=30 the checker virtually never runs first), which is
        precisely the paper's point; the space itself stays at 4 pairs and
        RFF's proactive scheduler exposes all of them at any scale."""
        small = self._observed_pairs(3)
        assert len(small) == 4  # {init, setter-write} x {r(a), r(b)}
        large = self._observed_pairs(30)
        assert large <= small, (small, large)

        from repro.core.fuzzer import RffFuzzer

        fuzzer = RffFuzzer(make_reorder(30), seed=0)
        fuzzer.run(80)
        fuzzed = {
            (w, r)
            for (w, r) in fuzzer.feedback.seen_pairs
            if r.location in ("var:a", "var:b")
        }
        assert fuzzed == small, "RFF must expose the full 4-pair space at n=30"

    def test_concrete_space_grows_with_thread_count(self):
        """Meanwhile the concrete rf classes (who wrote last) stay small
        too, but the schedules themselves do not: longer traces, more
        threads — the collapse is the abstraction's doing."""
        short = run_program(make_reorder(3), PosPolicy(0))
        long = run_program(make_reorder(30), PosPolicy(0))
        assert len(long.trace) > 3 * len(short.trace)


class TestScalability:
    def test_two_hundred_setter_threads(self):
        """Twice the paper's largest thread count executes cleanly."""
        program = make_reorder(200)
        result = Executor(program, RandomWalkPolicy(0), max_steps=50_000).run()
        assert not result.truncated
        assert len(result.trace) >= 3 * 200

    def test_event_ids_stay_dense_at_scale(self):
        program = make_reorder(120)
        result = Executor(program, PosPolicy(1), max_steps=50_000).run()
        assert [e.eid for e in result.trace] == list(range(1, len(result.trace) + 1))

    def test_rff_cost_constant_at_double_scale(self):
        """The paper's headline at 2x the evaluated maximum: still a
        handful of schedules."""
        from repro.core.fuzzer import fuzz

        report = fuzz(make_reorder(200), max_executions=60, seed=0, stop_on_first_crash=True)
        assert report.found_bug
        assert report.first_crash_at <= 30
