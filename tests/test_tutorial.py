"""Executable companion to docs/TUTORIAL.md — keeps the tutorial honest.

Every claim the tutorial makes about its single-flight example is asserted
here; if a library change invalidates the walkthrough, this file fails.
"""

from __future__ import annotations

from repro import RffConfig, fuzz, program, run_program
from repro.analysis import check_lock_discipline, find_races
from repro.harness import Campaign, CampaignConfig, appendix_b_table, paper_tools
from repro.harness.persist import load_crash, save_crashes
from repro.schedulers import PosPolicy


def refresher(t, my_flag, other_flag, refreshes):
    yield t.write(my_flag, 1)
    other_busy = yield t.read(other_flag)
    if not other_busy:
        yield t.add(refreshes, 1)


@program("tutorial/single_flight", bug_kinds=("assertion",))
def single_flight(t):
    flag_a = t.var("flag_a", 0)
    flag_b = t.var("flag_b", 0)
    refreshes = t.var("refreshes", 0)
    h1 = yield t.spawn(refresher, flag_a, flag_b, refreshes)
    h2 = yield t.spawn(refresher, flag_b, flag_a, refreshes)
    yield t.join(h1)
    yield t.join(h2)
    total = yield t.read(refreshes)
    t.require(total <= 1, f"cache refreshed {total} times")


def fenced_refresher(t, my_flag, other_flag, refreshes):
    yield t.write(my_flag, 1)
    yield t.add(my_flag, 0)  # fence: repairs the protocol under TSO
    other_busy = yield t.read(other_flag)
    if not other_busy:
        yield t.add(refreshes, 1)


@program("tutorial/single_flight_fenced")
def single_flight_fenced(t):
    flag_a = t.var("flag_a", 0)
    flag_b = t.var("flag_b", 0)
    refreshes = t.var("refreshes", 0)
    h1 = yield t.spawn(fenced_refresher, flag_a, flag_b, refreshes)
    h2 = yield t.spawn(fenced_refresher, flag_b, flag_a, refreshes)
    yield t.join(h1)
    yield t.join(h2)
    total = yield t.read(refreshes)
    t.require(total <= 1, f"cache refreshed {total} times")


class TestTutorialSection3:
    def test_sc_fuzzing_finds_nothing(self):
        report = fuzz(single_flight, max_executions=1000, seed=0, stop_on_first_crash=True)
        assert not report.found_bug
        assert report.unique_signatures > 1  # evidence, not silence


class TestTutorialSection4:
    def test_tso_fuzzing_finds_the_bug(self):
        report = fuzz(
            single_flight,
            max_executions=1000,
            seed=0,
            config=RffConfig(memory_model="tso"),
            stop_on_first_crash=True,
        )
        assert report.found_bug
        assert report.crashes[0].outcome == "assertion"

    def test_fence_repairs_the_protocol(self):
        report = fuzz(
            single_flight_fenced,
            max_executions=600,
            seed=0,
            config=RffConfig(memory_model="tso"),
            stop_on_first_crash=True,
        )
        assert not report.found_bug

    def test_crashing_trace_contains_flush_events(self):
        report = fuzz(
            single_flight,
            max_executions=1000,
            seed=1,
            config=RffConfig(memory_model="tso"),
            stop_on_first_crash=True,
        )
        from repro.runtime.tso import TsoExecutor
        from repro.schedulers import ReplayPolicy

        crash = report.crashes[0]
        replayed = TsoExecutor(
            single_flight, ReplayPolicy(list(crash.concrete_schedule))
        ).run()
        assert replayed.crashed
        assert any(e.kind == "flush" for e in replayed.trace)


class TestTutorialSection5:
    def test_persist_and_replay_under_tso(self, tmp_path):
        report = fuzz(
            single_flight,
            max_executions=1000,
            seed=2,
            config=RffConfig(memory_model="tso"),
            stop_on_first_crash=True,
        )
        paths = save_crashes(report, tmp_path)
        name, crash = load_crash(paths[0])
        assert name == "tutorial/single_flight"
        from repro.runtime.tso import TsoExecutor
        from repro.schedulers import ReplayPolicy

        replayed = TsoExecutor(single_flight, ReplayPolicy(list(crash.concrete_schedule))).run()
        assert replayed.outcome == crash.outcome


class TestTutorialSection6:
    def test_races_visible_on_sc_runs(self):
        trace = run_program(single_flight, PosPolicy(3)).trace
        report = find_races(trace)
        assert {"var:flag_a", "var:flag_b"} & report.racy_locations

    def test_lockset_flags_unprotected_flags(self):
        trace = run_program(single_flight, PosPolicy(3)).trace
        flagged = check_lock_discipline(trace).flagged_locations
        # The flags are written by one thread and read by another with no
        # lock at all; at least one side must be implicated.
        assert flagged & {"var:flag_a", "var:flag_b"}


class TestTutorialSection7:
    def test_mini_campaign_renders(self):
        campaign = Campaign(CampaignConfig(trials=2, budget=120)).run(
            paper_tools(), [single_flight]
        )
        table = appendix_b_table(campaign)
        assert "tutorial/single_flight" in table
        # SC-unreachable bug: every tool's cell must be '-' or Error.
        for tool in campaign.tools():
            cell = campaign.cell(tool, "tutorial/single_flight")
            assert cell.none_found or campaign.is_error(tool, "tutorial/single_flight")
