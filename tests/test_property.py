"""Property-based tests (hypothesis) on runtime and core invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.mutation import EventPool, ScheduleMutator
from repro.harness.stats import logrank, summarize
from repro.runtime import program, run_program
from repro.schedulers import PosPolicy, RandomWalkPolicy, ReplayPolicy

# ----------------------------------------------------------------------
# Random-program generation
# ----------------------------------------------------------------------
#: One thread action: read / write / atomic add / locked increment / yield.
_action = st.one_of(
    st.tuples(st.just("r"), st.integers(0, 2)),
    st.tuples(st.just("w"), st.integers(0, 2), st.integers(-3, 3)),
    st.tuples(st.just("add"), st.integers(0, 2)),
    st.tuples(st.just("crit"), st.integers(0, 2), st.integers(0, 1)),
    st.tuples(st.just("pause")),
)

_thread = st.lists(_action, min_size=1, max_size=6)
program_specs = st.lists(_thread, min_size=1, max_size=4)


def build_program(spec):
    """Materialise a random, deadlock-free concurrent program."""

    def body(t, variables, mutexes, actions):
        for action in actions:
            if action[0] == "r":
                yield t.read(variables[action[1]])
            elif action[0] == "w":
                yield t.write(variables[action[1]], action[2])
            elif action[0] == "add":
                yield t.add(variables[action[1]], 1)
            elif action[0] == "crit":
                mutex = mutexes[action[2]]
                yield t.lock(mutex)
                value = yield t.read(variables[action[1]])
                yield t.write(variables[action[1]], value + 1)
                yield t.unlock(mutex)
            else:
                yield t.pause()

    @program("prop/random")
    def main(t):
        variables = [t.var(f"v{i}", 0) for i in range(3)]
        mutexes = [t.mutex(f"m{i}") for i in range(2)]
        handles = []
        for actions in spec:
            handle = yield t.spawn(body, variables, mutexes, actions)
            handles.append(handle)
        for handle in handles:
            yield t.join(handle)

    return main


class TestRuntimeProperties:
    @given(spec=program_specs, seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_execution_terminates_cleanly(self, spec, seed):
        result = run_program(build_program(spec), RandomWalkPolicy(seed), max_steps=5000)
        assert not result.truncated
        assert result.outcome is None  # no assertions, no deadlock possible

    @given(spec=program_specs, seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_event_ids_dense_and_rf_sound(self, spec, seed):
        result = run_program(build_program(spec), RandomWalkPolicy(seed), max_steps=5000)
        events = result.trace.events
        assert [e.eid for e in events] == list(range(1, len(events) + 1))
        for event in events:
            if event.rf is None or event.rf == 0:
                continue
            writer = result.trace.event_by_id(event.rf)
            assert writer.eid < event.eid, "rf edge must point backwards"
            assert writer.location == event.location
            assert writer.is_write

    @given(spec=program_specs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_replay_reproduces_trace_exactly(self, spec, seed):
        prog = build_program(spec)
        original = run_program(prog, PosPolicy(seed), max_steps=5000)
        replayed = run_program(prog, ReplayPolicy(original.schedule), max_steps=5000)
        assert replayed.schedule == original.schedule
        assert [str(e) for e in replayed.trace] == [str(e) for e in original.trace]

    @given(spec=program_specs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_run(self, spec, seed):
        prog = build_program(spec)
        a = run_program(prog, PosPolicy(seed), max_steps=5000)
        b = run_program(prog, PosPolicy(seed), max_steps=5000)
        assert a.schedule == b.schedule

    @given(spec=program_specs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_locked_increments_never_lost(self, spec, seed):
        """Critical-section increments are atomic under every schedule."""
        # Lock discipline: every critical section on variable v must use the
        # same mutex (v % 2), otherwise this is the wronglock bug by design.
        expected = [0, 0, 0]
        for actions in spec:
            for action in actions:
                if action[0] == "crit":
                    expected[action[1]] += 1
        only_crit = [
            [("crit", a[1], a[1] % 2) for a in actions if a[0] == "crit"] for actions in spec
        ]
        prog = build_program(only_crit)
        result = run_program(prog, RandomWalkPolicy(seed), max_steps=5000)
        finals = {}
        for event in result.trace:
            if event.kind == "w" and event.location.startswith("var:"):
                finals[event.location] = event.value
        for index, total in enumerate(expected):
            if total:
                assert finals.get(f"var:v{index}", 0) == total


# ----------------------------------------------------------------------
# Abstract schedule / mutation properties
# ----------------------------------------------------------------------
_locations = st.sampled_from(["var:x", "var:y"])


@st.composite
def constraints(draw):
    location = draw(_locations)
    read = AbstractEvent("r", location, f"f:{draw(st.integers(1, 5))}")
    if draw(st.booleans()):
        write = None
    else:
        write = AbstractEvent("w", location, f"g:{draw(st.integers(1, 5))}")
    return Constraint(read, write, positive=draw(st.booleans()))


class TestConstraintProperties:
    @given(constraints())
    @settings(max_examples=100)
    def test_negation_is_involution(self, constraint):
        assert constraint.negated().negated() == constraint

    @given(constraints())
    @settings(max_examples=100)
    def test_negation_flips_sign_only(self, constraint):
        negated = constraint.negated()
        assert negated.read == constraint.read
        assert negated.write == constraint.write
        assert negated.positive != constraint.positive

    @given(st.lists(constraints(), max_size=6))
    @settings(max_examples=100)
    def test_schedule_set_semantics(self, items):
        alpha = AbstractSchedule(frozenset(items))
        assert len(alpha) == len(set(items))
        for constraint in items:
            assert len(alpha.insert(constraint)) == len(alpha)
            assert constraint not in alpha.delete(constraint).constraints

    @given(st.lists(constraints(), min_size=1, max_size=6), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_mutation_respects_cap(self, items, seed):
        alpha = AbstractSchedule(frozenset(items[:4]))
        pool = EventPool()
        # Seed the pool with the events appearing in the constraints.
        from repro.core.events import Event
        from repro.core.trace import Trace

        events = []
        eid = 1
        for constraint in items:
            if constraint.write is not None:
                events.append(
                    Event(eid, 0, "w", constraint.write.location, constraint.write.loc)
                )
                eid += 1
            events.append(
                Event(eid, 1, "r", constraint.read.location, constraint.read.loc, rf=0)
            )
            eid += 1
        pool.observe(Trace(events=events))
        mutator = ScheduleMutator(random.Random(seed), max_constraints=4)
        mutant = alpha
        for _ in range(20):
            mutant = mutator.mutate(mutant, pool)
            assert len(mutant) <= 4


# ----------------------------------------------------------------------
# Statistics properties
# ----------------------------------------------------------------------
_censored_samples = st.lists(
    st.one_of(st.none(), st.integers(1, 99)), min_size=1, max_size=20
)


class TestStatsProperties:
    @given(_censored_samples, _censored_samples)
    @settings(max_examples=100)
    def test_logrank_p_value_in_unit_interval(self, a, b):
        result = logrank(a, b, budget_a=100)
        assert 0.0 <= result.p_value <= 1.0
        assert result.statistic >= 0.0

    @given(_censored_samples)
    @settings(max_examples=100)
    def test_logrank_self_comparison_not_significant(self, a):
        result = logrank(a, a, budget_a=100)
        assert not result.significant(alpha=0.05)

    @given(_censored_samples)
    @settings(max_examples=100)
    def test_summarize_consistency(self, samples):
        cell = summarize(samples)
        assert cell.trials == len(samples)
        assert cell.found == sum(1 for s in samples if s is not None)
        if cell.found:
            observed = [s for s in samples if s is not None]
            assert min(observed) <= cell.mean <= max(observed)
        else:
            assert cell.render() == "-"
