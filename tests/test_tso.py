"""x86-TSO execution: store buffers, forwarding, fences, litmus tests."""

from __future__ import annotations

from repro.core.fuzzer import RffConfig, fuzz
from repro.runtime import program, run_program, run_program_tso
from repro.runtime.tso import TsoExecutor
from repro.schedulers import PosPolicy, RandomWalkPolicy


def _sb_left(t, x, y, res1):
    yield t.write(x, 1)
    value = yield t.read(y)
    yield t.write(res1, value)


def _sb_right(t, x, y, res2):
    yield t.write(y, 1)
    value = yield t.read(x)
    yield t.write(res2, value)


@program("t/sb_litmus", bug_kinds=("assertion",))
def sb_litmus(t):
    """The classic store-buffer litmus: r1 == r2 == 0 is TSO-only."""
    x = t.var("x", 0)
    y = t.var("y", 0)
    r1 = t.var("r1", -1)
    r2 = t.var("r2", -1)
    h1 = yield t.spawn(_sb_left, x, y, r1)
    h2 = yield t.spawn(_sb_right, x, y, r2)
    yield t.join(h1)
    yield t.join(h2)
    a = yield t.read(r1)
    b = yield t.read(r2)
    t.require(not (a == 0 and b == 0), "store-buffer reordering observed")


@program("t/sb_fenced")
def sb_fenced(t):
    """The same litmus with an atomic fence after each store: SC again."""

    def left(t, x, y, res1):
        yield t.write(x, 1)
        yield t.add(x, 0)  # atomic op = fence: drains the store buffer
        value = yield t.read(y)
        yield t.write(res1, value)

    def right(t, x, y, res2):
        yield t.write(y, 1)
        yield t.add(y, 0)
        value = yield t.read(x)
        yield t.write(res2, value)

    x = t.var("x", 0)
    y = t.var("y", 0)
    r1 = t.var("r1", -1)
    r2 = t.var("r2", -1)
    h1 = yield t.spawn(left, x, y, r1)
    h2 = yield t.spawn(right, x, y, r2)
    yield t.join(h1)
    yield t.join(h2)
    a = yield t.read(r1)
    b = yield t.read(r2)
    t.require(not (a == 0 and b == 0), "fenced litmus must stay SC")


class TestStoreBufferLitmus:
    def test_unreachable_under_sc(self):
        assert not any(run_program(sb_litmus, PosPolicy(s)).crashed for s in range(300))

    def test_reachable_under_tso(self):
        crashes = sum(run_program_tso(sb_litmus, PosPolicy(s)).crashed for s in range(300))
        assert crashes > 0

    def test_fences_restore_sc(self):
        assert not any(run_program_tso(sb_fenced, PosPolicy(s)).crashed for s in range(300))

    def test_rff_finds_tso_bug(self):
        config = RffConfig(memory_model="tso")
        report = fuzz(sb_litmus, max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_sc_config_never_finds_it(self):
        report = fuzz(sb_litmus, max_executions=200, seed=0, stop_on_first_crash=True)
        assert not report.found_bug


class TestStoreForwarding:
    def test_thread_sees_own_buffered_store(self):
        @program("t/forwarding")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 7)
            value = yield t.read(x)  # must forward from the buffer
            t.require(value == 7, f"forwarding broken: read {value}")

        for seed in range(20):
            assert not run_program_tso(prog, RandomWalkPolicy(seed)).crashed

    def test_other_thread_does_not_see_unflushed_store(self):
        # Verified structurally: a read in another thread can still observe
        # the initial value after the writer's write event executed.
        @program("t/visibility")
        def prog(t):
            def writer(t, x, done):
                yield t.write(x, 1)
                yield t.write(done, 1)

            x = t.var("x", 0)
            done = t.var("done", 0)
            yield t.spawn(writer, x, done)
            yield t.read(x)

        saw_stale = False
        for seed in range(200):
            result = run_program_tso(prog, PosPolicy(seed))
            main_read = next(e for e in result.trace if e.kind == "r" and e.tid == 0)
            writer_events = [e for e in result.trace if e.tid == 1 and e.kind == "w"]
            if not writer_events:
                continue
            write_eid = writer_events[0].eid
            if main_read.eid > write_eid and main_read.rf == 0:
                saw_stale = True
                break
        assert saw_stale, "no schedule showed a write buffered past a later read"


class TestBufferMechanics:
    def test_buffers_drain_before_completion(self):
        @program("t/drain")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)

        executor = TsoExecutor(prog, RandomWalkPolicy(0))
        result = executor.run()
        assert executor.pending_stores() == 0
        flushes = [e for e in result.trace if e.kind == "flush"]
        assert len(flushes) == 2

    def test_flush_preserves_fifo_order(self):
        @program("t/fifo_buf")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)

        for seed in range(10):
            result = run_program_tso(prog, RandomWalkPolicy(seed))
            flushes = [e for e in result.trace if e.kind == "flush"]
            assert [f.value for f in flushes] == [1, 2]

    def test_rf_edges_point_to_original_writes(self):
        @program("t/rf_tso")
        def prog(t):
            def reader(t, x, out):
                value = yield t.read(x)
                yield t.write(out, value)

            x = t.var("x", 0)
            out = t.var("out", -1)
            yield t.write(x, 5)
            yield t.add(x, 0)  # fence so the write is visible
            handle = yield t.spawn(reader, x, out)
            yield t.join(handle)

        result = run_program_tso(prog, RandomWalkPolicy(0))
        read = next(e for e in result.trace if e.kind == "r" and e.location == "var:x")
        # The fence rmw is the last visible writer here; the key property is
        # that rf targets are real program writes, never flush pseudo-events.
        writer = result.trace.event_by_id(read.rf)
        assert writer.kind in ("w", "rmw")
        for event in result.trace:
            if event.rf not in (None, 0):
                assert result.trace.event_by_id(event.rf).kind != "flush"

    def test_atomics_fence_the_buffer(self):
        @program("t/fence")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 3)
            old = yield t.add(x, 1)  # fences: buffered 3 must be visible
            t.require(old == 3, f"fence failed: rmw saw {old}")

        for seed in range(20):
            assert not run_program_tso(prog, RandomWalkPolicy(seed)).crashed

    def test_sc_programs_unchanged_under_tso(self, racefree):
        for seed in range(20):
            assert not run_program_tso(racefree, RandomWalkPolicy(seed)).crashed

    def test_racy_counter_still_crashes_under_tso(self, racy_counter):
        assert any(run_program_tso(racy_counter, RandomWalkPolicy(s)).crashed for s in range(300))
