"""x86-TSO execution: store buffers, forwarding, fences, litmus tests."""

from __future__ import annotations

from collections import deque

from repro.core.fuzzer import RffConfig, fuzz
from repro.runtime import program, run_program, run_program_tso
from repro.runtime.tso import FLUSH_KIND, TsoExecutor
from repro.schedulers import PosPolicy, RandomWalkPolicy
from repro.schedulers.base import SchedulerPolicy


class FlushAvoiderPolicy(SchedulerPolicy):
    """Adversary that delays store-buffer flushes as long as possible:
    always runs a program event when one is enabled, flushing only when
    flush steps are the sole remaining candidates."""

    def choose(self, candidates, execution):
        program_steps = [c for c in candidates if c.kind != FLUSH_KIND]
        return min(program_steps or candidates, key=lambda c: c.tid)


class EagerFlusherPolicy(SchedulerPolicy):
    """Adversary at the other extreme: flushes every buffered store at the
    first opportunity, making TSO behave sequentially consistent."""

    def choose(self, candidates, execution):
        flushes = [c for c in candidates if c.kind == FLUSH_KIND]
        return min(flushes or candidates, key=lambda c: c.tid)


class ScriptedTidPolicy(SchedulerPolicy):
    """Follow an explicit tid script (skipping disabled entries), then
    drain flushes, then lowest tid — deterministic worst-case schedules."""

    def __init__(self, script):
        self._script = deque(script)

    def choose(self, candidates, execution):
        while self._script:
            tid = self._script.popleft()
            for candidate in candidates:
                if candidate.tid == tid:
                    return candidate
        return EagerFlusherPolicy().choose(candidates, execution)


def _sb_left(t, x, y, res1):
    yield t.write(x, 1)
    value = yield t.read(y)
    yield t.write(res1, value)


def _sb_right(t, x, y, res2):
    yield t.write(y, 1)
    value = yield t.read(x)
    yield t.write(res2, value)


@program("t/sb_litmus", bug_kinds=("assertion",))
def sb_litmus(t):
    """The classic store-buffer litmus: r1 == r2 == 0 is TSO-only."""
    x = t.var("x", 0)
    y = t.var("y", 0)
    r1 = t.var("r1", -1)
    r2 = t.var("r2", -1)
    h1 = yield t.spawn(_sb_left, x, y, r1)
    h2 = yield t.spawn(_sb_right, x, y, r2)
    yield t.join(h1)
    yield t.join(h2)
    a = yield t.read(r1)
    b = yield t.read(r2)
    t.require(not (a == 0 and b == 0), "store-buffer reordering observed")


@program("t/sb_fenced")
def sb_fenced(t):
    """The same litmus with an atomic fence after each store: SC again."""

    def left(t, x, y, res1):
        yield t.write(x, 1)
        yield t.add(x, 0)  # atomic op = fence: drains the store buffer
        value = yield t.read(y)
        yield t.write(res1, value)

    def right(t, x, y, res2):
        yield t.write(y, 1)
        yield t.add(y, 0)
        value = yield t.read(x)
        yield t.write(res2, value)

    x = t.var("x", 0)
    y = t.var("y", 0)
    r1 = t.var("r1", -1)
    r2 = t.var("r2", -1)
    h1 = yield t.spawn(left, x, y, r1)
    h2 = yield t.spawn(right, x, y, r2)
    yield t.join(h1)
    yield t.join(h2)
    a = yield t.read(r1)
    b = yield t.read(r2)
    t.require(not (a == 0 and b == 0), "fenced litmus must stay SC")


class TestStoreBufferLitmus:
    def test_unreachable_under_sc(self):
        assert not any(run_program(sb_litmus, PosPolicy(s)).crashed for s in range(300))

    def test_reachable_under_tso(self):
        crashes = sum(run_program_tso(sb_litmus, PosPolicy(s)).crashed for s in range(300))
        assert crashes > 0

    def test_fences_restore_sc(self):
        assert not any(run_program_tso(sb_fenced, PosPolicy(s)).crashed for s in range(300))

    def test_rff_finds_tso_bug(self):
        config = RffConfig(memory_model="tso")
        report = fuzz(sb_litmus, max_executions=300, seed=0, config=config,
                      stop_on_first_crash=True)
        assert report.found_bug

    def test_sc_config_never_finds_it(self):
        report = fuzz(sb_litmus, max_executions=200, seed=0, stop_on_first_crash=True)
        assert not report.found_bug


class TestStoreForwarding:
    def test_thread_sees_own_buffered_store(self):
        @program("t/forwarding")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 7)
            value = yield t.read(x)  # must forward from the buffer
            t.require(value == 7, f"forwarding broken: read {value}")

        for seed in range(20):
            assert not run_program_tso(prog, RandomWalkPolicy(seed)).crashed

    def test_other_thread_does_not_see_unflushed_store(self):
        # Verified structurally: a read in another thread can still observe
        # the initial value after the writer's write event executed.
        @program("t/visibility")
        def prog(t):
            def writer(t, x, done):
                yield t.write(x, 1)
                yield t.write(done, 1)

            x = t.var("x", 0)
            done = t.var("done", 0)
            yield t.spawn(writer, x, done)
            yield t.read(x)

        saw_stale = False
        for seed in range(200):
            result = run_program_tso(prog, PosPolicy(seed))
            main_read = next(e for e in result.trace if e.kind == "r" and e.tid == 0)
            writer_events = [e for e in result.trace if e.tid == 1 and e.kind == "w"]
            if not writer_events:
                continue
            write_eid = writer_events[0].eid
            if main_read.eid > write_eid and main_read.rf == 0:
                saw_stale = True
                break
        assert saw_stale, "no schedule showed a write buffered past a later read"


class TestBufferMechanics:
    def test_buffers_drain_before_completion(self):
        @program("t/drain")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)

        executor = TsoExecutor(prog, RandomWalkPolicy(0))
        result = executor.run()
        assert executor.pending_stores() == 0
        flushes = [e for e in result.trace if e.kind == "flush"]
        assert len(flushes) == 2

    def test_flush_preserves_fifo_order(self):
        @program("t/fifo_buf")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 1)
            yield t.write(x, 2)

        for seed in range(10):
            result = run_program_tso(prog, RandomWalkPolicy(seed))
            flushes = [e for e in result.trace if e.kind == "flush"]
            assert [f.value for f in flushes] == [1, 2]

    def test_rf_edges_point_to_original_writes(self):
        @program("t/rf_tso")
        def prog(t):
            def reader(t, x, out):
                value = yield t.read(x)
                yield t.write(out, value)

            x = t.var("x", 0)
            out = t.var("out", -1)
            yield t.write(x, 5)
            yield t.add(x, 0)  # fence so the write is visible
            handle = yield t.spawn(reader, x, out)
            yield t.join(handle)

        result = run_program_tso(prog, RandomWalkPolicy(0))
        read = next(e for e in result.trace if e.kind == "r" and e.location == "var:x")
        # The fence rmw is the last visible writer here; the key property is
        # that rf targets are real program writes, never flush pseudo-events.
        writer = result.trace.event_by_id(read.rf)
        assert writer.kind in ("w", "rmw")
        for event in result.trace:
            if event.rf not in (None, 0):
                assert result.trace.event_by_id(event.rf).kind != "flush"

    def test_atomics_fence_the_buffer(self):
        @program("t/fence")
        def prog(t):
            x = t.var("x", 0)
            yield t.write(x, 3)
            old = yield t.add(x, 1)  # fences: buffered 3 must be visible
            t.require(old == 3, f"fence failed: rmw saw {old}")

        for seed in range(20):
            assert not run_program_tso(prog, RandomWalkPolicy(seed)).crashed

    def test_sc_programs_unchanged_under_tso(self, racefree):
        for seed in range(20):
            assert not run_program_tso(racefree, RandomWalkPolicy(seed)).crashed

    def test_racy_counter_still_crashes_under_tso(self, racy_counter):
        assert any(run_program_tso(racy_counter, RandomWalkPolicy(s)).crashed for s in range(300))


class TestAdversarialDraining:
    """Store-buffer draining under adversarial scheduler policies: the
    executor must stay correct whether a policy starves or spams flushes."""

    def test_scripted_interleaving_forces_sb_reordering(self):
        # Both stores buffered, both loads served from (stale) memory, then
        # everything flushed before main reads the results: the TSO-only
        # r1 == r2 == 0 outcome, forced deterministically.
        script = [0, 0, 1, 2, 1, 2, 1, 2]
        first = run_program_tso(sb_litmus, ScriptedTidPolicy(script))
        assert first.crashed and first.outcome == "assertion"
        assert "store-buffer reordering observed" in first.trace.failure
        second = run_program_tso(sb_litmus, ScriptedTidPolicy(script))
        assert second.schedule == first.schedule

    def test_flush_avoider_still_drains_buffers(self):
        @program("t/drain_adv")
        def prog(t):
            def writer(t, u, v):
                yield t.write(u, 1)
                yield t.write(v, 2)

            x = t.var("x", 0)
            y = t.var("y", 0)
            h1 = yield t.spawn(writer, x, y)
            h2 = yield t.spawn(writer, y, x)
            yield t.join(h1)
            yield t.join(h2)

        class RecordingAvoider(FlushAvoiderPolicy):
            peak = 0

            def notify(self, event, execution):
                self.peak = max(self.peak, execution.pending_stores())

        policy = RecordingAvoider()
        executor = TsoExecutor(prog, policy)
        result = executor.run()
        # The adversary delayed every flush until nothing else was enabled:
        # all four stores were buffered simultaneously...
        assert policy.peak == 4
        # ...yet the execution completed with fully drained buffers.
        assert not result.truncated and not result.crashed
        assert executor.pending_stores() == 0
        flushes = [e for e in result.trace if e.kind == FLUSH_KIND]
        writes = [e for e in result.trace if e.kind == "w"]
        assert len(flushes) == 4
        assert min(f.eid for f in flushes) > max(w.eid for w in writes)
        # FIFO draining per thread: flush order follows program write order.
        for tid in (1, 2):
            per_thread = [f.aux for f in flushes if f.tid == tid]
            assert per_thread == sorted(per_thread)

    def test_eager_flusher_restores_sequential_consistency(self):
        result = run_program_tso(sb_litmus, EagerFlusherPolicy())
        assert not result.crashed
        # Every store became visible immediately after it was buffered.
        for flush in (e for e in result.trace if e.kind == FLUSH_KIND):
            assert flush.eid == flush.aux + 1

    def test_fences_hold_under_flush_starvation(self):
        result = run_program_tso(sb_fenced, FlushAvoiderPolicy())
        assert not result.crashed and not result.truncated

    def test_flush_avoider_leaves_stale_reads_visible(self):
        # Under maximal flush delay main's reads of r1/r2 see the initial
        # -1 values (the workers' stores are still buffered at join time):
        # unusual, but a legal TSO execution the runtime must model.
        result = run_program_tso(sb_litmus, FlushAvoiderPolicy())
        assert not result.crashed
        main_reads = [e for e in result.trace if e.tid == 0 and e.kind == "r"]
        assert main_reads and all(e.rf == 0 and e.value == -1 for e in main_reads)
