"""Fault-tolerant parallel campaign engine: determinism, faults, resume.

The engine's contract is that parallelism, worker failure and
checkpoint/resume are all invisible in the final result: a
``ParallelCampaign`` — crashed workers, killed workers, hung workers,
degraded pools, resumed checkpoints and all — produces a
``CampaignResult`` bit-identical (full dataclass equality) to the serial
``Campaign`` over the same grid.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.harness import faults
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.parallel import (
    CampaignError,
    ParallelCampaign,
    _TOOL_FACTORIES,
    register_tool,
)
from repro.harness.persist import read_jsonl
from repro.harness.telemetry import TelemetryAggregator
from repro.harness.tools import (
    PerExecutionPolicyTool,
    PeriodTool,
    RffTool,
    pos_tool,
)
from repro.schedulers.random_walk import RandomWalkPolicy

TOOLS = ["RFF", "POS", "PERIOD"]
PROGRAMS = ["CS/account", "Splash2/lu"]
CONFIG = CampaignConfig(trials=2, budget=120, base_seed=7)


def _serial_result():
    return Campaign(CONFIG).run(
        [RffTool(), pos_tool(), PeriodTool()], [bench.get(p) for p in PROGRAMS]
    )


@pytest.fixture(scope="module")
def serial():
    return _serial_result()


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Arm the crash_once hook against one cell; returns the re-arm helper."""

    def arm(tool: str, program: str, trial: int, mode: str = "crash", state: str = "fired"):
        monkeypatch.setenv(faults.ENV_TARGET, faults.cell_key(tool, program, trial))
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / state))
        monkeypatch.setenv(faults.ENV_MODE, mode)
        monkeypatch.setenv(faults.ENV_HANG_SECONDS, "3600")

    return arm


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self, serial):
        parallel = ParallelCampaign(CONFIG, processes=2).run(TOOLS, PROGRAMS)
        assert parallel == serial

    def test_serial_engine_mode_bit_identical(self, serial):
        assert ParallelCampaign(CONFIG, processes=0).run(TOOLS, PROGRAMS) == serial

    def test_spawn_start_method_bit_identical(self, serial):
        parallel = ParallelCampaign(CONFIG, processes=2, start_method="spawn").run(
            TOOLS, PROGRAMS
        )
        assert parallel == serial

    def test_unknown_tool_rejected(self):
        with pytest.raises(KeyError):
            ParallelCampaign(CONFIG).run(["NotATool"], PROGRAMS)


class TestSanitizerDeterminism:
    SANITIZED = CampaignConfig(
        trials=2, budget=120, base_seed=7, sanitizers=("race", "lockset", "lockorder")
    )

    def _serial(self):
        tools = [RffTool(), pos_tool(), PeriodTool()]
        return Campaign(self.SANITIZED).run(tools, [bench.get(p) for p in PROGRAMS])

    def test_parallel_reports_bit_identical_to_serial(self):
        serial = self._serial()
        parallel = ParallelCampaign(self.SANITIZED, processes=2).run(TOOLS, PROGRAMS)
        assert parallel == serial
        # The equality above covers sanitizer_reports (dataclass field), but
        # assert the payload is actually exercised: at least one cell found
        # a discipline violation on the racy account benchmark.
        found = [
            report
            for (_, program), trials in serial.results.items()
            for result in trials
            for report in result.sanitizer_reports
            if program == "CS/account"
        ]
        assert found

    def test_telemetry_carries_sanitizer_reports(self):
        telemetry = TelemetryAggregator()
        ParallelCampaign(self.SANITIZED, processes=0, telemetry=telemetry).run(
            TOOLS, PROGRAMS
        )
        records = telemetry.of_type("sanitizer_report")
        assert records
        assert {r["sanitizer"] for r in records} <= {"race", "lockset", "lockorder"}
        assert telemetry.sanitizer_report_count == len(records)


class TestFaultTolerance:
    def test_worker_crash_retried_bit_identical(self, serial, fault_env):
        """A hard-killed worker (os._exit, the SIGKILL model) costs one
        attempt; the retried campaign result is bit-identical."""
        fault_env("RFF", "CS/account", 1, mode="crash")
        telemetry = TelemetryAggregator()
        parallel = ParallelCampaign(
            CONFIG, processes=2, telemetry=telemetry, fault_hook=faults.CRASH_ONCE_REF
        ).run(TOOLS, PROGRAMS)
        assert parallel == serial
        assert telemetry.retries == 1
        assert telemetry.worker_restarts == 1
        crash_exits = [r for r in telemetry.of_type("worker_exit") if r["kind"] == "crash"]
        assert crash_exits and crash_exits[0]["exitcode"] == faults.CRASH_EXIT_CODE

    def test_hung_worker_timed_out_and_retried(self, serial, fault_env):
        fault_env("POS", "Splash2/lu", 0, mode="hang")
        telemetry = TelemetryAggregator()
        parallel = ParallelCampaign(
            CONFIG,
            processes=2,
            cell_timeout=2.0,
            telemetry=telemetry,
            fault_hook=faults.CRASH_ONCE_REF,
        ).run(TOOLS, PROGRAMS)
        assert parallel == serial
        timeouts = [r for r in telemetry.of_type("worker_exit") if r["kind"] == "timeout"]
        assert len(timeouts) == 1
        assert telemetry.retries == 1

    def test_exhausted_retries_isolated_as_structured_error(self, fault_env, tmp_path):
        """With zero retries a crashing cell becomes an error result and the
        rest of the campaign completes untouched."""
        fault_env("RFF", "CS/account", 0, mode="crash")
        telemetry = TelemetryAggregator()
        parallel = ParallelCampaign(
            CONFIG,
            processes=2,
            max_retries=0,
            telemetry=telemetry,
            fault_hook=faults.CRASH_ONCE_REF,
        ).run(TOOLS, PROGRAMS)
        failed = parallel.trials("RFF", "CS/account")[0]
        assert failed.error is not None and "crash" in failed.error
        assert not failed.found and failed.executions == 0
        assert telemetry.failed_cells == 1
        # every other cell ran normally
        assert parallel.trials("POS", "CS/account")[0].error is None
        assert parallel.trials("RFF", "Splash2/lu")[0].error is None

    def test_isolate_failures_off_raises(self, fault_env):
        fault_env("RFF", "CS/account", 0, mode="crash")
        campaign = ParallelCampaign(
            CONFIG,
            processes=2,
            max_retries=0,
            isolate_failures=False,
            fault_hook=faults.CRASH_ONCE_REF,
        )
        with pytest.raises(CampaignError, match="crash"):
            campaign.run(TOOLS, PROGRAMS)

    def test_dead_pool_degrades_to_serial(self, serial, monkeypatch):
        """When worker processes cannot start at all, the engine runs the
        cells in-process instead of failing the campaign."""
        monkeypatch.setattr(
            ParallelCampaign, "_launch", lambda self, ctx, spec, attempt, sink: None
        )
        telemetry = TelemetryAggregator()
        parallel = ParallelCampaign(CONFIG, processes=2, telemetry=telemetry).run(
            TOOLS, PROGRAMS
        )
        assert parallel == serial
        assert telemetry.of_type("pool_degraded")


class TestCheckpointResume:
    def test_resume_from_truncated_checkpoint_bit_identical(self, serial, tmp_path):
        """The acceptance scenario: a campaign killed mid-run resumes from
        its checkpoint and yields a bit-identical result."""
        checkpoint = tmp_path / "campaign.jsonl"
        first = ParallelCampaign(CONFIG, processes=2, checkpoint=checkpoint).run(
            TOOLS, PROGRAMS
        )
        assert first == serial
        # Simulate a SIGKILL mid-campaign: keep the header and the first
        # three completed cells, tear the last line in half.
        lines = checkpoint.read_text().splitlines()
        assert len(lines) > 5
        checkpoint.write_text("\n".join(lines[:4]) + "\n" + lines[4][: len(lines[4]) // 2])
        telemetry = TelemetryAggregator()
        resumed = ParallelCampaign(
            CONFIG, processes=2, checkpoint=checkpoint, telemetry=telemetry
        ).run(TOOLS, PROGRAMS)
        assert resumed == serial
        start = telemetry.of_type("campaign_start")[0]
        assert start["resumed_cells"] == 3
        # only the missing cells were executed again
        assert telemetry.completed_cells == start["total_cells"] - 3

    def test_resume_after_injected_crash_bit_identical(self, serial, fault_env, tmp_path):
        """Worker killed on the first attempt *and* resumed from checkpoint:
        both fault paths compose and the result is still bit-identical."""
        checkpoint = tmp_path / "faulted.jsonl"
        fault_env("POS", "CS/account", 1, mode="crash")
        first = ParallelCampaign(
            CONFIG,
            processes=2,
            checkpoint=checkpoint,
            fault_hook=faults.CRASH_ONCE_REF,
        ).run(TOOLS, PROGRAMS)
        assert first == serial
        resumed = ParallelCampaign(CONFIG, processes=2, checkpoint=checkpoint).run(
            TOOLS, PROGRAMS
        )
        assert resumed == serial

    def test_completed_checkpoint_runs_nothing(self, serial, tmp_path):
        checkpoint = tmp_path / "done.jsonl"
        ParallelCampaign(CONFIG, processes=2, checkpoint=checkpoint).run(TOOLS, PROGRAMS)
        telemetry = TelemetryAggregator()
        resumed = ParallelCampaign(
            CONFIG, processes=2, checkpoint=checkpoint, telemetry=telemetry
        ).run(TOOLS, PROGRAMS)
        assert resumed == serial
        assert telemetry.completed_cells == 0

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        checkpoint = tmp_path / "other.jsonl"
        ParallelCampaign(CONFIG, processes=2, checkpoint=checkpoint).run(TOOLS, PROGRAMS)
        other = CampaignConfig(trials=2, budget=120, base_seed=8)
        with pytest.raises(CampaignError, match="different campaign"):
            ParallelCampaign(other, processes=2, checkpoint=checkpoint).run(TOOLS, PROGRAMS)

    def test_checkpoint_lines_are_valid_results(self, tmp_path):
        checkpoint = tmp_path / "records.jsonl"
        ParallelCampaign(CONFIG, processes=2, checkpoint=checkpoint).run(TOOLS, PROGRAMS)
        records = read_jsonl(checkpoint)
        assert records[0]["checkpoint_version"] == 1
        assert records[0]["base_seed"] == CONFIG.base_seed
        cells = [r["result"] for r in records[1:]]
        assert all({"tool", "program", "trial", "found"} <= r.keys() for r in cells)


# Module-level factory: a spawn-started worker re-imports it by reference.
def custom_random_factory() -> PerExecutionPolicyTool:
    return PerExecutionPolicyTool("CustomRandom", lambda s: RandomWalkPolicy(seed=s))


class TestSpawnSafeRegistry:
    def test_custom_tool_under_spawn(self):
        """The old registry silently fell back to default tools in spawned
        workers; factory references in the cell spec fix that."""
        register_tool("CustomRandom", custom_random_factory)
        try:
            config = CampaignConfig(trials=2, budget=60, base_seed=11)
            serial = Campaign(config).run(
                [custom_random_factory()], [bench.get("CS/account")]
            )
            parallel = ParallelCampaign(config, processes=2, start_method="spawn").run(
                ["CustomRandom"], ["CS/account"]
            )
            assert parallel == serial
            assert parallel.trials("CustomRandom", "CS/account")[0].tool == "CustomRandom"
        finally:
            _TOOL_FACTORIES.pop("CustomRandom", None)

    def test_non_importable_factory_rejected_eagerly(self):
        with pytest.raises(ValueError, match="importable"):
            register_tool("bad", lambda: PerExecutionPolicyTool("bad", RandomWalkPolicy))

    def test_local_function_factory_rejected(self):
        def local_factory():
            return PerExecutionPolicyTool("local", RandomWalkPolicy)

        with pytest.raises(ValueError):
            register_tool("local", local_factory)
