"""Statistics: summary cells, Mann-Whitney U, censored log-rank."""

from __future__ import annotations

import pytest

from repro.harness.stats import (
    logrank,
    logrank_direction,
    mann_whitney_u,
    summarize,
)


class TestSummarize:
    def test_all_found(self):
        cell = summarize([10, 12, 14])
        assert cell.mean == 12
        assert cell.found == 3 and cell.all_found
        assert cell.render() == "12 ± 2"

    def test_some_missed_gets_star(self):
        cell = summarize([10, None, 14])
        assert cell.render().endswith("*")
        assert cell.found == 2

    def test_none_found_renders_dash(self):
        assert summarize([None, None]).render() == "-"

    def test_single_sample_zero_std(self):
        cell = summarize([5])
        assert cell.std == 0
        assert cell.render() == "5 ± 0"


class TestMannWhitney:
    def test_separated_samples_significant(self):
        fast = [44, 45, 46, 46, 47] * 4
        slow = [30, 31, 30, 29, 31] * 4
        assert mann_whitney_u(fast, slow) < 0.001

    def test_identical_samples_not_significant(self):
        same = [5, 5, 5, 5]
        assert mann_whitney_u(same, same) == pytest.approx(1.0)

    def test_empty_inputs_degenerate(self):
        assert mann_whitney_u([], [1, 2]) == 1.0

    def test_symmetric(self):
        a, b = [1, 2, 3, 4, 8, 9], [5, 6, 7, 10, 11, 12]
        assert mann_whitney_u(a, b) == pytest.approx(mann_whitney_u(b, a))


class TestLogRank:
    def test_clearly_faster_group_significant(self):
        fast = [2, 3, 2, 4, 3, 2, 3, 4, 2, 3]
        slow = [200, 300, 250, 400, 350, 500, 450, 300, 250, 280]
        result = logrank(fast, slow, budget_a=1000)
        assert result.significant()

    def test_identical_groups_not_significant(self):
        times = [5, 10, 15, 20]
        result = logrank(times, times, budget_a=100)
        assert not result.significant()
        assert result.p_value > 0.9

    def test_censoring_counts_against_group(self):
        finds = [3, 4, 5, 3, 4, 5, 3, 4]
        never = [None] * 8
        result = logrank(finds, never, budget_a=1000)
        assert result.significant()

    def test_all_censored_degenerate(self):
        result = logrank([None, None], [None, None], budget_a=100)
        assert result.p_value == 1.0

    def test_p_value_in_unit_interval(self):
        result = logrank([1, 5, 9, None], [2, 6, None, None], budget_a=50)
        assert 0.0 <= result.p_value <= 1.0

    def test_direction_prefers_faster_group(self):
        assert logrank_direction([1, 2, 3], [100, 200, 300]) == -1
        assert logrank_direction([100, 200, 300], [1, 2, 3]) == 1

    def test_direction_tie(self):
        assert logrank_direction([5, 5], [5, 5]) == 0

    def test_direction_penalises_censoring(self):
        assert logrank_direction([5, 5, 5], [5, None, None]) == -1
