"""Synchronization semantics: mutexes, condvars, semaphores, barriers,
deadlock detection and the memory-safety oracles."""

from __future__ import annotations

from collections import deque

import pytest

from repro.runtime import program, run_program
from repro.runtime.errors import SchedulerError
from repro.schedulers import RandomWalkPolicy, ReplayPolicy
from repro.schedulers.base import SchedulerPolicy


class ScriptedPolicy(SchedulerPolicy):
    """Follow an explicit thread-id script, then fall back to lowest tid.

    A deterministic adversarial scheduler: the script encodes the exact
    worst-case interleaving a test wants to force.  Script entries naming a
    thread that is not currently enabled are skipped."""

    def __init__(self, script):
        self._script = deque(script)

    def choose(self, candidates, execution):
        while self._script:
            tid = self._script.popleft()
            for candidate in candidates:
                if candidate.tid == tid:
                    return candidate
        return min(candidates, key=lambda c: c.tid)


def all_schedules_pass(prog, seeds=30, **kwargs):
    return all(not run_program(prog, RandomWalkPolicy(s), **kwargs).crashed for s in range(seeds))


def some_schedule_crashes(prog, seeds=300, **kwargs):
    return any(run_program(prog, RandomWalkPolicy(s), **kwargs).crashed for s in range(seeds))


class TestMutex:
    def test_mutual_exclusion_holds(self, racefree):
        assert all_schedules_pass(racefree, seeds=50)

    def test_self_deadlock_on_relock(self):
        @program("t/selflock", bug_kinds=("deadlock",))
        def prog(t):
            m = t.mutex("m")
            yield t.lock(m)
            yield t.lock(m)

        result = run_program(prog, RandomWalkPolicy(0))
        assert result.outcome == "deadlock"

    def test_trylock_fails_without_blocking(self):
        @program("t/trylock")
        def prog(t):
            def holder(t, m, flag):
                yield t.lock(m)
                yield t.write(flag, 1)
                yield t.pause()
                yield t.unlock(m)

            m = t.mutex("m")
            flag = t.var("flag", 0)
            handle = yield t.spawn(holder, m, flag)
            while True:
                held = yield t.read(flag)
                if held:
                    break
            got = yield t.trylock(m)
            t.require(not got, "trylock succeeded on a held mutex")
            yield t.join(handle)

        result = run_program(prog, RandomWalkPolicy(3), max_steps=500)
        assert not result.crashed and not result.truncated


class TestCondVar:
    def test_wait_signal_handshake(self):
        @program("t/handshake")
        def prog(t):
            def consumer(t, m, c, ready, data):
                yield t.lock(m)
                is_ready = yield t.read(ready)
                if not is_ready:
                    yield t.wait(c, m)
                value = yield t.read(data)
                yield t.unlock(m)
                t.require(value == 42, f"consumed {value}")

            def producer(t, m, c, ready, data):
                yield t.lock(m)
                yield t.write(data, 42)
                yield t.write(ready, 1)
                yield t.signal(c)
                yield t.unlock(m)

            m = t.mutex("m")
            c = t.cond("c")
            ready = t.var("ready", 0)
            data = t.var("data", 0)
            h1 = yield t.spawn(consumer, m, c, ready, data)
            h2 = yield t.spawn(producer, m, c, ready, data)
            yield t.join(h1)
            yield t.join(h2)

        # Correctly locked handshake: no schedule crashes or deadlocks.
        assert all_schedules_pass(prog, seeds=60)

    def test_lost_wakeup_deadlocks(self):
        @program("t/lostwakeup", bug_kinds=("deadlock",))
        def prog(t):
            def waiter(t, m, c, ready):
                yield t.lock(m)
                is_ready = yield t.read(ready)
                if not is_ready:
                    yield t.wait(c, m)
                yield t.unlock(m)

            def signaller(t, c, ready):
                # Signals without the mutex: the wakeup can be lost.
                yield t.write(ready, 1)
                yield t.signal(c)

            m = t.mutex("m")
            c = t.cond("c")
            ready = t.var("ready", 0)
            h1 = yield t.spawn(waiter, m, c, ready)
            h2 = yield t.spawn(signaller, c, ready)
            yield t.join(h1)
            yield t.join(h2)

        outcomes = {run_program(prog, RandomWalkPolicy(s)).outcome for s in range(200)}
        assert "deadlock" in outcomes  # the lost wakeup hangs the waiter
        assert None in outcomes  # and other schedules complete fine

    def test_broadcast_wakes_all_waiters(self):
        @program("t/broadcast")
        def prog(t):
            def waiter(t, m, c, go):
                yield t.lock(m)
                ready = yield t.read(go)
                if not ready:
                    yield t.wait(c, m)
                yield t.unlock(m)

            def waker(t, m, c, go):
                yield t.lock(m)
                yield t.write(go, 1)
                yield t.broadcast(c)
                yield t.unlock(m)

            m = t.mutex("m")
            c = t.cond("c")
            go = t.var("go", 0)
            handles = []
            for _ in range(3):
                handle = yield t.spawn(waiter, m, c, go)
                handles.append(handle)
            w = yield t.spawn(waker, m, c, go)
            for handle in [*handles, w]:
                yield t.join(handle)

        assert all_schedules_pass(prog, seeds=60)

    def test_signal_wakes_waiters_in_fifo_order(self):
        from repro.schedulers.base import SchedulerPolicy

        class PreferLowestTid(SchedulerPolicy):
            """Deterministic: always run the lowest enabled thread id."""

            def choose(self, candidates, execution):
                return min(candidates, key=lambda c: c.tid)

        @program("t/fifo")
        def prog(t):
            def waiter(t, m, c, order, me):
                yield t.lock(m)
                yield t.wait(c, m)
                position = yield t.read(order)
                yield t.write(order, position * 10 + me)
                yield t.unlock(m)

            def waker(t, m, c, order):
                yield t.signal(c)
                yield t.signal(c)
                sequence = yield t.read(order)
                t.require(sequence == 12, f"wakeup order {sequence} not FIFO")

            m = t.mutex("m")
            c = t.cond("c")
            order = t.var("order", 0)
            # Lowest-tid-first scheduling runs waiter 1 (tid 1) into its wait
            # first, then waiter 2 (tid 2), and only then the waker (tid 3):
            # FIFO wakeup must then record 1 before 2.
            h1 = yield t.spawn(waiter, m, c, order, 1)
            h2 = yield t.spawn(waiter, m, c, order, 2)
            h3 = yield t.spawn(waker, m, c, order)
            yield t.join(h1)
            yield t.join(h2)
            yield t.join(h3)

        result = run_program(prog, PreferLowestTid())
        assert not result.crashed, result.trace.failure


class TestSemaphore:
    def test_acquire_blocks_at_zero(self):
        @program("t/sem", bug_kinds=("deadlock",))
        def prog(t):
            s = t.sem("s", 0)
            yield t.acquire(s)

        assert run_program(prog, RandomWalkPolicy(0)).outcome == "deadlock"

    def test_release_enables_acquire(self):
        @program("t/semok")
        def prog(t):
            def releaser(t, s):
                yield t.release(s)

            s = t.sem("s", 0)
            yield t.spawn(releaser, s)
            yield t.acquire(s)

        assert all_schedules_pass(prog, seeds=20)

    def test_counting_semantics(self):
        @program("t/semcount")
        def prog(t):
            def worker(t, s, active, peak):
                yield t.acquire(s)
                now = yield t.add(active, 1)
                top = yield t.read(peak)
                if now + 1 > top:
                    yield t.write(peak, now + 1)
                yield t.add(active, -1)
                yield t.release(s)

            s = t.sem("s", 2)
            active = t.var("active", 0)
            peak = t.var("peak", 0)
            handles = []
            for _ in range(4):
                handle = yield t.spawn(worker, s, active, peak)
                handles.append(handle)
            for handle in handles:
                yield t.join(handle)
            top = yield t.read(peak)
            t.require(top <= 2, f"semaphore admitted {top} workers")

        assert all_schedules_pass(prog, seeds=60)


class TestBarrier:
    def test_barrier_releases_all_parties(self):
        @program("t/barrier")
        def prog(t):
            def worker(t, b, before, after):
                yield t.add(before, 1)
                yield t.arrive(b)
                count = yield t.read(before)
                t.require(count == 3, f"passed barrier with only {count} arrivals")
                yield t.add(after, 1)

            b = t.barrier("b", 3)
            before = t.var("before", 0)
            after = t.var("after", 0)
            handles = []
            for _ in range(3):
                handle = yield t.spawn(worker, b, before, after)
                handles.append(handle)
            for handle in handles:
                yield t.join(handle)
            done = yield t.read(after)
            t.require(done == 3)

        assert all_schedules_pass(prog, seeds=60)

    def test_underfull_barrier_deadlocks(self):
        @program("t/barrier_dl", bug_kinds=("deadlock",))
        def prog(t):
            b = t.barrier("b", 2)
            yield t.arrive(b)

        assert run_program(prog, RandomWalkPolicy(0)).outcome == "deadlock"


class TestDeadlockDetection:
    def test_abba_deadlocks_under_some_schedule(self, abba_deadlock):
        assert some_schedule_crashes(abba_deadlock, seeds=100)

    def test_abba_completes_under_other_schedules(self, abba_deadlock):
        outcomes = [run_program(abba_deadlock, RandomWalkPolicy(s)).outcome for s in range(100)]
        assert None in outcomes

    def test_deadlock_outcome_kind(self, abba_deadlock):
        for seed in range(100):
            result = run_program(abba_deadlock, RandomWalkPolicy(seed))
            if result.crashed:
                assert result.outcome == "deadlock"
                return
        raise AssertionError("expected at least one deadlock in 100 schedules")


class TestAdversarialDeadlock:
    """Deadlock detection under adversarial (worst-case) scheduler policies —
    not just sampled random walks."""

    def test_scripted_schedule_forces_abba_deadlock(self, abba_deadlock):
        # main spawns both workers, then each worker takes its first lock:
        # T1 holds A wanting B, T2 holds B wanting A, main blocked on join.
        result = run_program(abba_deadlock, ScriptedPolicy([0, 0, 1, 2]))
        assert result.outcome == "deadlock"
        assert result.trace.failure == "deadlock among threads [0, 1, 2]"

    def test_scripted_benign_schedule_completes(self, abba_deadlock):
        # Run worker one to completion before worker two ever starts.
        result = run_program(abba_deadlock, ScriptedPolicy([0, 0, 1, 1, 1, 1]))
        assert not result.crashed and result.outcome is None

    def test_lock_hunter_finds_abba_deadlock_deterministically(self, abba_deadlock):
        class LockHunterPolicy(SchedulerPolicy):
            """Adversary: spawn everything, then rotate lock acquisitions
            across threads — the classic hold-and-wait-maximising order."""

            def __init__(self):
                self._last = None

            def choose(self, candidates, execution):
                for kind in ("spawn", "lock"):
                    group = [c for c in candidates if c.kind == kind]
                    if group:
                        switched = [c for c in group if c.tid != self._last]
                        choice = min(switched or group, key=lambda c: c.tid)
                        break
                else:
                    choice = min(candidates, key=lambda c: c.tid)
                self._last = choice.tid
                return choice

        first = run_program(abba_deadlock, LockHunterPolicy())
        second = run_program(abba_deadlock, LockHunterPolicy())
        assert first.outcome == "deadlock"
        assert second.schedule == first.schedule

    def test_scripted_lost_wakeup_deadlocks(self):
        @program("t/lostwakeup_adv", bug_kinds=("deadlock",))
        def prog(t):
            def waiter(t, m, c, ready):
                yield t.lock(m)
                is_ready = yield t.read(ready)
                if not is_ready:
                    yield t.wait(c, m)
                yield t.unlock(m)

            def signaller(t, c, ready):
                yield t.write(ready, 1)
                yield t.signal(c)

            m = t.mutex("m")
            c = t.cond("c")
            ready = t.var("ready", 0)
            h1 = yield t.spawn(waiter, m, c, ready)
            h2 = yield t.spawn(signaller, c, ready)
            yield t.join(h1)
            yield t.join(h2)

        # Force the race window: the waiter reads ready == 0, the signaller
        # then writes and signals (no waiter yet — the wakeup is lost), and
        # only then does the waiter block in wait(): a guaranteed deadlock.
        result = run_program(prog, ScriptedPolicy([0, 0, 1, 1, 2, 2]))
        assert result.outcome == "deadlock"
        assert "threads [0, 1]" in result.trace.failure

    def test_replay_of_deadlock_schedule_reproduces_it(self, abba_deadlock):
        original = run_program(abba_deadlock, ScriptedPolicy([0, 0, 1, 2]))
        assert original.outcome == "deadlock"
        replay = run_program(abba_deadlock, ReplayPolicy(original.schedule))
        assert replay.outcome == "deadlock"
        assert replay.schedule == original.schedule

    def test_policy_returning_foreign_candidate_rejected(self, abba_deadlock):
        class RoguePolicy(SchedulerPolicy):
            def choose(self, candidates, execution):
                from repro.runtime.executor import Candidate

                return Candidate(tid=99, kind="w", location="var:x", loc="nowhere:1")

        with pytest.raises(SchedulerError, match="not an enabled candidate"):
            run_program(abba_deadlock, RoguePolicy())


class TestHeapOracles:
    def test_uaf_reachable_and_reported(self, uaf):
        outcomes = {run_program(uaf, RandomWalkPolicy(s)).outcome for s in range(200)}
        assert outcomes & {"use-after-free", "null-dereference"}

    def test_uaf_replayable(self, uaf):
        for seed in range(200):
            result = run_program(uaf, RandomWalkPolicy(seed))
            if result.crashed:
                replay = run_program(uaf, ReplayPolicy(result.schedule))
                assert replay.outcome == result.outcome
                return
        raise AssertionError("expected a heap crash in 200 schedules")

    def test_double_free_detected(self):
        @program("t/dfree", bug_kinds=("double-free",))
        def prog(t):
            obj = yield t.malloc("n")
            yield t.free(obj)
            yield t.free(obj)

        assert run_program(prog, RandomWalkPolicy(0)).outcome == "double-free"

    def test_null_free_detected(self):
        @program("t/nullfree", bug_kinds=("null-dereference",))
        def prog(t):
            yield t.free(None)

        assert run_program(prog, RandomWalkPolicy(0)).outcome == "null-dereference"

    def test_heap_write_after_free_detected(self):
        @program("t/wafterfree", bug_kinds=("use-after-free",))
        def prog(t):
            obj = yield t.malloc("n", val=0)
            yield t.free(obj)
            yield t.heap_write(obj, "val", 1)

        assert run_program(prog, RandomWalkPolicy(0)).outcome == "use-after-free"

    def test_crashing_heap_event_recorded_in_trace(self):
        @program("t/heaptrace", bug_kinds=("use-after-free",))
        def prog(t):
            obj = yield t.malloc("n", val=0)
            yield t.free(obj)
            yield t.heap_read(obj, "val")

        result = run_program(prog, RandomWalkPolicy(0))
        assert result.trace.events[-1].kind == "hr"
