"""Greybox feedback (isInteresting) and the cut-off exponential power
schedule (paper Sections 3 and 4.2)."""

from __future__ import annotations

import pytest

from repro.core.constraints import AbstractSchedule
from repro.core.corpus import Corpus, CorpusEntry
from repro.core.feedback import RfFeedback
from repro.core.power import FlatSchedule, PowerSchedule
from repro.runtime import run_program
from repro.schedulers import PosPolicy, RandomWalkPolicy


class TestRfFeedback:
    def test_first_trace_is_interesting(self, reorder3):
        feedback = RfFeedback()
        trace = run_program(reorder3, PosPolicy(0)).trace
        observation = feedback.observe(trace)
        assert observation.interesting
        assert observation.new_pairs

    def test_repeat_trace_not_interesting(self, reorder3):
        feedback = RfFeedback()
        trace = run_program(reorder3, PosPolicy(0)).trace
        feedback.observe(trace)
        again = feedback.observe(trace)
        assert not again.new_pairs
        assert not again.interesting

    def test_crash_is_always_interesting(self, racy_counter):
        feedback = RfFeedback()
        crashing = None
        for seed in range(300):
            result = run_program(racy_counter, RandomWalkPolicy(seed))
            if result.crashed:
                crashing = result
                break
        assert crashing is not None
        feedback.observe(crashing.trace)
        again = feedback.observe(crashing.trace)
        assert again.crashed and again.interesting

    def test_signature_counting(self, reorder3):
        feedback = RfFeedback()
        trace = run_program(reorder3, PosPolicy(0)).trace
        feedback.observe(trace)
        feedback.observe(trace)
        assert feedback.frequency(trace.rf_signature()) == 2
        assert feedback.unique_signatures == 1
        assert feedback.executions == 2

    def test_pair_coverage_monotone(self, reorder3):
        feedback = RfFeedback()
        last = 0
        for seed in range(10):
            feedback.observe(run_program(reorder3, PosPolicy(seed)).trace)
            assert feedback.pair_coverage >= last
            last = feedback.pair_coverage


class TestPowerSchedule:
    def _setup(self, frequencies):
        """Corpus of entries whose signatures have the given frequencies."""
        feedback = RfFeedback()
        corpus = Corpus()
        for index, frequency in enumerate(frequencies):
            signature = frozenset({(None, _fake_read(index))})
            feedback.signature_counts[signature] = frequency
            corpus.add(CorpusEntry(schedule=AbstractSchedule.empty(), signature=signature))
        return corpus, feedback

    def test_over_explored_entries_skipped(self):
        corpus, feedback = self._setup([10, 1, 1])
        power = PowerSchedule()
        entries = corpus.entries
        # Mean is 4: the frequency-10 entry is strictly above, so skipped.
        assert power.energy(entries[0], corpus, feedback) == 0
        assert power.energy(entries[1], corpus, feedback) >= 1

    def test_energy_grows_exponentially_with_s(self):
        corpus, feedback = self._setup([1, 1])
        power = PowerSchedule(beta=1.0, max_energy=1000)
        entry = corpus.entries[0]
        energies = []
        for s in range(6):
            entry.chosen_since_skip = s
            energies.append(power.energy(entry, corpus, feedback))
        assert energies == [1, 2, 4, 8, 16, 32]

    def test_cutoff_at_max_energy(self):
        corpus, feedback = self._setup([1, 1])
        power = PowerSchedule(beta=1.0, max_energy=16)
        entry = corpus.entries[0]
        entry.chosen_since_skip = 10
        assert power.energy(entry, corpus, feedback) == 16

    def test_gamma_scales_energy(self):
        corpus, feedback = self._setup([1, 1])
        power = PowerSchedule(beta=1.0, max_energy=1000)
        entry = corpus.entries[0]
        entry.new_pairs = 8
        assert power.energy(entry, corpus, feedback) == 8

    def test_huge_exponent_does_not_overflow(self):
        # chosen_since_skip grows unboundedly while an entry keeps being
        # picked; 2.0 ** s raises OverflowError past s ~ 1024 without the
        # short-circuit to max_energy.
        corpus, feedback = self._setup([1, 1])
        power = PowerSchedule(beta=2.0, max_energy=64)
        entry = corpus.entries[0]
        for s in (1024, 5000, 10**9):
            entry.chosen_since_skip = s
            assert power.energy(entry, corpus, feedback) == 64

    def test_clamp_kicks_in_exactly_at_cutoff(self):
        corpus, feedback = self._setup([1, 1])
        power = PowerSchedule(beta=1.0, max_energy=16)
        entry = corpus.entries[0]
        # Energy is monotone in s and saturates at max_energy.
        previous = 0
        for s in range(0, 40):
            entry.chosen_since_skip = s
            energy = power.energy(entry, corpus, feedback)
            assert energy >= previous
            assert energy <= 16
            previous = energy
        assert previous == 16

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            PowerSchedule(beta=0)
        with pytest.raises(ValueError):
            PowerSchedule(max_energy=0)

    def test_flat_schedule_constant(self):
        corpus, feedback = self._setup([10, 1])
        flat = FlatSchedule()
        assert flat.energy(corpus.entries[0], corpus, feedback) == 1
        assert flat.energy(corpus.entries[1], corpus, feedback) == 1

    def test_mean_frequency_empty_corpus(self):
        assert PowerSchedule().mean_frequency(Corpus(), RfFeedback()) == 0.0


class TestCorpus:
    def test_round_robin_cycling(self):
        corpus = Corpus()
        entries = [CorpusEntry(schedule=AbstractSchedule.empty()) for _ in range(3)]
        for entry in entries:
            corpus.add(entry)
        picks = [corpus.next_entry() for _ in range(6)]
        assert picks == entries + entries

    def test_empty_corpus_raises(self):
        with pytest.raises(LookupError):
            Corpus().next_entry()

    def test_gamma_floor(self):
        entry = CorpusEntry(schedule=AbstractSchedule.empty(), new_pairs=0, satisfied_fraction=0.0)
        assert entry.gamma >= 0.25


def _fake_read(index):
    from repro.core.events import AbstractEvent

    return AbstractEvent("r", f"var:v{index}", f"f:{index}")
