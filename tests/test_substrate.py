"""The real-Python substrate: gate, shims, observer, targets, integration.

Covers the four acceptance properties of the ``py:`` namespace:

* every planted bug is found by at least one scheduler within 500 schedules;
* the two control targets never produce a finding;
* crashing schedules replay STABLE with a stable dedup key across 20 runs;
* serial and parallel campaigns over ``py:`` programs are bit-identical.

Plus unit-level checks of the shim semantics (misuse raises the stdlib's
``RuntimeError``/``ValueError``, not a harness error) and the substrate's
escape hatches.
"""

from __future__ import annotations

import threading as real_threading

import pytest

from repro import bench
from repro.core.reproduce import dedup_key, verify_replay
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.parallel import ParallelCampaign
from repro.harness.tools import RffTool, random_tool
from repro.runtime.errors import ProgramError
from repro.runtime.executor import Executor
from repro.runtime.guard import GuardConfig
from repro.schedulers import PctPolicy, PosPolicy, RandomWalkPolicy, ReplayPolicy
from repro.substrate import py_program, track

CONTROLS = {"py:counter_locked", "py:bounded_buffer"}
BUGGY = [name for name in bench.py_names() if name not in CONTROLS]

_POLICIES = (
    lambda s: RandomWalkPolicy(seed=s),
    lambda s: PctPolicy(seed=s, depth=3),
    lambda s: PosPolicy(seed=s),
)


def _find_crash(prog, max_schedules: int = 500):
    """Round-robin the three schedulers until one execution crashes."""
    budget_per_policy = max_schedules // len(_POLICIES)
    for seed in range(budget_per_policy):
        for make in _POLICIES:
            result = Executor(prog, make(seed)).run()
            if result.crashed:
                return result
    return None


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Every test must return the process to its baseline thread count."""
    baseline = real_threading.active_count()
    yield
    assert real_threading.active_count() == baseline


class TestTargets:
    @pytest.mark.parametrize("name", BUGGY)
    def test_planted_bug_found_within_500_schedules(self, name):
        prog = bench.get(name)
        result = _find_crash(prog)
        assert result is not None, f"{name}: bug not found"
        assert result.outcome in prog.bug_kinds

    @pytest.mark.parametrize("name", sorted(CONTROLS))
    def test_controls_stay_clean(self, name):
        prog = bench.get(name)
        for seed in range(30):
            for make in _POLICIES:
                result = Executor(prog, make(seed)).run()
                assert not result.crashed, (
                    f"{name} control crashed under seed {seed}: {result.trace.failure}"
                )

    def test_namespace_size(self):
        # The ISSUE floor: at least 8 seeded py: targets.
        assert len(bench.py_names()) >= 8
        assert all(name.startswith("py:") for name in bench.py_names())

    def test_registry_resolution_and_did_you_mean(self):
        assert bench.get("py:counter_race").suite == "py"
        with pytest.raises(KeyError, match="did you mean.*py:counter_race"):
            bench.get("py:counter_rac")
        # The py: namespace must not leak into the fixed 49-program corpus.
        assert len(bench.all_programs()) == bench.EXPECTED_PROGRAM_COUNT


class TestReplayStability:
    @pytest.mark.parametrize("name", ["py:counter_race", "py:abba_deadlock", "py:global_counter"])
    def test_dedup_key_stable_across_20_replays(self, name):
        prog = bench.get(name)
        found = _find_crash(prog)
        assert found is not None
        key = dedup_key(found)
        verdict = verify_replay(prog, found.schedule, found.outcome, key, replays=20)
        assert verdict.stable, f"{name} FLAKY: {verdict.runs}"
        assert all(run.key == key for run in verdict.runs)

    def test_exact_schedule_replay(self):
        prog = bench.get("py:counter_race")
        found = _find_crash(prog)
        result = Executor(prog, ReplayPolicy(list(found.schedule))).run()
        assert result.diverged is None
        assert result.outcome == found.outcome
        assert list(result.schedule) == list(found.schedule)
        assert result.failure_frames == found.failure_frames


class TestCampaignIntegration:
    def test_serial_parallel_bit_identical(self):
        programs = ["py:counter_race", "py:abba_deadlock"]
        config = CampaignConfig(trials=2, budget=60, base_seed=7)
        serial = Campaign(config).run(
            [RffTool(), random_tool()], [bench.get(n) for n in programs]
        )
        parallel = ParallelCampaign(config, processes=2).run(
            [RffTool().name, random_tool().name], programs
        )
        assert parallel == serial

    def test_rff_tool_finds_and_verifies(self):
        tool = RffTool()
        tool.verify_replays = 5
        result = tool.find_bug(bench.get("py:counter_race"), budget=200, seed=0)
        assert result.found
        assert result.replay_verdict == "STABLE"


class TestShimSemantics:
    """Shim misuse must raise the stdlib exception (a finding), not wedge."""

    def _run(self, entry, seeds=40):
        prog = py_program("py:test_entry", entry)
        outcomes = set()
        for seed in range(seeds):
            result = Executor(prog, RandomWalkPolicy(seed=seed)).run()
            outcomes.add((result.outcome, result.trace.failure))
        return outcomes

    def test_lock_nonblocking_acquire(self):
        def entry():
            import threading

            lock = threading.Lock()
            assert lock.acquire(blocking=False)
            assert not lock.acquire(blocking=False)
            assert lock.locked()
            lock.release()
            assert lock.acquire(timeout=0)
            lock.release()

        assert self._run(entry, seeds=3) == {(None, None)}

    def test_release_unlocked_lock_is_a_finding(self):
        def entry():
            import threading

            threading.Lock().release()

        outcomes = self._run(entry, seeds=3)
        assert len(outcomes) == 1
        outcome, failure = outcomes.pop()
        assert outcome == "exception"
        assert "RuntimeError" in failure

    def test_rlock_reentrancy_and_foreign_release(self):
        def entry():
            import threading

            rlock = threading.RLock()
            with rlock:
                with rlock:
                    assert rlock._is_owned()
            stranger_failed = []

            def stranger():
                try:
                    rlock.release()
                except RuntimeError:
                    stranger_failed.append(True)

            with rlock:
                t = threading.Thread(target=stranger)
                t.start()
                t.join()
            assert stranger_failed == [True]

        assert self._run(entry, seeds=5) == {(None, None)}

    def test_bounded_semaphore_over_release(self):
        def entry():
            import threading

            sem = threading.BoundedSemaphore(1)
            sem.acquire()
            sem.release()
            sem.release()  # one too many

        outcomes = self._run(entry, seeds=3)
        outcome, failure = outcomes.pop()
        assert outcome == "exception"
        assert "ValueError" in failure

    def test_event_and_barrier(self):
        def entry():
            import threading

            event = threading.Event()
            bar = threading.Barrier(2)
            indices = []

            def waiter():
                event.wait()
                indices.append(bar.wait())

            t = threading.Thread(target=waiter)
            t.start()
            event.set()
            assert event.is_set()
            indices.append(bar.wait())
            t.join()
            assert sorted(indices) == [0, 1]

        assert self._run(entry, seeds=10) == {(None, None)}

    def test_queue_full_and_task_done(self):
        def entry():
            import queue

            q = queue.Queue(maxsize=1)
            q.put_nowait(1)
            try:
                q.put_nowait(2)
            except queue.Full:
                pass
            else:
                raise AssertionError("Full not raised")
            assert q.get_nowait() == 1
            q.put(3)
            q.get()
            q.task_done()
            q.task_done()
            q.join()
            q.task_done()  # overshoots: both puts already accounted for

        outcomes = self._run(entry, seeds=3)
        outcome, failure = outcomes.pop()
        # The unbalanced task_done overshoots: stdlib contract is ValueError.
        assert outcome == "exception"
        assert "ValueError" in failure


class TestSubstrateGuards:
    def test_track_outside_execution_raises(self):
        with pytest.raises(ProgramError, match="outside a substrate execution"):
            track(object.__new__(type("Bag", (), {})))

    def test_nested_executions_rejected(self):
        def inner():
            pass

        inner_prog = py_program("py:test_inner", inner)

        def entry():
            Executor(inner_prog, RandomWalkPolicy(seed=0)).run()

        outer = py_program("py:test_outer", entry)
        result = Executor(outer, RandomWalkPolicy(seed=0)).run()
        # The nested run is rejected; the rejection surfaces as a harness
        # error (ProgramError), not a silent pass.
        assert result.outcome == "exception"
        assert "nested substrate executions" in result.trace.failure

    def test_shim_objects_do_not_escape(self):
        escaped = []

        def entry():
            import threading

            escaped.append(threading.Lock())

        prog = py_program("py:test_escape", entry)
        Executor(prog, RandomWalkPolicy(seed=0)).run()
        with pytest.raises((RuntimeError, BaseException)):
            escaped.pop().acquire()

    def test_watchdog_on_substrate_program(self):
        def entry():
            import threading

            lock = threading.Lock()
            for _ in range(100):
                with lock:
                    pass

        prog = py_program("py:test_spin", entry)
        guard = GuardConfig(step_budget=10)
        result = Executor(prog, RandomWalkPolicy(seed=0), guard=guard).run()
        assert result.outcome == "timeout"
