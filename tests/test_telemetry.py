"""Telemetry layer: golden event schema, counters, sinks, aggregation.

The acceptance bar for campaign observability: the JSONL emitted by a real
(smoke-sized) parallel campaign contains per-cell timing, schedules/sec and
worker lifecycle events, and every record validates against the golden
schema in :data:`repro.harness.telemetry.EVENT_SCHEMA`.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.core.fuzzer import RffFuzzer
from repro.harness.campaign import CampaignConfig
from repro.harness.parallel import ParallelCampaign
from repro.harness.reporting import throughput_summary
from repro.harness.telemetry import (
    EVENT_SCHEMA,
    GLOBAL_COUNTERS,
    Counters,
    JsonlSink,
    MultiSink,
    SinkLockedError,
    TelemetryAggregator,
    TelemetrySink,
    validate_jsonl,
    validate_record,
)
from repro.runtime.executor import Executor
from repro.schedulers.random_walk import RandomWalkPolicy


# ----------------------------------------------------------------------
# Golden schema over a real campaign (acceptance criterion)
# ----------------------------------------------------------------------
class TestGoldenSchema:
    @pytest.fixture(scope="class")
    def smoke_records(self, tmp_path_factory):
        """One smoke campaign's JSONL, parsed and schema-validated."""
        path = tmp_path_factory.mktemp("telemetry") / "campaign.jsonl"
        config = CampaignConfig(trials=2, budget=100, base_seed=3)
        with JsonlSink(path) as sink:
            ParallelCampaign(config, processes=2, telemetry=sink).run(
                ["RFF", "POS"], ["CS/account"]
            )
        return validate_jsonl(path)

    def test_every_record_validates(self, smoke_records):
        assert smoke_records  # validate_jsonl raised on any bad record

    def test_campaign_lifecycle_events(self, smoke_records):
        events = [r["event"] for r in smoke_records]
        assert events[0] == "campaign_start"
        assert events[-1] == "campaign_end"
        assert "cell_start" in events and "cell_end" in events

    def test_per_cell_timing_and_throughput(self, smoke_records):
        ends = [r for r in smoke_records if r["event"] == "cell_end"]
        assert len(ends) == 4  # 2 tools x 1 program x 2 trials
        for record in ends:
            assert record["wall_time"] > 0
            assert record["schedules_per_sec"] > 0
            assert record["executions"] > 0
            assert record["steps"] > 0

    def test_worker_lifecycle_events(self, smoke_records):
        starts = [r for r in smoke_records if r["event"] == "worker_start"]
        exits = [r for r in smoke_records if r["event"] == "worker_exit"]
        assert len(starts) == 4 and len(exits) == 4
        assert all(isinstance(r["pid"], int) for r in starts)
        assert all(r["kind"] == "ok" and r["exitcode"] == 0 for r in exits)

    def test_records_are_plain_json(self, smoke_records):
        for record in smoke_records:
            json.dumps(record)  # round-trippable, no exotic types


class TestValidateRecord:
    def _record(self, **overrides):
        record = {
            "event": "pool_degraded",
            "ts": 12.5,
            "schema": 1,
            "reason": "testing",
        }
        record.update(overrides)
        return record

    def test_accepts_valid_record(self):
        validate_record(self._record())

    def test_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown telemetry event"):
            validate_record(self._record(event="made_up"))

    def test_rejects_missing_payload_field(self):
        record = self._record()
        del record["reason"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_record(record)

    def test_rejects_missing_common_field(self):
        record = self._record()
        del record["ts"]
        with pytest.raises(ValueError, match="common fields"):
            validate_record(record)

    def test_rejects_non_numeric_timestamp(self):
        with pytest.raises(ValueError, match="numeric"):
            validate_record(self._record(ts="yesterday"))

    def test_extra_fields_allowed(self):
        validate_record(self._record(extra="fine"))

    @pytest.mark.parametrize(
        ("event", "payload"),
        [
            ("heartbeat", {"pid": 7, "tool": "RFF", "program": "CS/account", "trial": 0, "seq": 3}),
            (
                "lease_reassign",
                {"tool": "RFF", "program": "CS/account", "trial": 0, "attempt": 1, "kind": "lease", "delay": 0.1},
            ),
            (
                "store_compact",
                {"path": "/tmp/store", "segments_before": 3, "segments_after": 1, "records_before": 5, "records_after": 4},
            ),
        ],
    )
    def test_accepts_supervisor_and_store_events(self, event, payload):
        validate_record({"event": event, "ts": 1.0, "schema": 1, **payload})

    @pytest.mark.parametrize("event", ["heartbeat", "lease_reassign", "store_compact"])
    def test_rejects_bare_supervisor_and_store_events(self, event):
        with pytest.raises(ValueError, match="missing fields"):
            validate_record({"event": event, "ts": 1.0, "schema": 1})

    def test_schema_covers_all_engine_events(self):
        assert set(EVENT_SCHEMA) == {
            "campaign_start",
            "cell_start",
            "cell_end",
            "cell_retry",
            "cell_error",
            "worker_start",
            "worker_exit",
            "worker_recycle",
            "batch_dispatch",
            "pool_degraded",
            "sanitizer_report",
            "checkpoint",
            "campaign_end",
            "gen_corpus",
            "gen_eval_end",
            "alloc_round",
            "alloc_estimate",
            "heartbeat",
            "lease_reassign",
            "store_compact",
        }


# ----------------------------------------------------------------------
# Always-on counters and their wiring
# ----------------------------------------------------------------------
class TestCounters:
    def test_snapshot_delta(self):
        counters = Counters(executions=3, steps=100, crashes=1, corpus_adds=2)
        snap = counters.snapshot()
        counters.executions += 2
        counters.steps += 50
        delta = counters.delta(snap)
        assert delta == Counters(executions=2, steps=50, crashes=0, corpus_adds=0)
        assert snap == Counters(executions=3, steps=100, crashes=1, corpus_adds=2)

    def test_reset_and_as_dict(self):
        counters = Counters(executions=1, steps=2, crashes=3, corpus_adds=4)
        assert counters.as_dict() == {
            "executions": 1,
            "steps": 2,
            "crashes": 3,
            "corpus_adds": 4,
            "sanitizer_reports": 0,
            "timeouts": 0,
            "livelocks": 0,
            "replays": 0,
            "flaky_quarantined": 0,
            "torn_lines": 0,
        }
        counters.reset()
        assert counters == Counters()

    def test_executor_increments_global_counters(self):
        program = bench.get("CS/account")
        before = GLOBAL_COUNTERS.snapshot()
        Executor(program, RandomWalkPolicy(seed=1)).run()
        delta = GLOBAL_COUNTERS.delta(before)
        assert delta.executions == 1
        assert delta.steps > 0

    def test_fuzzer_increments_global_counters(self):
        program = bench.get("CS/account")
        before = GLOBAL_COUNTERS.snapshot()
        report = RffFuzzer(program, seed=5).run(150)
        delta = GLOBAL_COUNTERS.delta(before)
        assert delta.executions == report.executions
        assert delta.steps > 0
        assert delta.crashes == len(report.crashes)
        assert delta.corpus_adds > 0  # the seed schedule alone admits one


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_base_sink_is_noop_context_manager(self):
        with TelemetrySink() as sink:
            sink.emit("not_even_validated", nonsense=True)

    def test_jsonl_sink_appends_and_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, clock=lambda: 1.0)
        sink.emit("pool_degraded", reason="one")
        # flushed per record: readable before close
        assert len(validate_jsonl(path)) == 1
        sink.emit("pool_degraded", reason="two")
        sink.close()
        # append-only across reopen
        with JsonlSink(path, clock=lambda: 2.0) as reopened:
            reopened.emit("pool_degraded", reason="three")
        records = validate_jsonl(path)
        assert [r["reason"] for r in records] == ["one", "two", "three"]
        assert records[-1]["ts"] == 2.0

    def test_jsonl_sink_rejects_invalid_emit(self, tmp_path):
        with JsonlSink(tmp_path / "events.jsonl") as sink:
            with pytest.raises(ValueError):
                sink.emit("no_such_event")

    def test_jsonl_sink_double_open_fails_fast(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path):
            with pytest.raises(SinkLockedError, match="another campaign"):
                JsonlSink(path)
        # Released on close: a later campaign may append.
        JsonlSink(path).close()

    def test_validate_jsonl_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "pool_degraded", "ts": 1, "schema": 1, "reason": "x"}\n{oops\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            validate_jsonl(path)

    def test_multi_sink_fans_out(self, tmp_path):
        aggregator = TelemetryAggregator(clock=lambda: 0.0)
        path = tmp_path / "multi.jsonl"
        multi = MultiSink([aggregator, JsonlSink(path, clock=lambda: 0.0)])
        multi.emit("pool_degraded", reason="shared")
        multi.close()
        assert len(aggregator.records) == 1
        assert len(validate_jsonl(path)) == 1


# ----------------------------------------------------------------------
# Aggregation and the throughput report
# ----------------------------------------------------------------------
def _synthetic_aggregator() -> TelemetryAggregator:
    aggregator = TelemetryAggregator(clock=lambda: 0.0)
    for trial, wall in enumerate([2.0, 1.0]):
        aggregator.emit(
            "cell_end",
            tool="RFF",
            program="CS/account",
            trial=trial,
            attempt=1,
            wall_time=wall,
            executions=100,
            schedules_per_sec=100 / wall,
            found=True,
            steps=5000,
            crashes=1,
            corpus_adds=7,
        )
    aggregator.emit("cell_retry", tool="RFF", program="CS/account", trial=1, attempt=1, kind="crash")
    aggregator.emit("worker_exit", pid=1, exitcode=17, kind="crash")
    aggregator.emit("worker_exit", pid=2, exitcode=0, kind="ok")
    aggregator.emit(
        "cell_error",
        tool="POS",
        program="CS/account",
        trial=0,
        attempts=3,
        kind="timeout",
        detail="cell exceeded 1s timeout",
    )
    return aggregator


class TestAggregator:
    def test_summary_math(self):
        aggregator = _synthetic_aggregator()
        summary = aggregator.summary()
        assert summary["cells"] == 2
        assert summary["failed_cells"] == 1
        assert summary["retries"] == 1
        assert summary["worker_restarts"] == 1
        assert summary["executions"] == 200
        assert summary["steps"] == 10000
        # no campaign_end yet: wall time falls back to the sum of cell walls
        assert summary["wall_time"] == pytest.approx(3.0)
        assert summary["schedules_per_sec"] == pytest.approx(200 / 3.0)

    def test_campaign_end_overrides_wall_time(self):
        aggregator = _synthetic_aggregator()
        aggregator.emit(
            "campaign_end",
            wall_time=1.5,
            cells=2,
            failed_cells=1,
            retries=1,
            executions=200,
            schedules_per_sec=200 / 1.5,
        )
        assert aggregator.total_wall_time == 1.5

    def test_slowest_cells_ordering(self):
        aggregator = _synthetic_aggregator()
        slowest = aggregator.slowest_cells(1)
        assert slowest == [(("RFF", "CS/account", 0), 2.0)]

    def test_throughput_summary_rendering(self):
        text = throughput_summary(_synthetic_aggregator())
        assert "Campaign throughput" in text
        assert "2 completed, 1 failed, 1 retried" in text
        assert "worker restarts:  1" in text
        assert "slowest cells" in text and "trial 0 (2.00s)" in text
