"""Shared fixtures: small programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import program


def _writer(t, var, value):
    yield t.write(var, value)


def _setter(t, a, b):
    yield t.write(a, 1)
    yield t.write(b, -1)


def _checker(t, a, b):
    va = yield t.read(a)
    vb = yield t.read(b)
    t.require((va == 0 and vb == 0) or (va == 1 and vb == -1), "reorder violation")


def make_reorder(n: int, mc: bool = False):
    """The paper's Figure 1 program with ``n`` setter threads."""

    @program(f"test/reorder_{n}", bug_kinds=("assertion",), mc_supported=mc)
    def reorder(t):
        a = t.var("a", 0)
        b = t.var("b", 0)
        for _ in range(n):
            yield t.spawn(_setter, a, b)
        yield t.spawn(_checker, a, b)

    return reorder


@pytest.fixture
def reorder2():
    return make_reorder(2, mc=True)


@pytest.fixture
def reorder3():
    return make_reorder(3, mc=True)


@program("test/sequential", bug_kinds=())
def sequential_program(t):
    """Single-threaded: writes then reads one variable; never crashes."""
    x = t.var("x", 0)
    yield t.write(x, 1)
    value = yield t.read(x)
    t.require(value == 1)


@pytest.fixture
def sequential():
    return sequential_program


@program("test/racefree", bug_kinds=())
def racefree_program(t):
    """Two threads increment under a lock; the assertion always holds."""

    def worker(t, m, x):
        yield t.lock(m)
        value = yield t.read(x)
        yield t.write(x, value + 1)
        yield t.unlock(m)

    m = t.mutex("m")
    x = t.var("x", 0)
    h1 = yield t.spawn(worker, m, x)
    h2 = yield t.spawn(worker, m, x)
    yield t.join(h1)
    yield t.join(h2)
    total = yield t.read(x)
    t.require(total == 2, "protected increments lost an update")


@pytest.fixture
def racefree():
    return racefree_program


@program("test/racy_counter", bug_kinds=("assertion",))
def racy_counter_program(t):
    """Two unprotected increments: the classic lost update."""

    def worker(t, x):
        value = yield t.read(x)
        yield t.write(x, value + 1)

    x = t.var("x", 0)
    h1 = yield t.spawn(worker, x)
    h2 = yield t.spawn(worker, x)
    yield t.join(h1)
    yield t.join(h2)
    total = yield t.read(x)
    t.require(total == 2, "lost update")


@pytest.fixture
def racy_counter():
    return racy_counter_program


@program("test/abba_deadlock", bug_kinds=("deadlock",))
def abba_program(t):
    """Two mutexes taken in opposite orders: deadlock under one schedule."""

    def one(t, ma, mb):
        yield t.lock(ma)
        yield t.lock(mb)
        yield t.unlock(mb)
        yield t.unlock(ma)

    def two(t, ma, mb):
        yield t.lock(mb)
        yield t.lock(ma)
        yield t.unlock(ma)
        yield t.unlock(mb)

    ma = t.mutex("A")
    mb = t.mutex("B")
    h1 = yield t.spawn(one, ma, mb)
    h2 = yield t.spawn(two, ma, mb)
    yield t.join(h1)
    yield t.join(h2)


@pytest.fixture
def abba_deadlock():
    return abba_program


@program("test/uaf", bug_kinds=("use-after-free", "null-dereference"))
def uaf_program(t):
    """One thread dereferences while the other frees: UAF or null-deref."""

    def user(t, ptr):
        obj = yield t.read(ptr)
        yield t.pause()
        yield t.heap_read(obj, "val")

    def freer(t, ptr, obj):
        yield t.free(obj)
        yield t.write(ptr, None)

    obj = yield t.malloc("node", val=1)
    ptr = t.var("ptr", obj)
    h1 = yield t.spawn(user, ptr)
    h2 = yield t.spawn(freer, ptr, obj)
    yield t.join(h1)
    yield t.join(h2)


@pytest.fixture
def uaf():
    return uaf_program
