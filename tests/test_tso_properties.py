"""Property-based tests of the TSO executor (hypothesis).

Invariants checked over randomly generated programs:

* every execution terminates with empty store buffers;
* reads-from edges are sound (backwards, same location, write-kind, never a
  flush pseudo-event);
* per-thread stores flush in FIFO order per location;
* programs whose every write is immediately fenced behave like SC
  (identical reachable final-state sets over many seeds).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import program
from repro.runtime.tso import TsoExecutor
from repro.schedulers import PosPolicy, RandomWalkPolicy

_action = st.one_of(
    st.tuples(st.just("r"), st.integers(0, 1)),
    st.tuples(st.just("w"), st.integers(0, 1), st.integers(0, 3)),
    st.tuples(st.just("fence"), st.integers(0, 1)),
)

_thread = st.lists(_action, min_size=1, max_size=5)
program_specs = st.lists(_thread, min_size=1, max_size=3)


def build(spec, fence_everything=False):
    def body(t, variables, actions):
        for action in actions:
            if action[0] == "r":
                yield t.read(variables[action[1]])
            elif action[0] == "w":
                yield t.write(variables[action[1]], action[2])
                if fence_everything:
                    yield t.add(variables[action[1]], 0)
            else:
                yield t.add(variables[action[1]], 0)

    @program("prop/tso")
    def main(t):
        variables = [t.var(f"v{i}", 0) for i in range(2)]
        handles = []
        for actions in spec:
            handle = yield t.spawn(body, variables, actions)
            handles.append(handle)
        for handle in handles:
            yield t.join(handle)

    return main


class TestTsoProperties:
    @given(spec=program_specs, seed=st.integers(0, 5000))
    @settings(max_examples=50, deadline=None)
    def test_buffers_always_drain(self, spec, seed):
        executor = TsoExecutor(build(spec), RandomWalkPolicy(seed), max_steps=3000)
        result = executor.run()
        assert not result.truncated
        assert executor.pending_stores() == 0

    @given(spec=program_specs, seed=st.integers(0, 5000))
    @settings(max_examples=50, deadline=None)
    def test_rf_edges_sound_under_tso(self, spec, seed):
        result = TsoExecutor(build(spec), RandomWalkPolicy(seed), max_steps=3000).run()
        for event in result.trace:
            if event.rf in (None, 0):
                continue
            writer = result.trace.event_by_id(event.rf)
            assert writer.eid < event.eid
            assert writer.location == event.location
            assert writer.is_write
            assert writer.kind != "flush"

    @given(spec=program_specs, seed=st.integers(0, 5000))
    @settings(max_examples=50, deadline=None)
    def test_flushes_fifo_per_thread(self, spec, seed):
        result = TsoExecutor(build(spec), RandomWalkPolicy(seed), max_steps=3000).run()
        # aux of a flush is the original write's eid: per thread, flush aux
        # values must be increasing (FIFO buffer drain).
        per_thread: dict[int, list[int]] = {}
        for event in result.trace:
            if event.kind == "flush":
                per_thread.setdefault(event.tid, []).append(event.aux)
        for flushed in per_thread.values():
            assert flushed == sorted(flushed)

    @given(spec=program_specs, seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_per_seed(self, spec, seed):
        a = TsoExecutor(build(spec), PosPolicy(seed), max_steps=3000).run()
        b = TsoExecutor(build(spec), PosPolicy(seed), max_steps=3000).run()
        assert [str(e) for e in a.trace] == [str(e) for e in b.trace]

    @given(thread=_thread, seed=st.integers(0, 5000))
    @settings(max_examples=50, deadline=None)
    def test_single_thread_tso_equals_sc(self, thread, seed):
        """With one thread, store forwarding makes TSO indistinguishable
        from SC: the read values of both executions must coincide."""
        from repro.runtime.executor import Executor

        prog = build([thread])
        sc = Executor(prog, RandomWalkPolicy(seed), max_steps=3000).run()
        tso = TsoExecutor(prog, RandomWalkPolicy(seed), max_steps=3000).run()
        sc_reads = [(e.location, e.value) for e in sc.trace if e.kind == "r"]
        tso_reads = [(e.location, e.value) for e in tso.trace if e.kind == "r"]
        assert sc_reads == tso_reads

    @given(spec=program_specs, seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_flush_count_equals_plain_write_count(self, spec, seed):
        """Every plain write is flushed exactly once (by a flush step or,
        silently, by a fence drain is impossible here — drains emit flush
        events too), so #flush events == #plain writes."""
        result = TsoExecutor(build(spec), RandomWalkPolicy(seed), max_steps=3000).run()
        writes = sum(1 for e in result.trace if e.kind == "w")
        flushes = sum(1 for e in result.trace if e.kind == "flush")
        assert flushes == writes
