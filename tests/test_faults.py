"""Chaos plans: seeded determinism, rate partitioning, exact accounting.

A chaos plan is only useful if it is a *pure function of its seed*: the
differential suite replays campaigns against the same plan and asserts
convergence, which is meaningless if the injection points drift.  The
hypothesis properties pin that purity down over the whole parameter space,
and the accounting tests tie claimed injection state to the exact retry
and backoff arithmetic the supervisor performs.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import faults
from repro.harness.faults import ChaosPlan, cell_key, claim_once, claimed_tokens
from repro.harness.supervisor import SupervisedCampaign

KEYS = [
    cell_key(tool, program, trial)
    for tool in ("RFF", "POS", "PCT3", "Random")
    for program in ("CS/account", "Splash2/lu", "SafeStack")
    for trial in range(4)
]

rates = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


def plans(**overrides):
    base = {
        "seed": st.integers(min_value=0, max_value=2**32),
        "kill": rates,
        "hang": rates,
        "skew": rates,
        "torn_write": rates,
        "corrupt": rates,
    }
    base.update(overrides)
    return st.builds(ChaosPlan, **base)


class TestDeterminism:
    @settings(max_examples=50)
    @given(plans())
    def test_same_seed_same_injection_points(self, plan):
        rebuilt = ChaosPlan(**json.loads(json.dumps(plan.__dict__)))
        assert plan.injection_points(KEYS) == rebuilt.injection_points(KEYS)
        assert [plan.store_fault(i) for i in range(50)] == [
            rebuilt.store_fault(i) for i in range(50)
        ]

    @settings(max_examples=50)
    @given(plans())
    def test_env_round_trip(self, plan):
        env = plan.to_env("/tmp/chaos-state")  # to_env never touches the fs
        assert ChaosPlan.from_env(env) == plan

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_different_rates_never_invent_new_draws(self, seed):
        """Raising a rate can only *grow* the injected set for the kinds whose
        band expanded — the underlying uniform draw per key is fixed."""
        low = ChaosPlan(seed=seed, kill=0.1)
        high = ChaosPlan(seed=seed, kill=0.4)
        low_kills = {k for k, v in low.injection_points(KEYS).items() if v == "kill"}
        high_kills = {k for k, v in high.injection_points(KEYS).items() if v == "kill"}
        assert low_kills <= high_kills


class TestRatePartition:
    def test_zero_rates_inject_nothing(self):
        plan = ChaosPlan(seed=3)
        assert plan.injection_points(KEYS) == {}
        assert all(plan.store_fault(i) is None for i in range(100))

    def test_full_rate_injects_everywhere(self):
        plan = ChaosPlan(seed=3, kill=1.0)
        assert set(plan.injection_points(KEYS).values()) == {"kill"}
        assert len(plan.injection_points(KEYS)) == len(KEYS)
        assert all(ChaosPlan(seed=3, torn_write=1.0).store_fault(i) == "torn_write"
                   for i in range(20))

    @settings(max_examples=50)
    @given(plans())
    def test_bands_partition_one_draw(self, plan):
        """A key draws at most ONE fault, and only from the worker kinds;
        store indices likewise only draw store kinds."""
        for key, kind in plan.injection_points(KEYS).items():
            assert kind in faults.WORKER_FAULTS
        for index in range(30):
            kind = plan.store_fault(index)
            assert kind is None or kind in faults.STORE_FAULTS

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**32), rates, rates)
    def test_mass_is_cumulative(self, seed, kill, hang):
        """kill+hang at rates (a, b) injects exactly where kill alone at
        rate a+b would — the bands tile one uniform draw."""
        combined = ChaosPlan(seed=seed, kill=kill, hang=hang)
        merged = ChaosPlan(seed=seed, kill=kill + hang)
        assert set(combined.injection_points(KEYS)) == set(merged.injection_points(KEYS))


class TestClaimAccounting:
    def test_claim_once_is_exactly_once(self, tmp_path):
        assert claim_once(str(tmp_path), "kill:RFF|CS/account|0")
        assert not claim_once(str(tmp_path), "kill:RFF|CS/account|0")
        assert claim_once(str(tmp_path), "kill:RFF|CS/account|1")
        assert claimed_tokens(str(tmp_path)) == [
            "kill:RFF|CS/account|0",
            "kill:RFF|CS/account|1",
        ]

    def test_store_chaos_unarmed_is_inert(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_PLAN, raising=False)
        monkeypatch.delenv(faults.ENV_PLAN_STATE, raising=False)
        assert faults.store_chaos(0) is None

    def test_store_chaos_fires_each_index_once(self, tmp_path, monkeypatch):
        plan = ChaosPlan(seed=5, corrupt=1.0)
        for key, value in plan.to_env(tmp_path).items():
            monkeypatch.setenv(key, value)
        assert faults.store_chaos(0) == "corrupt"
        assert faults.store_chaos(0) is None  # claimed: a retry writes clean
        assert faults.store_chaos(1) == "corrupt"
        assert claimed_tokens(str(tmp_path)) == ["corrupt:write-0", "corrupt:write-1"]


class TestBackoffArithmetic:
    def test_backoff_is_capped_exponential(self):
        from repro.harness.campaign import CampaignConfig

        engine = SupervisedCampaign(
            CampaignConfig(), backoff_base=0.1, backoff_cap=1.0
        )
        assert [engine.backoff_delay(a) for a in (1, 2, 3, 4, 5, 6)] == [
            0.1,
            0.2,
            0.4,
            0.8,
            1.0,
            1.0,
        ]
