"""The benchmark registry: structure, naming and metadata of the 49 models."""

from __future__ import annotations

import pytest

from repro import bench
from repro.runtime import run_program
from repro.schedulers import PosPolicy

#: Appendix B program names, verbatim from the paper.
APPENDIX_B_NAMES = [
    "CB/aget-bug2",
    "CB/pbzip2-0.9.4",
    "CB/stringbuffer-jdk1.4",
    "CS/account",
    "CS/bluetooth_driver",
    "CS/carter01",
    "CS/circular_buffer",
    "CS/deadlock01",
    "CS/lazy01",
    "CS/queue",
    "CS/reorder_10",
    "CS/reorder_100",
    "CS/reorder_20",
    "CS/reorder_3",
    "CS/reorder_4",
    "CS/reorder_5",
    "CS/reorder_50",
    "CS/stack",
    "CS/token_ring",
    "CS/twostage",
    "CS/twostage_100",
    "CS/twostage_20",
    "CS/twostage_50",
    "CS/wronglock",
    "CS/wronglock_3",
    "Chess/InterlockedWorkStealQueue",
    "Chess/InterlockedWorkStealQueueWithState",
    "Chess/StateWorkStealQueue",
    "Chess/WorkStealQueue",
    "ConVul-CVE-Benchmarks/CVE-2009-3547",
    "ConVul-CVE-Benchmarks/CVE-2011-2183",
    "ConVul-CVE-Benchmarks/CVE-2013-1792",
    "ConVul-CVE-Benchmarks/CVE-2015-7550",
    "ConVul-CVE-Benchmarks/CVE-2016-1972",
    "ConVul-CVE-Benchmarks/CVE-2016-1973",
    "ConVul-CVE-Benchmarks/CVE-2016-7911",
    "ConVul-CVE-Benchmarks/CVE-2016-9806",
    "ConVul-CVE-Benchmarks/CVE-2017-15265",
    "ConVul-CVE-Benchmarks/CVE-2017-6346",
    "Inspect_benchmarks/boundedBuffer",
    "Inspect_benchmarks/ctrace-test",
    "Inspect_benchmarks/qsort_mt",
    "RADBench/bug4",
    "RADBench/bug5",
    "RADBench/bug6",
    "SafeStack",
    "Splash2/barnes",
    "Splash2/fft",
    "Splash2/lu",
]


class TestRegistryStructure:
    def test_exactly_49_programs(self):
        assert len(bench.all_programs()) == bench.EXPECTED_PROGRAM_COUNT == 49

    def test_names_match_appendix_b(self):
        assert bench.names() == sorted(APPENDIX_B_NAMES)

    def test_get_by_name(self):
        assert bench.get("CS/account").name == "CS/account"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            bench.get("CS/nonexistent")

    def test_get_unknown_suggests_close_matches(self):
        with pytest.raises(KeyError) as excinfo:
            bench.get("CS/reorder_1000")
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "CS/reorder_100" in message

    def test_get_unknown_without_close_match_mentions_names(self):
        with pytest.raises(KeyError) as excinfo:
            bench.get("zzzz/quux")
        assert "repro.bench.names()" in str(excinfo.value)


class TestGeneratedNamespace:
    """``gen:`` names resolve through the registry without joining it."""

    def test_gen_name_resolves_to_program(self):
        program = bench.get("gen:7")
        assert program.name == "gen:7"
        assert program.suite == "Generated"

    def test_gen_name_with_config_token(self):
        program = bench.get("gen:7:t=3")
        assert program.name == "gen:7:t=3"

    def test_gen_resolution_is_deterministic(self):
        from repro.gen.synth import from_name

        assert bench.get("gen:11").name == from_name("gen:11").program.name

    def test_malformed_gen_name_raises(self):
        with pytest.raises(KeyError):
            bench.get("gen:notanumber")

    def test_gen_names_stay_out_of_the_registry(self):
        bench.get("gen:7")
        assert len(bench.all_programs()) == 49
        assert not any(name.startswith("gen:") for name in bench.names())

    def test_every_program_declares_a_bug(self):
        for prog in bench.all_programs().values():
            assert prog.bug_kinds, f"{prog.name} declares no bug kinds"

    def test_suites_grouping(self):
        assert len(bench.by_suite("CS")) == 22
        assert len(bench.by_suite("ConVul")) == 10
        assert len(bench.by_suite("Chess")) == 4
        assert len(bench.by_suite("CB")) == 3
        assert len(bench.by_suite("Inspect")) == 3
        assert len(bench.by_suite("Splash2")) == 3
        assert len(bench.by_suite("RADBench")) == 3
        assert len(bench.by_suite("SafeStack")) == 1

    def test_mc_supported_subset_matches_paper(self):
        # Appendix B shows 13 non-Error GenMC rows.
        supported = {p.name for p in bench.mc_supported()}
        assert supported == {
            "CS/account",
            "CS/bluetooth_driver",
            "CS/carter01",
            "CS/circular_buffer",
            "CS/deadlock01",
            "CS/lazy01",
            "CS/queue",
            "CS/stack",
            "CS/token_ring",
            "CS/twostage",
            "CS/wronglock",
            "ConVul-CVE-Benchmarks/CVE-2013-1792",
            "Inspect_benchmarks/ctrace-test",
        }

    def test_deadlock_programs(self):
        # Paper Section 5.1: four programs contain deadlocks.
        deadlocks = [p.name for p in bench.all_programs().values() if "deadlock" in p.bug_kinds]
        assert sorted(deadlocks) == [
            "CS/carter01",
            "CS/deadlock01",
            "Inspect_benchmarks/qsort_mt",
            "RADBench/bug6",
        ]

    def test_memory_safety_program_count(self):
        # Paper Section 5.1: 13 programs contain memory-safety issues.
        memory_kinds = {"use-after-free", "double-free", "null-dereference", "memory-safety"}
        memory = [p.name for p in bench.all_programs().values() if p.bug_kinds & memory_kinds]
        assert len(memory) == 11  # 10 ConVul CVEs + CB/pbzip2 in our models

    def test_registry_is_cached(self):
        assert bench.all_programs() is bench.all_programs()


class TestProgramsExecute:
    """Every model must run cleanly (no harness errors) under POS."""

    @pytest.mark.parametrize("name", sorted(APPENDIX_B_NAMES))
    def test_runs_without_harness_error(self, name):
        prog = bench.get(name)
        result = run_program(prog, PosPolicy(0), max_steps=prog.max_steps or 20_000)
        assert result.steps > 0

    @pytest.mark.parametrize("name", ["CS/reorder_100", "CS/twostage_100"])
    def test_large_models_have_matching_thread_counts(self, name):
        from repro.runtime.executor import Executor

        prog = bench.get(name)
        executor = Executor(prog, PosPolicy(0))
        executor.run()
        assert executor.thread_count() >= 101  # n workers + checker + main
