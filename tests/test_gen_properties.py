"""Hypothesis properties of the scenario generator (repro.gen.synth/plant).

The three contracts ISSUE 6 pins:

* **termination** — every generated program finishes (no truncation) under
  RandomWalk within its *declared* step budget, whatever the knobs;
* **internal consistency** — the planted-bug metadata re-validates against
  the actual spec structure (``plant.validate``), and observed crashes
  match the labelled outcome;
* **determinism** — same seed + config → byte-identical spec, ground truth
  and ``gen:`` name, across calls and through name-based resolution (the
  property the parallel engine's serial == parallel guarantee rests on).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import plant
from repro.gen.synth import (
    GEN_PREFIX,
    GenConfig,
    corpus,
    from_name,
    gen_configs,
    iter_names,
    program_specs,
    spec_name,
    synthesize,
)
from repro.runtime.executor import Executor
from repro.schedulers.random_walk import RandomWalkPolicy

_seeds = st.integers(0, 2**32 - 1)
#: Modest knob ranges keep each example a few milliseconds.
_small_configs = gen_configs()


class TestDeterminism:
    @given(_seeds, _small_configs)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_is_byte_identical(self, seed, config):
        first = synthesize(seed, config)
        second = synthesize(seed, config)
        assert first.spec.to_json() == second.spec.to_json()
        assert first.ground_truth.to_dict() == second.ground_truth.to_dict()
        assert first.to_json() == second.to_json()
        assert first.name == second.name

    @given(_seeds, _small_configs)
    @settings(max_examples=40, deadline=None)
    def test_name_resolution_round_trips(self, seed, config):
        generated = synthesize(seed, config)
        assert generated.name.startswith(GEN_PREFIX)
        resolved = from_name(generated.name)
        assert resolved.to_json() == generated.to_json()

    @given(_small_configs)
    @settings(max_examples=60, deadline=None)
    def test_config_token_round_trips(self, config):
        assert GenConfig.from_token(config.to_token()) == config

    def test_default_config_has_empty_token(self):
        assert GenConfig().to_token() == ""
        assert spec_name(7) == "gen:7"
        assert spec_name(7, "t=3") == "gen:7:t=3"

    @pytest.mark.parametrize(
        "token, fragment",
        [
            ("t", "expected <knob>=<value>"),
            ("t=x", "needs an integer, got 'x'"),
            ("zz=3", "unknown gen config token key 'zz'"),
        ],
    )
    def test_malformed_token_names_bad_part_and_grammar(self, token, fragment):
        with pytest.raises(ValueError) as excinfo:
            GenConfig.from_token(token)
        message = str(excinfo.value)
        assert fragment in message
        # Every parse error teaches the full knob grammar.
        assert "valid knobs:" in message
        assert "mix=r#d#a#n#" in message

    def test_malformed_gen_name_raises_clean_keyerror(self):
        from repro import bench

        with pytest.raises(KeyError) as excinfo:
            bench.get("gen:12:t=x")
        message = str(excinfo.value)
        assert "gen:12:t=x" in message
        assert "valid knobs:" in message

    def test_corpus_names_are_consecutive_and_match_iter_names(self):
        programs = corpus(100, 5)
        assert [p.name for p in programs] == list(iter_names(100, 5))
        assert [p.spec.seed for p in programs] == [100, 101, 102, 103, 104]

    @pytest.mark.parametrize(
        "name", ["gen:x", "gen:1:zz=3", "gen:1:mix=r1", "nope/nothere"]
    )
    def test_malformed_names_raise_keyerror(self, name):
        with pytest.raises(KeyError):
            from_name(name)


class TestInternalConsistency:
    @given(program_specs())
    @settings(max_examples=60, deadline=None)
    def test_ground_truth_validates_against_spec(self, generated):
        plant.validate(generated.spec, generated.ground_truth)

    @given(program_specs())
    @settings(max_examples=60, deadline=None)
    def test_compiled_program_mirrors_spec(self, generated):
        program = generated.program
        truth = generated.ground_truth
        assert program.name == generated.spec.name
        assert program.suite == "Generated"
        assert program.max_steps == generated.spec.step_budget
        if truth.kind == "none":
            assert program.bug_kinds == frozenset()
        else:
            assert program.bug_kinds == frozenset({truth.crash_outcome})
        assert program.extra["ground_truth"] == truth.to_dict()

    @given(_seeds)
    @settings(max_examples=40, deadline=None)
    def test_every_bug_kind_is_plantable(self, seed):
        """Force each kind via the mix weights; the label must match."""
        for index, kind in enumerate(("race", "deadlock", "atomicity", "none")):
            mix = tuple(1 if i == index else 0 for i in range(4))
            generated = synthesize(seed, GenConfig(bug_mix=mix))
            assert generated.ground_truth.kind == kind
            plant.validate(generated.spec, generated.ground_truth)


class TestTermination:
    @given(program_specs(), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_terminates_within_declared_budget_under_random_walk(
        self, generated, walk_seed
    ):
        policy = RandomWalkPolicy(seed=walk_seed)
        executor = Executor(
            generated.program, policy, max_steps=generated.spec.step_budget
        )
        result = executor.run()
        truth = generated.ground_truth
        # Never truncated: either a clean finish or the planted crash.
        assert not result.truncated
        assert len(executor.trace.events) <= generated.spec.step_budget
        if result.outcome is not None:
            assert truth.kind != "none", (
                f"bug-free program crashed with {result.outcome}"
            )
            assert result.outcome == truth.crash_outcome

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_bug_free_programs_never_crash(self, seed):
        generated = synthesize(seed, GenConfig(bug_mix=(0, 0, 0, 1)))
        for walk_seed in range(3):
            result = Executor(
                generated.program,
                RandomWalkPolicy(seed=walk_seed),
                max_steps=generated.spec.step_budget,
            ).run()
            assert result.outcome is None, result.outcome
