"""CS suite: behavioural models of the SCTBench ``CS/*`` programs.

These are the SV-COMP-derived pthread subjects of Cordeiro & Fischer (ICSE
2011) as packaged in SCTBench.  Each model reproduces the original subject's
*bug structure* — thread counts, synchronization pattern, and the ordering
constraints a schedule must satisfy to expose the bug — on the deterministic
runtime (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from repro.bench.common import busywork, join_all, locked_add, spawn_all, unprotected_add
from repro.runtime.program import Program, program


# ----------------------------------------------------------------------
# CS/account — unprotected deposit/withdraw on a shared balance
# ----------------------------------------------------------------------
def _deposit(t, balance, amount):
    yield from unprotected_add(t, balance, amount)


def _withdraw(t, balance, amount):
    yield from unprotected_add(t, balance, -amount)


@program("CS/account", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def account(t):
    """Lost-update race: deposit and withdraw both read-modify-write the
    balance without a lock, so one update can be overwritten."""
    balance = t.var("balance", 10)
    d = yield t.spawn(_deposit, balance, 5)
    w = yield t.spawn(_withdraw, balance, 3)
    yield t.join(d)
    yield t.join(w)
    final = yield t.read(balance)
    t.require(final == 12, f"balance {final} != 12: lost update")


# ----------------------------------------------------------------------
# CS/bluetooth_driver — the classic stop-vs-dispatch driver race
# ----------------------------------------------------------------------
def _bt_worker(t, stopping, stopped, pending):
    flag = yield t.read(stopping)
    if flag:
        return
    yield from unprotected_add(t, pending, 1)
    yield from busywork(t, pending, 3)
    is_stopped = yield t.read(stopped)
    t.require(not is_stopped, "device used after stop completed")
    yield from unprotected_add(t, pending, -1)


def _bt_stopper(t, stopping, stopped, pending):
    yield t.write(stopping, 1)
    yield from unprotected_add(t, pending, -1)
    remaining = yield t.read(pending)
    if remaining == 0:
        yield t.write(stopped, 1)


@program("CS/bluetooth_driver", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def bluetooth_driver(t):
    """Qadeer-Wu Bluetooth driver model: the worker passes the ``stopping``
    check, the stopper then completes the stop, and the worker touches the
    stopped device."""
    stopping = t.var("stopping", 0)
    stopped = t.var("stopped", 0)
    pending = t.var("pendingIo", 1)
    worker = yield t.spawn(_bt_worker, stopping, stopped, pending)
    stopper = yield t.spawn(_bt_stopper, stopping, stopped, pending)
    yield t.join(worker)
    yield t.join(stopper)


# ----------------------------------------------------------------------
# CS/carter01 and CS/deadlock01 — ABBA mutex deadlocks
# ----------------------------------------------------------------------
def _carter_ab(t, ma, mb, data):
    yield t.lock(ma)
    yield from unprotected_add(t, data, 1)
    yield t.lock(mb)
    yield from unprotected_add(t, data, 1)
    yield t.unlock(mb)
    yield t.unlock(ma)


def _carter_ba(t, ma, mb, data):
    yield t.lock(mb)
    yield from unprotected_add(t, data, 2)
    yield t.lock(ma)
    yield from unprotected_add(t, data, 2)
    yield t.unlock(ma)
    yield t.unlock(mb)


@program("CS/carter01", bug_kinds=("deadlock",), suite="CS", mc_supported=True)
def carter01(t):
    """ABBA deadlock: one thread takes A then B, the other B then A, with
    shared-data updates stretching the deadlock window."""
    ma = t.mutex("A")
    mb = t.mutex("B")
    data = t.var("data", 0)
    h1 = yield t.spawn(_carter_ab, ma, mb, data)
    h2 = yield t.spawn(_carter_ba, ma, mb, data)
    yield t.join(h1)
    yield t.join(h2)


def _dl_ab(t, ma, mb):
    yield t.lock(ma)
    yield t.lock(mb)
    yield t.unlock(mb)
    yield t.unlock(ma)


def _dl_ba(t, ma, mb):
    yield t.lock(mb)
    yield t.lock(ma)
    yield t.unlock(ma)
    yield t.unlock(mb)


@program("CS/deadlock01", bug_kinds=("deadlock",), suite="CS", mc_supported=True)
def deadlock01(t):
    """Minimal ABBA deadlock between two threads and two mutexes."""
    ma = t.mutex("A")
    mb = t.mutex("B")
    h1 = yield t.spawn(_dl_ab, ma, mb)
    h2 = yield t.spawn(_dl_ba, ma, mb)
    yield t.join(h1)
    yield t.join(h2)


# ----------------------------------------------------------------------
# CS/circular_buffer — unprotected single-producer/single-consumer ring
# ----------------------------------------------------------------------
_RING = 4


def _cb_sender(t, slots, head, count):
    for i in range(1, _RING + 1):
        position = yield t.read(head)
        # Publication bug: occupancy is bumped before the slot is filled,
        # so a concurrent receiver can drain an empty slot.
        yield from unprotected_add(t, count, 1)
        yield t.write(slots[position % _RING], i)
        yield t.write(head, position + 1)


def _cb_receiver(t, slots, tail, count):
    received = 0
    for _ in range(_RING):
        available = yield t.read(count)
        if available <= received:
            continue
        position = yield t.read(tail)
        value = yield t.read(slots[position % _RING])
        yield t.write(tail, position + 1)
        t.require(value == position + 1, f"slot {position}: got {value}")
        received += 1


@program("CS/circular_buffer", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def circular_buffer(t):
    """SPSC ring buffer with unsynchronized count/head/tail: the receiver can
    observe the count before the slot write lands and read a stale slot."""
    slots = [t.var(f"slot{i}", 0) for i in range(_RING)]
    head = t.var("head", 0)
    tail = t.var("tail", 0)
    count = t.var("count", 0)
    s = yield t.spawn(_cb_sender, slots, head, count)
    r = yield t.spawn(_cb_receiver, slots, tail, count)
    yield t.join(s)
    yield t.join(r)


# ----------------------------------------------------------------------
# CS/lazy01 — both increments land before the guarded check
# ----------------------------------------------------------------------
def _lazy_inc(t, mutex, data, delta):
    yield from locked_add(t, mutex, data, delta)


def _lazy_check(t, mutex, data):
    yield t.lock(mutex)
    value = yield t.read(data)
    yield t.unlock(mutex)
    t.require(value != 3, "observed data == 3")


@program("CS/lazy01", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def lazy01(t):
    """Three lock-disciplined threads; the assertion fires only when both
    increments are scheduled before the checking thread's critical section."""
    mutex = t.mutex("m")
    data = t.var("data", 0)
    h1 = yield t.spawn(_lazy_inc, mutex, data, 1)
    h2 = yield t.spawn(_lazy_inc, mutex, data, 2)
    h3 = yield t.spawn(_lazy_check, mutex, data)
    yield from join_all(t, [h1, h2, h3])


# ----------------------------------------------------------------------
# CS/queue — racy enqueue/dequeue counters
# ----------------------------------------------------------------------
def _q_enqueue(t, slots, count):
    for i, slot in enumerate(slots):
        yield t.write(slot, i + 1)
        yield from unprotected_add(t, count, 1)


def _q_dequeue(t, slots, count, taken):
    for slot in slots:
        available = yield t.read(count)
        if available > 0:
            yield t.read(slot)
            yield from unprotected_add(t, count, -1)
            yield from unprotected_add(t, taken, 1)


@program("CS/queue", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def queue(t):
    """Enqueue and dequeue race on the element count: a lost update leaves
    the final count inconsistent with the number of dequeued items."""
    slots = [t.var(f"q{i}", 0) for i in range(2)]
    count = t.var("count", 0)
    taken = t.var("taken", 0)
    e = yield t.spawn(_q_enqueue, slots, count)
    d = yield t.spawn(_q_dequeue, slots, count, taken)
    yield t.join(e)
    yield t.join(d)
    final = yield t.read(count)
    got = yield t.read(taken)
    t.require(final == 2 - got, f"count {final} inconsistent with {got} dequeues")


# ----------------------------------------------------------------------
# CS/reorder_n — the paper's running example (Figure 1)
# ----------------------------------------------------------------------
def _reorder_setter(t, a, b):
    yield t.write(a, 1)
    yield t.write(b, -1)


def _reorder_checker(t, a, b):
    va = yield t.read(a)
    vb = yield t.read(b)
    t.require(
        (va == 0 and vb == 0) or (va == 1 and vb == -1),
        f"inconsistent snapshot a={va}, b={vb}",
    )


def make_reorder(n: int) -> Program:
    """``n`` setter threads write (a, b) = (1, -1); one checker asserts it
    never observes a half-done update.  The bug needs the checker's read of
    ``a`` to see a setter write while its read of ``b`` sees the initial
    value — depth ≥ n+1 for PCT, trivial for a reads-from constraint."""

    @program(f"CS/reorder_{n}", bug_kinds=("assertion",), suite="CS")
    def reorder(t):
        a = t.var("a", 0)
        b = t.var("b", 0)
        yield from spawn_all(t, _reorder_setter, n, a, b)
        yield t.spawn(_reorder_checker, a, b)

    return reorder


# ----------------------------------------------------------------------
# CS/stack — push/pop race through an unprotected top-of-stack counter
# ----------------------------------------------------------------------
def _stack_push(t, slots, top):
    for i, slot in enumerate(slots):
        yield from unprotected_add(t, top, 1)
        yield t.write(slot, i + 1)


def _stack_pop(t, slots, top):
    for _ in slots:
        size = yield t.read(top)
        if size > 0:
            value = yield t.read(slots[size - 1])
            t.require(value != 0, f"popped uninitialised slot {size - 1}")
            yield from unprotected_add(t, top, -1)


@program("CS/stack", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def stack(t):
    """The pop thread can observe the incremented top before the pushed
    value is written and pop an uninitialised slot."""
    slots = [t.var(f"s{i}", 0) for i in range(2)]
    top = t.var("top", 0)
    pusher = yield t.spawn(_stack_push, slots, top)
    popper = yield t.spawn(_stack_pop, slots, top)
    yield t.join(pusher)
    yield t.join(popper)


# ----------------------------------------------------------------------
# CS/token_ring — unprotected token increments around a ring
# ----------------------------------------------------------------------
def _token_pass(t, token):
    yield from busywork(t, token, 1)
    yield from unprotected_add(t, token, 1)


@program("CS/token_ring", bug_kinds=("assertion",), suite="CS", mc_supported=True)
def token_ring(t):
    """Three stations each increment the token read-modify-write without a
    lock; a lost update leaves the ring short of a full revolution."""
    token = t.var("token", 0)
    handles = yield from spawn_all(t, _token_pass, 3, token)
    yield from join_all(t, handles)
    final = yield t.read(token)
    t.require(final == 3, f"token {final} != 3 after one revolution")


# ----------------------------------------------------------------------
# CS/twostage_n — two-phase update with a reader between the stages
# ----------------------------------------------------------------------
def _twostage_worker(t, m1, m2, data1, data2):
    yield t.lock(m1)
    yield t.write(data1, 1)
    yield t.unlock(m1)
    yield t.lock(m2)
    value = yield t.read(data1)
    yield t.write(data2, value + 1)
    yield t.unlock(m2)


def _twostage_reader(t, m1, m2, data1, data2):
    yield t.lock(m1)
    first = yield t.read(data1)
    yield t.unlock(m1)
    yield t.lock(m2)
    second = yield t.read(data2)
    yield t.unlock(m2)
    t.require(first == 0 or second == first + 1, f"saw stage1={first} stage2={second}")


def make_twostage(n: int, base_name: str | None = None) -> Program:
    """``n`` workers perform a two-stage update under two locks; the reader
    must be interleaved after some worker's stage 1 and before *every*
    worker's stage 2 — the twostage_n bug of SCTBench."""
    name = base_name or (f"CS/twostage_{n}" if n != 1 else "CS/twostage")

    @program(name, bug_kinds=("assertion",), suite="CS", mc_supported=(n == 1))
    def twostage(t):
        m1 = t.mutex("m1")
        m2 = t.mutex("m2")
        data1 = t.var("data1", 0)
        data2 = t.var("data2", 0)
        yield from spawn_all(t, _twostage_worker, n, m1, m2, data1, data2)
        yield t.spawn(_twostage_reader, m1, m2, data1, data2)

    return twostage


# ----------------------------------------------------------------------
# CS/wronglock — two threads protect the same data with different locks
# ----------------------------------------------------------------------
def _wl_right(t, ma, data):
    yield from locked_add(t, ma, data, 1)


def _wl_wrong(t, mb, data):
    yield t.lock(mb)
    value = yield t.read(data)
    yield from busywork(t, data, 1)
    yield t.write(data, value + 1)
    yield t.unlock(mb)


def make_wronglock(n: int, name: str) -> Program:
    """``n`` threads update under lock A while one thread uses lock B for
    the same variable: mutual exclusion silently fails."""

    @program(name, bug_kinds=("assertion",), suite="CS", mc_supported=(n == 1))
    def wronglock(t):
        ma = t.mutex("A")
        mb = t.mutex("B")
        data = t.var("data", 0)
        handles = yield from spawn_all(t, _wl_right, n, ma, data)
        wrong = yield t.spawn(_wl_wrong, mb, data)
        yield from join_all(t, [*handles, wrong])
        final = yield t.read(data)
        t.require(final == n + 1, f"data {final} != {n + 1}: lock discipline broken")

    return wronglock


def cs_programs() -> list[Program]:
    """All 22 CS/* models in Appendix B order."""
    return [
        account,
        bluetooth_driver,
        carter01,
        circular_buffer,
        deadlock01,
        lazy01,
        queue,
        make_reorder(10),
        make_reorder(100),
        make_reorder(20),
        make_reorder(3),
        make_reorder(4),
        make_reorder(5),
        make_reorder(50),
        stack,
        token_ring,
        make_twostage(1),
        make_twostage(100),
        make_twostage(20),
        make_twostage(50),
        make_wronglock(1, "CS/wronglock"),
        make_wronglock(3, "CS/wronglock_3"),
    ]
