"""Splash2 suite: models of the barnes / fft / lu kernels (Woo et al.,
ISCA 1995) as carried by SCTBench — parallel numeric kernels whose
synchronization defects surface as shallow-to-moderate data races."""

from __future__ import annotations

from repro.bench.common import busywork, unprotected_add
from repro.runtime.program import program


# ----------------------------------------------------------------------
# Splash2/barnes — racy body-count accumulation in the tree build
# ----------------------------------------------------------------------
def _barnes_loader(t, cell_count, bodies):
    for _ in range(bodies):
        yield from busywork(t, cell_count, 1)
        yield from unprotected_add(t, cell_count, 1)


@program("Splash2/barnes", bug_kinds=("assertion",), suite="Splash2")
def barnes(t):
    """Two loader threads insert bodies into the same tree cell; the
    unprotected count update loses bodies."""
    cell_count = t.var("cell_count", 0)
    l1 = yield t.spawn(_barnes_loader, cell_count, 2)
    l2 = yield t.spawn(_barnes_loader, cell_count, 2)
    yield t.join(l1)
    yield t.join(l2)
    total = yield t.read(cell_count)
    t.require(total == 4, f"tree holds {total} bodies, expected 4")


# ----------------------------------------------------------------------
# Splash2/fft — publication race in the transpose phase
# ----------------------------------------------------------------------
def _fft_transposer(t, done, row):
    # Publication in the wrong order: the flag is raised before the data.
    yield t.write(done, 1)
    yield t.write(row, 42)


def _fft_reader(t, done, row):
    ready = yield t.read(done)
    value = yield t.read(row)
    if ready:
        t.require(value == 42, f"consumed unpublished row: {value}")


@program("Splash2/fft", bug_kinds=("assertion",), suite="Splash2")
def fft(t):
    """The transpose publishes its completion flag before the data row; a
    peer that trusts the flag reads garbage.  Found immediately by every
    tool."""
    done = t.var("done", 0)
    row = t.var("row", 0)
    w = yield t.spawn(_fft_transposer, done, row)
    r = yield t.spawn(_fft_reader, done, row)
    yield t.join(w)
    yield t.join(r)


# ----------------------------------------------------------------------
# Splash2/lu — lost update on the pivot block
# ----------------------------------------------------------------------
def _lu_eliminator(t, pivot, delta):
    yield from unprotected_add(t, pivot, delta)


@program("Splash2/lu", bug_kinds=("assertion",), suite="Splash2")
def lu(t):
    """Both eliminator threads update the shared pivot block without
    holding the block lock; one update is lost."""
    pivot = t.var("pivot", 0)
    e1 = yield t.spawn(_lu_eliminator, pivot, 3)
    e2 = yield t.spawn(_lu_eliminator, pivot, 5)
    yield t.join(e1)
    yield t.join(e2)
    value = yield t.read(pivot)
    t.require(value == 8, f"pivot {value} != 8 after elimination")


def splash2_programs():
    """All 3 Splash2 models in Appendix B order."""
    return [barnes, fft, lu]
