"""The ``py:`` namespace: real-Python ``threading`` targets.

These are genuine stdlib-concurrent programs — ``threading.Thread``,
``Lock``/``RLock``/``Condition``/``Semaphore``/``Barrier``, ``queue.Queue``
and ``concurrent.futures.ThreadPoolExecutor`` — run under the substrate
(:mod:`repro.substrate`), which serializes their real OS threads through
the deterministic executor.  Each buggy target plants one concurrency bug
reachable by interleaving alone; the two ``*_locked``/``*_buffer`` controls
are correctly synchronized and must never produce a finding.

Shared state is opted into observation with :func:`repro.substrate.track`
(attribute tracking) or ``track_globals`` (the settrace observer for
module-level globals, exercised by ``py:global_counter`` on this module's
own ``_G_COUNT``).

Like ``gen:`` scenarios, ``py:`` programs resolve by *name* through
:func:`repro.bench.registry.get`, which is what makes them first-class
targets for campaigns, parallel workers, replay, triage and the CLI —
every layer rebuilds the identical program from its name.
"""

from __future__ import annotations

import concurrent.futures
import queue
import sys
import threading
import time
from functools import lru_cache

from repro.runtime.program import Program
from repro.substrate import py_program, track

#: Name prefix of the real-Python namespace.
PY_PREFIX = "py:"

#: Module-level global for the settrace-observer target.
_G_COUNT = 0


class _Cell:
    """A plain attribute bag; targets opt instances in via ``track``."""


# ----------------------------------------------------------------------
# Targets (entry per program; each entry owns all of its state)
# ----------------------------------------------------------------------
def _counter_race() -> None:
    """Unlocked read-modify-write on a shared counter (lost update)."""
    c = track(_Cell(), "counter")
    c.value = 0

    def worker():
        for _ in range(2):
            v = c.value
            c.value = v + 1

    workers = [threading.Thread(target=worker) for _ in range(2)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert c.value == 4, f"lost update: counter is {c.value}, expected 4"


def _counter_locked() -> None:
    """Control: the same counter with the increment under a lock."""
    c = track(_Cell(), "counter")
    c.value = 0
    lock = threading.Lock()

    def worker():
        for _ in range(2):
            with lock:
                c.value = c.value + 1

    workers = [threading.Thread(target=worker) for _ in range(2)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert c.value == 4, f"locked counter is {c.value}, expected 4"


def _dcl_singleton() -> None:
    """Unsafe publication: the instance escapes before initialization."""
    h = track(_Cell(), "holder")
    h.obj = None
    h.ready = 0
    lock = threading.Lock()

    def writer():
        with lock:
            if h.obj is None:
                h.obj = object()  # published...
                h.ready = 1  # ...before initialization completes

    def reader():
        if h.obj is not None:  # unsynchronized fast path
            assert h.ready == 1, "observed a published but uninitialized singleton"

    t1 = threading.Thread(target=writer)
    t2 = threading.Thread(target=reader)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _queue_toctou() -> None:
    """``empty()`` check then ``get_nowait()``: classic check-then-act."""
    q = queue.Queue()
    for item in range(2):
        q.put(item)
    go = threading.Event()

    def consumer():
        go.wait()
        while not q.empty():  # the check and the get are not atomic
            q.get_nowait()  # raises queue.Empty when raced

    consumers = [threading.Thread(target=consumer) for _ in range(2)]
    for t in consumers:
        t.start()
    go.set()
    for t in consumers:
        t.join()


def _abba_deadlock() -> None:
    """Two locks taken in opposite orders."""
    a = threading.Lock()
    b = threading.Lock()

    def one():
        with a:
            with b:
                pass

    def two():
        with b:
            with a:
                pass

    t1 = threading.Thread(target=one)
    t2 = threading.Thread(target=two)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _bounded_buffer() -> None:
    """Control: condition-variable producer/consumer, correctly guarded."""
    buf: list[int] = []
    cond = threading.Condition()
    consumed: list[int] = []

    def producer():
        for item in range(3):
            with cond:
                while len(buf) >= 2:
                    cond.wait()
                buf.append(item)
                cond.notify_all()

    def consumer():
        for _ in range(3):
            with cond:
                while not buf:
                    cond.wait()
                consumed.append(buf.pop(0))
                cond.notify_all()

    t1 = threading.Thread(target=producer)
    t2 = threading.Thread(target=consumer)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert consumed == [0, 1, 2], f"buffer reordered items: {consumed}"


def _lost_signal() -> None:
    """The flag is checked outside the lock, so the notify can be lost."""
    cond = threading.Condition(threading.Lock())
    state = track(_Cell(), "state")
    state.ready = 0

    def consumer():
        if not state.ready:  # checked outside the lock (the bug)
            with cond:
                cond.wait()  # waits forever if the signal already fired

    def producer():
        with cond:
            state.ready = 1
            cond.notify()

    t1 = threading.Thread(target=consumer)
    t2 = threading.Thread(target=producer)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _fanin_futures() -> None:
    """ThreadPoolExecutor workers race an unlocked accumulator."""
    c = track(_Cell(), "sum")
    c.value = 0

    def add(n):
        v = c.value
        c.value = v + n
        return n

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=2, thread_name_prefix="pool"
    ) as pool:
        futures = [pool.submit(add, n) for n in (1, 2, 3)]
        total = sum(f.result() for f in futures)
    assert total == 6, f"futures lost a result: {total}"
    assert c.value == 6, f"lost update in pool: {c.value}, expected 6"


def _barrier_phase() -> None:
    """One party reads the other's slot on the wrong side of the barrier."""
    bar = threading.Barrier(2)
    slots = track(_Cell(), "slots")
    slots.a = None
    slots.b = None

    def left():
        slots.a = "A"
        bar.wait()
        assert slots.b == "B", "left saw the slot before right wrote it"

    def right():
        peeked = slots.a  # read before the barrier (the bug)
        bar.wait()
        slots.b = "B"
        assert peeked == "A", "right peeked before left wrote"

    t1 = threading.Thread(target=left)
    t2 = threading.Thread(target=right)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _rlock_cache() -> None:
    """Version stamped before the value, and read outside the lock."""
    lock = threading.RLock()
    cache = track(_Cell(), "cache")
    cache.value = 0
    cache.version = 0

    def _store(n):
        with lock:  # reentrant: refresh already holds it
            cache.value = n

    def refresh():
        for n in (1, 2):
            cache.version = n  # stamped outside the lock, before the value
            with lock:
                _store(n)

    def check():
        ver = cache.version  # read without the lock
        with lock:
            val = cache.value
        assert ver <= val, f"version {ver} ahead of value {val}"

    t1 = threading.Thread(target=refresh)
    t2 = threading.Thread(target=check)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _sem_pool() -> None:
    """The resource is touched before the permit is acquired."""
    sem = threading.BoundedSemaphore(1)
    res = track(_Cell(), "res")
    res.busy = 0

    def worker():
        res.busy = res.busy + 1  # before acquire (the bug)
        sem.acquire()
        assert res.busy <= 1, f"pool overcommitted: {res.busy} users of 1 permit"
        res.busy = res.busy - 1
        sem.release()

    workers = [threading.Thread(target=worker) for _ in range(2)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()


def _global_counter() -> None:
    """Unlocked ``+=`` on a module-level global (settrace observer)."""
    global _G_COUNT
    _G_COUNT = 0

    def worker():
        global _G_COUNT
        for _ in range(2):
            _G_COUNT += 1

    workers = [threading.Thread(target=worker) for _ in range(2)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert _G_COUNT == 4, f"lost global update: {_G_COUNT}, expected 4"


def _single_notify() -> None:
    """``notify()`` where ``notify_all()`` is needed: one waiter starves."""
    cond = threading.Condition()
    state = track(_Cell(), "state")
    state.ready = 0

    def consumer():
        with cond:
            while not state.ready:
                cond.wait()

    def producer():
        with cond:
            state.ready = 1
            cond.notify()  # wakes only one of the two waiters (the bug)

    threads = [
        threading.Thread(target=consumer),
        threading.Thread(target=consumer),
        threading.Thread(target=producer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


_ = (sys, time)  # imported for targets' use under patching; keep linters quiet


@lru_cache(maxsize=1)
def py_programs() -> dict[str, Program]:
    """Every ``py:`` target, keyed by its full registry name."""
    this_module = sys.modules[__name__]
    entries = [
        py_program(
            "py:counter_race",
            _counter_race,
            bug_kinds=("assertion",),
            description="unlocked shared counter loses an update",
        ),
        py_program(
            "py:counter_locked",
            _counter_locked,
            description="control: lock-guarded counter, no bug",
        ),
        py_program(
            "py:dcl_singleton",
            _dcl_singleton,
            bug_kinds=("assertion",),
            description="instance published before initialization",
        ),
        py_program(
            "py:queue_toctou",
            _queue_toctou,
            bug_kinds=("exception",),
            description="queue.empty() check races get_nowait()",
        ),
        py_program(
            "py:abba_deadlock",
            _abba_deadlock,
            bug_kinds=("deadlock",),
            description="two locks acquired in opposite orders",
        ),
        py_program(
            "py:bounded_buffer",
            _bounded_buffer,
            description="control: condition-guarded producer/consumer, no bug",
        ),
        py_program(
            "py:lost_signal",
            _lost_signal,
            bug_kinds=("deadlock",),
            description="flag checked outside the lock loses the notify",
        ),
        py_program(
            "py:fanin_futures",
            _fanin_futures,
            bug_kinds=("assertion",),
            description="ThreadPoolExecutor workers race an accumulator",
        ),
        py_program(
            "py:barrier_phase",
            _barrier_phase,
            bug_kinds=("assertion",),
            description="slot read on the wrong side of a barrier",
        ),
        py_program(
            "py:rlock_cache",
            _rlock_cache,
            bug_kinds=("assertion",),
            description="version stamped before value under a reentrant lock",
        ),
        py_program(
            "py:sem_pool",
            _sem_pool,
            bug_kinds=("assertion",),
            description="resource touched before the semaphore permit",
        ),
        py_program(
            "py:global_counter",
            _global_counter,
            bug_kinds=("assertion",),
            description="unlocked += on a module global (settrace observer)",
            track_globals=[(this_module, {"_G_COUNT"})],
        ),
        py_program(
            "py:single_notify",
            _single_notify,
            bug_kinds=("deadlock",),
            description="notify() instead of notify_all() starves a waiter",
        ),
    ]
    return {prog.name: prog for prog in entries}


def py_names() -> list[str]:
    """All ``py:`` target names, alphabetical."""
    return sorted(py_programs())


def get(name: str) -> Program:
    """Resolve one ``py:`` name; unknown names get a did-you-mean KeyError."""
    programs = py_programs()
    prog = programs.get(name)
    if prog is None:
        import difflib

        close = difflib.get_close_matches(name, programs, n=3, cutoff=0.4)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise KeyError(
            f"unknown real-Python target {name!r}{hint} "
            f"(see repro.bench.pybench.py_names())"
        )
    return prog
