"""Reusable building blocks for benchmark programs.

Each helper is a sub-generator used with ``yield from``; the executor follows
``yield from`` delegation when deriving code-location labels, so events
issued inside a helper get the *helper's* source line — shared across all
call sites, exactly like a C helper function in the original benchmarks.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.api import Api
from repro.runtime.objects import Mutex, SharedVar


def locked_add(t: Api, mutex: Mutex, var: SharedVar, delta: Any):
    """``lock; var += delta; unlock`` — the canonical protected update."""
    yield t.lock(mutex)
    old = yield t.read(var)
    yield t.write(var, old + delta)
    yield t.unlock(mutex)
    return old + delta


def locked_write(t: Api, mutex: Mutex, var: SharedVar, value: Any):
    """``lock; var = value; unlock``."""
    yield t.lock(mutex)
    yield t.write(var, value)
    yield t.unlock(mutex)


def locked_read(t: Api, mutex: Mutex, var: SharedVar):
    """``lock; v = var; unlock; return v``."""
    yield t.lock(mutex)
    value = yield t.read(var)
    yield t.unlock(mutex)
    return value


def unprotected_add(t: Api, var: SharedVar, delta: Any):
    """A racy read-then-write increment (the classic lost-update pattern)."""
    old = yield t.read(var)
    yield t.write(var, old + delta)
    return old + delta


def busywork(t: Api, var: SharedVar, rounds: int):
    """``rounds`` benign shared reads: padding that stretches the window
    between the interesting events, like the real benchmarks' I/O and
    computation phases.  Adds events (and rf pairs) without affecting
    program logic."""
    for _ in range(rounds):
        yield t.read(var)


def spawn_all(t: Api, fn, count: int, *args):
    """Spawn ``count`` copies of ``fn(*args)``; returns their handles."""
    handles = []
    for _ in range(count):
        handle = yield t.spawn(fn, *args)
        handles.append(handle)
    return handles


def join_all(t: Api, handles):
    """Join every handle in order."""
    for handle in handles:
        yield t.join(handle)
