"""Chess suite: models of the CHESS work-stealing-queue subjects
(Musuvathi et al., OSDI 2008).

All four variants share the same skeleton — an owner thread pushing and
popping at the tail of a deque while a thief steals from the head — and
differ, like the originals, in which synchronization primitive guards the
take: plain loads/stores (WorkStealQueue), interlocked CAS on the head
(Interlocked*), or a per-item state array (State*).  The oracle is the
work-stealing invariant: every item is executed exactly once."""

from __future__ import annotations

from repro.bench.common import join_all, unprotected_add
from repro.runtime.program import program

_ITEMS = 2


def _take(t, takes, item_value):
    """Mark one item as executed (racy increment of its take counter)."""
    yield from unprotected_add(t, takes[item_value - 1], 1)


def _check_takes(t, takes):
    """The exactly-once invariant, asserted by main after both workers."""
    for i, counter in enumerate(takes):
        count = yield t.read(counter)
        t.require(count <= 1, f"item {i + 1} executed {count} times")


# ----------------------------------------------------------------------
# Chess/WorkStealQueue — plain loads/stores (the THE-protocol race)
# ----------------------------------------------------------------------
def _wsq_owner(t, items, head, tail, takes):
    for i, slot in enumerate(items):
        yield t.write(slot, i + 1)
        yield t.write(tail, i + 1)
    for _ in items:
        position = yield t.read(tail)
        position -= 1
        yield t.write(tail, position)
        limit = yield t.read(head)
        if limit <= position:
            value = yield t.read(items[position])
            yield from _take(t, takes, value)
        else:
            yield t.write(tail, limit)


def _wsq_thief(t, items, head, tail, takes):
    for _ in items:
        position = yield t.read(head)
        limit = yield t.read(tail)
        if position < limit:
            value = yield t.read(items[position])
            yield t.write(head, position + 1)
            yield from _take(t, takes, value)


@program("Chess/WorkStealQueue", bug_kinds=("assertion",), suite="Chess")
def workstealqueue(t):
    """The classic unsynchronized deque: when one item remains, pop and
    steal can both pass their emptiness checks and take the same item."""
    items = [t.var(f"item{i}", 0) for i in range(_ITEMS)]
    takes = [t.var(f"take{i}", 0) for i in range(_ITEMS)]
    head = t.var("head", 0)
    tail = t.var("tail", 0)
    o = yield t.spawn(_wsq_owner, items, head, tail, takes)
    s = yield t.spawn(_wsq_thief, items, head, tail, takes)
    yield from join_all(t, [o, s])
    yield from _check_takes(t, takes)


# ----------------------------------------------------------------------
# Chess/InterlockedWorkStealQueue — CAS-guarded steal, unguarded pop
# ----------------------------------------------------------------------
def _iwsq_owner(t, items, head, tail, takes):
    for i, slot in enumerate(items):
        yield t.write(slot, i + 1)
        yield t.write(tail, i + 1)
    for _ in items:
        position = yield t.read(tail)
        position -= 1
        if position < 0:
            break
        yield t.write(tail, position)
        # The interlocked variant's pop trusts the tail alone — the steal's
        # CAS protects thieves from each other, not from the owner.
        value = yield t.read(items[position])
        if value:
            yield from _take(t, takes, value)


def _iwsq_thief(t, items, head, tail, takes):
    for _ in items:
        position = yield t.read(head)
        limit = yield t.read(tail)
        if position < limit:
            won = yield t.cas(head, position, position + 1)
            if won:
                value = yield t.read(items[position])
                yield from _take(t, takes, value)


@program("Chess/InterlockedWorkStealQueue", bug_kinds=("assertion",), suite="Chess")
def interlocked_workstealqueue(t):
    """CAS serializes thieves, but the owner's pop never re-checks the head:
    the last item is routinely taken by both sides — a very wide race."""
    items = [t.var(f"item{i}", 0) for i in range(_ITEMS)]
    takes = [t.var(f"take{i}", 0) for i in range(_ITEMS)]
    head = t.var("head", 0)
    tail = t.var("tail", 0)
    o = yield t.spawn(_iwsq_owner, items, head, tail, takes)
    s = yield t.spawn(_iwsq_thief, items, head, tail, takes)
    yield from join_all(t, [o, s])
    yield from _check_takes(t, takes)


# ----------------------------------------------------------------------
# Chess/StateWorkStealQueue — per-item state array, check-then-act
# ----------------------------------------------------------------------
def _swsq_worker(t, states, takes, order):
    for index in order:
        state = yield t.read(states[index])
        if state == 0:
            yield t.write(states[index], 1)
            yield from _take(t, takes, index + 1)


@program("Chess/StateWorkStealQueue", bug_kinds=("assertion",), suite="Chess")
def state_workstealqueue(t):
    """Item ownership tracked in a state array with a non-atomic
    check-then-act: two workers can both claim the same item."""
    states = [t.var(f"state{i}", 0) for i in range(_ITEMS)]
    takes = [t.var(f"take{i}", 0) for i in range(_ITEMS)]
    o = yield t.spawn(_swsq_worker, states, takes, list(range(_ITEMS)))
    s = yield t.spawn(_swsq_worker, states, takes, list(reversed(range(_ITEMS))))
    yield from join_all(t, [o, s])
    yield from _check_takes(t, takes)


# ----------------------------------------------------------------------
# Chess/InterlockedWorkStealQueueWithState — CAS states + stale size check
# ----------------------------------------------------------------------
def _iswsq_owner(t, states, takes, size):
    for index in range(_ITEMS):
        won = yield t.cas(states[index], 0, 1)
        if won:
            yield from unprotected_add(t, size, -1)
            yield from _take(t, takes, index + 1)


def _iswsq_thief(t, states, takes, size):
    for index in reversed(range(_ITEMS)):
        remaining = yield t.read(size)
        if remaining <= 0:
            return
        won = yield t.cas(states[index], 0, 1)
        if won:
            yield from unprotected_add(t, size, -1)
            yield from _take(t, takes, index + 1)


@program("Chess/InterlockedWorkStealQueueWithState", bug_kinds=("assertion",), suite="Chess")
def interlocked_workstealqueue_with_state(t):
    """Item states are CASed, but the shared size counter is maintained with
    plain read-modify-writes: a lost update corrupts the accounting that the
    final invariant checks."""
    states = [t.var(f"state{i}", 0) for i in range(_ITEMS)]
    takes = [t.var(f"take{i}", 0) for i in range(_ITEMS)]
    size = t.var("size", _ITEMS)
    o = yield t.spawn(_iswsq_owner, states, takes, size)
    s = yield t.spawn(_iswsq_thief, states, takes, size)
    yield from join_all(t, [o, s])
    yield from _check_takes(t, takes)
    remaining = yield t.read(size)
    taken = 0
    for counter in takes:
        taken += yield t.read(counter)
    t.require(remaining == _ITEMS - taken, f"size {remaining} vs {taken} takes")


def chess_programs():
    """All 4 Chess/* models in Appendix B order."""
    return [
        interlocked_workstealqueue,
        interlocked_workstealqueue_with_state,
        state_workstealqueue,
        workstealqueue,
    ]
