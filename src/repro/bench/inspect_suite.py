"""Inspect suite: models of the Inspect-runtime subjects (Yang et al.,
UUCS-08-004): boundedBuffer, ctrace-test and qsort_mt."""

from __future__ import annotations

from repro.bench.common import busywork, join_all, unprotected_add
from repro.runtime.program import program

_BUF = 2


# ----------------------------------------------------------------------
# Inspect_benchmarks/boundedBuffer — semaphore ring with racy indices
# ----------------------------------------------------------------------
def _bb_producer(t, slots, empty, full, in_index, value):
    yield t.acquire(empty)
    position = yield t.read(in_index)
    yield t.write(slots[position % _BUF], value)
    yield t.write(in_index, position + 1)
    yield t.release(full)


def _bb_consumer(t, slots, empty, full, out_index):
    for _ in range(2):
        yield t.acquire(full)
        position = yield t.read(out_index)
        value = yield t.read(slots[position % _BUF])
        yield t.write(out_index, position + 1)
        yield t.release(empty)
        t.require(value != 0, f"consumed empty slot at {position}")


@program("Inspect_benchmarks/boundedBuffer", bug_kinds=("assertion",), suite="Inspect")
def bounded_buffer(t):
    """Semaphores guard occupancy but not the *indices*: two producers can
    write the same slot (one value lost, one slot stays empty), so the
    consumer can drain a slot nothing ever filled."""
    slots = [t.var(f"buf{i}", 0) for i in range(_BUF)]
    empty = t.sem("empty", _BUF)
    full = t.sem("full", 0)
    in_index = t.var("in", 0)
    out_index = t.var("out", 0)
    p1 = yield t.spawn(_bb_producer, slots, empty, full, in_index, 7)
    p2 = yield t.spawn(_bb_producer, slots, empty, full, in_index, 9)
    c = yield t.spawn(_bb_consumer, slots, empty, full, out_index)
    yield from join_all(t, [p1, p2, c])


# ----------------------------------------------------------------------
# Inspect_benchmarks/ctrace-test — unsynchronized trace buffer counter
# ----------------------------------------------------------------------
def _ctrace_logger(t, counter):
    yield from unprotected_add(t, counter, 1)


@program("Inspect_benchmarks/ctrace-test", bug_kinds=("assertion",), suite="Inspect", mc_supported=True)
def ctrace_test(t):
    """The ctrace logging library bumps its event counter without a lock;
    two loggers lose an update almost immediately."""
    counter = t.var("events", 0)
    l1 = yield t.spawn(_ctrace_logger, counter)
    l2 = yield t.spawn(_ctrace_logger, counter)
    yield t.join(l1)
    yield t.join(l2)
    total = yield t.read(counter)
    t.require(total == 2, f"logged {total} events, expected 2")


# ----------------------------------------------------------------------
# Inspect_benchmarks/qsort_mt — lost wakeup deadlock in the work pool
# ----------------------------------------------------------------------
def _qsort_worker(t, mutex, cond, work, taken):
    yield t.lock(mutex)
    pending = yield t.read(work)
    if pending == 0:
        # Missed-wakeup window: if the master published work and signalled
        # between our check and this wait, the signal is lost forever.
        yield t.wait(cond, mutex)
    remaining = yield t.read(work)
    if remaining > 0:
        yield t.write(work, remaining - 1)
        yield from unprotected_add(t, taken, 1)
    yield t.unlock(mutex)


def _qsort_master(t, mutex, cond, work, progress):
    # The 0.9-era qsort_mt publishes work and signals *without* taking the
    # pool mutex — the defect at the heart of the hang.
    for _ in range(2):
        yield from busywork(t, progress, 2)
        old = yield t.read(work)
        yield t.write(work, old + 1)
        yield t.signal(cond)
    yield from busywork(t, progress, 2)


@program("Inspect_benchmarks/qsort_mt", bug_kinds=("deadlock",), suite="Inspect")
def qsort_mt(t):
    """Multi-threaded quicksort work pool: the master signals without the
    mutex, so a worker that checked the queue just before the signal sleeps
    forever — the process hangs with work pending."""
    mutex = t.mutex("pool")
    cond = t.cond("work_ready")
    work = t.var("work", 0)
    taken = t.var("taken", 0)
    progress = t.var("progress", 0)
    w1 = yield t.spawn(_qsort_worker, mutex, cond, work, taken)
    w2 = yield t.spawn(_qsort_worker, mutex, cond, work, taken)
    m = yield t.spawn(_qsort_master, mutex, cond, work, progress)
    yield from join_all(t, [m, w1, w2])


def inspect_programs():
    """All 3 Inspect models in Appendix B order."""
    return [bounded_buffer, ctrace_test, qsort_mt]
