"""RADBench suite: models of the browser-engine subjects (Jalbert et al.,
HotPar 2011) evaluated by the paper — bug4, bug5 and bug6."""

from __future__ import annotations

from repro.bench.common import busywork, join_all, unprotected_add
from repro.runtime.program import program


# ----------------------------------------------------------------------
# RADBench/bug4 — SpiderMonkey GC vs mutator straddle (hard)
# ----------------------------------------------------------------------
def _bug4_gc(t, gc_active, heap_state, noise):
    yield from unprotected_add(t, noise, 1)
    yield t.write(gc_active, 1)
    yield from busywork(t, noise, 4)
    yield t.write(heap_state, 2)  # heap is torn while the GC runs
    yield from busywork(t, noise, 4)
    yield t.write(heap_state, 0)
    yield t.write(gc_active, 0)


def _bug4_mutator(t, gc_active, heap_state, noise):
    active = yield t.read(gc_active)
    yield from unprotected_add(t, noise, 1)
    if active:
        return
    yield from busywork(t, noise, 3)
    state = yield t.read(heap_state)
    t.require(state != 2, "mutator touched a torn heap during GC")


@program("RADBench/bug4", bug_kinds=("assertion",), suite="RADBench")
def bug4(t):
    """The mutator samples ``gc_active`` before the collector raises it and
    then dereferences the heap exactly while it is torn — the two reads must
    straddle the collector's two writes, with noise traffic swelling the
    reads-from space around the bug."""
    gc_active = t.var("gc_active", 0)
    heap_state = t.var("heap_state", 0)
    noise = t.var("noise", 0)
    g = yield t.spawn(_bug4_gc, gc_active, heap_state, noise)
    m1 = yield t.spawn(_bug4_mutator, gc_active, heap_state, noise)
    m2 = yield t.spawn(_bug4_mutator, gc_active, heap_state, noise)
    yield from join_all(t, [g, m1, m2])


# ----------------------------------------------------------------------
# RADBench/bug5 — nested generation straddle (found by no evaluated tool)
# ----------------------------------------------------------------------
def _bug5_writer(t, gen, phase, commit, noise):
    for value in range(1, 4):
        yield from busywork(t, noise, 2)
        yield t.write(gen, value)
        yield from busywork(t, noise, 1)
        yield t.write(phase, value)
        yield from busywork(t, noise, 1)
        yield t.write(commit, value)


def _bug5_observer(t, gen, phase, commit, noise):
    g1 = yield t.read(gen)
    yield from busywork(t, noise, 2)
    p = yield t.read(phase)
    yield from busywork(t, noise, 2)
    c = yield t.read(commit)
    yield from busywork(t, noise, 1)
    g2 = yield t.read(gen)
    # Only an observer that catches generation g fully published, the next
    # phase half-published, and the commit lagging two generations trips it.
    t.require(not (g1 == 1 and p == 2 and c == 0 and g2 == 3), "torn triple-generation snapshot")


@program("RADBench/bug5", bug_kinds=("assertion",), suite="RADBench")
def bug5(t):
    """A four-way ordering chain across three generation variables: every
    one of the observer's four reads must land in its own one-event window
    of the writer's nine-write sequence.  Matches the paper's row where no
    evaluated tool finds the bug within budget."""
    gen = t.var("gen", 0)
    phase = t.var("phase", 0)
    commit = t.var("commit", 0)
    noise = t.var("noise", 0)
    w = yield t.spawn(_bug5_writer, gen, phase, commit, noise)
    o1 = yield t.spawn(_bug5_observer, gen, phase, commit, noise)
    o2 = yield t.spawn(_bug5_observer, gen, phase, commit, noise)
    yield from join_all(t, [w, o1, o2])


# ----------------------------------------------------------------------
# RADBench/bug6 — NSPR monitor ABBA deadlock
# ----------------------------------------------------------------------
def _bug6_dispatcher(t, monitor, io_lock, queue):
    yield t.lock(monitor)
    yield from unprotected_add(t, queue, 1)
    yield t.lock(io_lock)
    yield from unprotected_add(t, queue, 1)
    yield t.unlock(io_lock)
    yield t.unlock(monitor)


def _bug6_io(t, monitor, io_lock, queue):
    yield t.lock(io_lock)
    yield from unprotected_add(t, queue, -1)
    yield t.lock(monitor)
    yield from unprotected_add(t, queue, -1)
    yield t.unlock(monitor)
    yield t.unlock(io_lock)


@program("RADBench/bug6", bug_kinds=("deadlock",), suite="RADBench")
def bug6(t):
    """NSPR monitor vs. I/O lock taken in opposite orders by the dispatcher
    and the I/O thread: a classic ABBA hang."""
    monitor = t.mutex("monitor")
    io_lock = t.mutex("io")
    queue = t.var("queue", 0)
    d = yield t.spawn(_bug6_dispatcher, monitor, io_lock, queue)
    i = yield t.spawn(_bug6_io, monitor, io_lock, queue)
    yield t.join(d)
    yield t.join(i)


def radbench_programs():
    """All 3 RADBench models in Appendix B order."""
    return [bug4, bug5, bug6]
