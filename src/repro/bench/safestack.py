"""SafeStack: the hardest subject in either suite (paper Section 5.4).

A model of Dmitry Vyukov's lock-free "SafeStack" as packaged in SCTBench:
an index-linked free-list stack where ``pop`` reads the head and its next
pointer non-atomically before a CAS.  The famous ABA bug needs three
threads and a long, precisely interleaved window, which is why no evaluated
tool finds it within the paper's budget (all "-" in Appendix B, GenMC
errors).  Its large reads-from space is exactly why the paper uses it for
the RQ3 exploration-uniformity histogram (Figure 5).
"""

from __future__ import annotations

from repro.bench.common import join_all
from repro.runtime.program import program

_NODES = 3
_ROUNDS = 2
_CAS_RETRIES = 3


def _pop(t, head, nexts):
    """Racy pop: head and next are read in two separate loads before the
    CAS, so the head can be recycled in between (the ABA window)."""
    for _ in range(_CAS_RETRIES):
        top = yield t.read(head)
        if top < 0:
            return -1
        follower = yield t.read(nexts[top])
        swapped = yield t.cas(head, top, follower)
        if swapped:
            return top
    return -1


def _push(t, head, nexts, index, version):
    # The real SafeStack touches the node and global state on the way back
    # in; the extra shared traffic lengthens the recycle an ABA needs.
    yield t.add(version, 1)
    for _ in range(_CAS_RETRIES):
        top = yield t.read(head)
        yield t.write(nexts[index], top)
        swapped = yield t.cas(head, top, index)
        if swapped:
            return


def _safestack_worker(t, head, nexts, owners, version):
    for _ in range(_ROUNDS):
        index = yield from _pop(t, head, nexts)
        if index < 0:
            continue
        # Claim-and-release in back-to-back events: the exactly-once
        # violation is only observable in this one-event window, mirroring
        # the razor-thin corruption window of the original SafeStack.
        holder = yield t.add(owners[index], 1)
        t.require(holder == 0, f"node {index} popped while already owned")
        yield t.add(owners[index], -1)
        yield from _push(t, head, nexts, index, version)


@program("SafeStack", bug_kinds=("assertion",), suite="SafeStack", max_steps=4000)
def safestack(t):
    """Three workers pop/use/push on the lock-free free list; an ABA on the
    head hands the same node to two workers at once."""
    head = t.var("head", 0)
    version = t.var("version", 0)
    nexts = [t.var(f"next{i}", i + 1 if i + 1 < _NODES else -1) for i in range(_NODES)]
    owners = [t.var(f"owner{i}", 0) for i in range(_NODES)]
    handles = []
    for _ in range(3):
        handle = yield t.spawn(_safestack_worker, head, nexts, owners, version)
        handles.append(handle)
    yield from join_all(t, handles)


def safestack_programs():
    return [safestack]
