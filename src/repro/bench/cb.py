"""CB suite: models of the SCTBench ``CB/*`` subjects (Yu & Narayanasamy,
ISCA 2009 — real-world download/compression tools and JDK classes)."""

from __future__ import annotations

from repro.bench.common import busywork, unprotected_add
from repro.runtime.program import program


# ----------------------------------------------------------------------
# CB/aget-bug2 — signal-handler progress race in the aget downloader
# ----------------------------------------------------------------------
def _aget_downloader(t, bwritten, done):
    # The aget-bug2 defect: completion is signalled *before* the final
    # byte-count update lands, leaving a wide window of stale progress.
    yield from unprotected_add(t, bwritten, 4096)
    yield t.write(done, 1)
    yield from unprotected_add(t, bwritten, 4096)


def _aget_resumer(t, bwritten, done):
    written = yield t.read(bwritten)
    finished = yield t.read(done)
    if finished:
        t.require(written == 8192, f"resume offset {written} != 8192")


@program("CB/aget-bug2", bug_kinds=("assertion",), suite="CB")
def aget_bug2(t):
    """aget's resume logic reads ``bwritten`` unsynchronized with the
    downloader: observing ``done`` before the final byte-count write yields a
    corrupt resume offset.  Shallow — every tool finds it immediately."""
    bwritten = t.var("bwritten", 0)
    done = t.var("done", 0)
    d = yield t.spawn(_aget_downloader, bwritten, done)
    r = yield t.spawn(_aget_resumer, bwritten, done)
    yield t.join(d)
    yield t.join(r)


# ----------------------------------------------------------------------
# CB/pbzip2-0.9.4 — main frees the work queue while a consumer still runs
# ----------------------------------------------------------------------
def _pbzip_consumer(t, fifo, done):
    # A long decompression phase: main's done-check almost always races
    # ahead of it and reads 0 (no teardown, no crash).
    yield from busywork(t, done, 10)
    yield t.heap_read(fifo, "block")
    # The defect: the consumer marks itself done one access too early and
    # clears the flag afterwards, leaving a one-event window in which main
    # may tear the queue down.
    yield t.write(done, 1)
    yield t.heap_read(fifo, "empty")
    yield t.write(done, 0)


@program("CB/pbzip2-0.9.4", bug_kinds=("use-after-free",), suite="CB")
def pbzip2(t):
    """pbzip2 0.9.4: main destroys the FIFO once it observes *both*
    consumers' transient done flags — each raised one queue access too
    early.  Both flag reads must land inside their one-event windows
    simultaneously, which random schedulers essentially never achieve; RFF
    reaches it by mutating toward the two done-flag reads-from pairs."""
    fifo = yield t.malloc("fifo", block=1, empty=0)
    done1 = t.var("consumer1_done", 0)
    done2 = t.var("consumer2_done", 0)
    progress = t.var("progress", 0)
    yield t.spawn(_pbzip_consumer, fifo, done1)
    yield t.spawn(_pbzip_consumer, fifo, done2)
    yield from unprotected_add(t, progress, 1)
    yield from unprotected_add(t, progress, 1)
    finished1 = yield t.read(done1)
    finished2 = yield t.read(done2)
    if finished1 and finished2:
        yield t.free(fifo)


# ----------------------------------------------------------------------
# CB/stringbuffer-jdk1.4 — the JDK 1.4 StringBuffer atomicity violation
# ----------------------------------------------------------------------
def _sb_eraser(t, lock, length):
    yield t.lock(lock)
    yield t.write(length, 0)
    yield t.unlock(lock)


def _sb_appender(t, lock, length):
    # append(sb) reads the length in one synchronized block ...
    yield t.lock(lock)
    expected = yield t.read(length)
    yield t.unlock(lock)
    yield from busywork(t, length, 2)
    # ... and copies characters in another: the eraser can run in between.
    yield t.lock(lock)
    actual = yield t.read(length)
    yield t.unlock(lock)
    t.require(actual >= expected, f"getChars: length shrank {expected} -> {actual}")


@program("CB/stringbuffer-jdk1.4", bug_kinds=("assertion",), suite="CB")
def stringbuffer(t):
    """JDK 1.4 StringBuffer.append: length is read and used in two separate
    synchronized sections, so a concurrent delete between them causes an
    out-of-bounds copy."""
    lock = t.mutex("sb")
    length = t.var("length", 4)
    a = yield t.spawn(_sb_appender, lock, length)
    e = yield t.spawn(_sb_eraser, lock, length)
    yield t.join(a)
    yield t.join(e)


def cb_programs():
    """All 3 CB/* models in Appendix B order."""
    return [aget_bug2, pbzip2, stringbuffer]
