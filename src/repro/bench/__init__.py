"""Benchmark programs: models of the 49 SCTBench + ConVul subjects."""

from repro.bench.registry import (
    EXPECTED_PROGRAM_COUNT,
    all_programs,
    by_suite,
    get,
    mc_supported,
    names,
)

__all__ = [
    "EXPECTED_PROGRAM_COUNT",
    "all_programs",
    "by_suite",
    "get",
    "mc_supported",
    "names",
]
