"""Benchmark programs: models of the 49 SCTBench + ConVul subjects,
plus the ``gen:`` generated-scenario and ``py:`` real-Python namespaces."""

from repro.bench.pybench import py_names, py_programs
from repro.bench.registry import (
    EXPECTED_PROGRAM_COUNT,
    all_programs,
    by_suite,
    get,
    mc_supported,
    names,
)

__all__ = [
    "EXPECTED_PROGRAM_COUNT",
    "all_programs",
    "by_suite",
    "get",
    "mc_supported",
    "names",
    "py_names",
    "py_programs",
]
