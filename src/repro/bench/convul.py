"""ConVul suite: models of the 10 CVE subjects (Cai et al. — real-world
kernel/browser concurrency vulnerabilities).

Every model preserves the vulnerability *class* (use-after-free, double
free, null dereference) and the ordering structure that triggers it: a
pointer is published through a shared variable, one thread tears the object
down, and another dereferences a stale copy.  The runtime's model heap
(:mod:`repro.runtime.objects`) provides the crash oracles."""

from __future__ import annotations

from repro.bench.common import busywork, unprotected_add
from repro.runtime.program import program


# ----------------------------------------------------------------------
# CVE-2009-3547 — pipe_rdwr_open NULL dereference (wide window)
# ----------------------------------------------------------------------
def _pipe_opener(t, inode_ptr):
    pipe = yield t.read(inode_ptr)
    yield from busywork(t, inode_ptr, 1)
    yield t.heap_read(pipe, "readers")


def _pipe_releaser(t, inode_ptr):
    yield t.write(inode_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2009-3547", bug_kinds=("null-dereference",), suite="ConVul")
def cve_2009_3547(t):
    """pipe release NULLs ``inode->i_pipe`` while open dereferences it."""
    pipe = yield t.malloc("pipe", readers=1)
    inode_ptr = t.var("i_pipe", pipe)
    o = yield t.spawn(_pipe_opener, inode_ptr)
    r = yield t.spawn(_pipe_releaser, inode_ptr)
    yield t.join(o)
    yield t.join(r)


# ----------------------------------------------------------------------
# CVE-2011-2183 — ksm exit race (use-after-free)
# ----------------------------------------------------------------------
def _ksm_scanner(t, mm_ptr):
    mm = yield t.read(mm_ptr)
    if mm is None:
        return
    yield from busywork(t, mm_ptr, 2)
    yield t.heap_read(mm, "anon_vmas")


def _ksm_exiter(t, mm_ptr, mm):
    yield t.free(mm)
    yield t.write(mm_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2011-2183", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2011_2183(t):
    """ksm scans an mm while the owner exits: the scanner samples the
    pointer before the exit frees the mm, then touches freed memory."""
    mm = yield t.malloc("mm_struct", anon_vmas=3)
    mm_ptr = t.var("ksm_scan_mm", mm)
    s = yield t.spawn(_ksm_scanner, mm_ptr)
    e = yield t.spawn(_ksm_exiter, mm_ptr, mm)
    yield t.join(s)
    yield t.join(e)


# ----------------------------------------------------------------------
# CVE-2013-1792 — keyring install/revoke race (three threads)
# ----------------------------------------------------------------------
def _keyring_installer(t, cred_ptr, cred):
    yield t.write(cred_ptr, cred)


def _keyring_revoker(t, cred_ptr):
    cred = yield t.read(cred_ptr)
    if cred is not None:
        yield from busywork(t, cred_ptr, 1)
        yield t.free(cred)
        yield t.write(cred_ptr, None)


def _keyring_user(t, cred_ptr):
    cred = yield t.read(cred_ptr)
    if cred is None:
        return
    yield from busywork(t, cred_ptr, 2)
    yield t.heap_read(cred, "session_keyring")


@program(
    "ConVul-CVE-Benchmarks/CVE-2013-1792",
    bug_kinds=("use-after-free",),
    suite="ConVul",
    mc_supported=True,
)
def cve_2013_1792(t):
    """Three-way keyring race: install publishes the cred, the revoker frees
    it, and the user dereferences a stale copy taken in between."""
    cred = yield t.malloc("cred", session_keyring=7)
    cred_ptr = t.var("cred_ptr", None)
    i = yield t.spawn(_keyring_installer, cred_ptr, cred)
    r = yield t.spawn(_keyring_revoker, cred_ptr)
    u = yield t.spawn(_keyring_user, cred_ptr)
    yield t.join(i)
    yield t.join(r)
    yield t.join(u)


# ----------------------------------------------------------------------
# CVE-2015-7550 — keyctl read vs revoke (use-after-free)
# ----------------------------------------------------------------------
def _keyctl_reader(t, key_ptr):
    key = yield t.read(key_ptr)
    if key is None:
        return
    yield from busywork(t, key_ptr, 1)
    yield t.heap_read(key, "payload")
    yield t.heap_read(key, "datalen")


def _keyctl_revoker(t, key_ptr, key):
    yield from busywork(t, key_ptr, 1)
    yield t.free(key)
    yield t.write(key_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2015-7550", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2015_7550(t):
    """keyctl_read races keyctl_revoke: the reader holds no lock between
    looking the key up and copying its payload."""
    key = yield t.malloc("key", payload=11, datalen=8)
    key_ptr = t.var("key_ptr", key)
    r = yield t.spawn(_keyctl_reader, key_ptr)
    v = yield t.spawn(_keyctl_revoker, key_ptr, key)
    yield t.join(r)
    yield t.join(v)


# ----------------------------------------------------------------------
# CVE-2016-1972 — Firefox race (gated, narrow use-after-free)
# ----------------------------------------------------------------------
def _ff_worker(t, session_ptr, ready):
    is_ready = yield t.read(ready)
    if not is_ready:
        return
    session = yield t.read(session_ptr)
    if session is None:
        return
    yield from busywork(t, ready, 3)
    yield t.heap_read(session, "transport")
    yield from busywork(t, ready, 2)
    yield t.heap_read(session, "buffer")


def _ff_destroyer(t, session_ptr, session, ready):
    yield t.write(ready, 1)
    yield from busywork(t, ready, 3)
    yield t.free(session)
    yield t.write(session_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2016-1972", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2016_1972(t):
    """A gated Firefox session teardown: the worker must first observe the
    ``ready`` flag, then sample the session, and only crashes if the destroy
    lands inside the short window between its two dereferences — a deep,
    multi-constraint ordering."""
    session = yield t.malloc("nr_session", transport=1, buffer=2)
    session_ptr = t.var("session_ptr", session)
    ready = t.var("ready", 0)
    w = yield t.spawn(_ff_worker, session_ptr, ready)
    d = yield t.spawn(_ff_destroyer, session_ptr, session, ready)
    yield t.join(w)
    yield t.join(d)


# ----------------------------------------------------------------------
# CVE-2016-1973 — Firefox graphics use-after-free (short window)
# ----------------------------------------------------------------------
def _gfx_user(t, surface_ptr):
    surface = yield t.read(surface_ptr)
    if surface is not None:
        yield t.heap_read(surface, "data")


def _gfx_destroyer(t, surface_ptr, surface):
    yield t.free(surface)
    yield t.write(surface_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2016-1973", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2016_1973(t):
    """Surface destroyed on one thread while another paints with it."""
    surface = yield t.malloc("surface", data=9)
    surface_ptr = t.var("surface_ptr", surface)
    u = yield t.spawn(_gfx_user, surface_ptr)
    d = yield t.spawn(_gfx_destroyer, surface_ptr, surface)
    yield t.join(u)
    yield t.join(d)


# ----------------------------------------------------------------------
# CVE-2016-7911 — ioprio get/set race (use-after-free)
# ----------------------------------------------------------------------
def _ioprio_getter(t, ioc_ptr):
    ioc = yield t.read(ioc_ptr)
    if ioc is None:
        return
    yield from busywork(t, ioc_ptr, 3)
    yield t.heap_read(ioc, "ioprio")


def _ioprio_setter(t, ioc_ptr, ioc):
    yield from busywork(t, ioc_ptr, 1)
    yield t.free(ioc)
    new_ioc = yield t.malloc("io_context_new", ioprio=4)
    yield t.write(ioc_ptr, new_ioc)


@program("ConVul-CVE-Benchmarks/CVE-2016-7911", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2016_7911(t):
    """sys_ioprio_get walks a task's io_context while sys_ioprio_set swaps
    and frees it."""
    ioc = yield t.malloc("io_context", ioprio=2)
    ioc_ptr = t.var("ioc_ptr", ioc)
    g = yield t.spawn(_ioprio_getter, ioc_ptr)
    s = yield t.spawn(_ioprio_setter, ioc_ptr, ioc)
    yield t.join(g)
    yield t.join(s)


# ----------------------------------------------------------------------
# CVE-2016-9806 — netlink dump double free
# ----------------------------------------------------------------------
def _netlink_dumper(t, skb_ptr, done_flag):
    done = yield t.read(done_flag)
    if done:
        return
    skb = yield t.read(skb_ptr)
    if skb is None:
        return
    yield from busywork(t, done_flag, 1)
    yield t.free(skb)
    yield t.write(done_flag, 1)


@program("ConVul-CVE-Benchmarks/CVE-2016-9806", bug_kinds=("double-free",), suite="ConVul")
def cve_2016_9806(t):
    """Two concurrent netlink dump completions both pass the done-flag check
    and free the same skb."""
    skb = yield t.malloc("skb", len=5)
    skb_ptr = t.var("skb_ptr", skb)
    done_flag = t.var("cb_done", 0)
    d1 = yield t.spawn(_netlink_dumper, skb_ptr, done_flag)
    d2 = yield t.spawn(_netlink_dumper, skb_ptr, done_flag)
    yield t.join(d1)
    yield t.join(d2)


# ----------------------------------------------------------------------
# CVE-2017-15265 — ALSA sequencer port use-after-free (deep)
# ----------------------------------------------------------------------
def _alsa_creator(t, port_ptr, port, registered):
    yield from busywork(t, registered, 2)
    yield t.write(port_ptr, port)
    yield t.write(registered, 1)


def _alsa_deleter(t, port_ptr, registered):
    is_registered = yield t.read(registered)
    if not is_registered:
        return
    port = yield t.read(port_ptr)
    if port is None:
        return
    yield from busywork(t, registered, 2)
    yield t.free(port)
    yield t.write(port_ptr, None)


def _alsa_user(t, port_ptr, registered):
    is_registered = yield t.read(registered)
    if not is_registered:
        return
    port = yield t.read(port_ptr)
    if port is None:
        return
    yield from busywork(t, registered, 4)
    yield t.heap_read(port, "subscribers")


@program("ConVul-CVE-Benchmarks/CVE-2017-15265", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2017_15265(t):
    """ALSA sequencer: create, delete and use of a port race across three
    threads; the user must look the port up after registration but complete
    its access only after the deleter freed it — a deep ordering chain."""
    port = yield t.malloc("seq_port", subscribers=0)
    port_ptr = t.var("port_ptr", None)
    registered = t.var("registered", 0)
    c = yield t.spawn(_alsa_creator, port_ptr, port, registered)
    d = yield t.spawn(_alsa_deleter, port_ptr, registered)
    u = yield t.spawn(_alsa_user, port_ptr, registered)
    yield t.join(c)
    yield t.join(d)
    yield t.join(u)


# ----------------------------------------------------------------------
# CVE-2017-6346 — packet fanout use-after-free
# ----------------------------------------------------------------------
def _fanout_sender(t, rollover_ptr, refcount):
    rollover = yield t.read(rollover_ptr)
    if rollover is None:
        return
    yield from unprotected_add(t, refcount, 1)
    yield from busywork(t, refcount, 1)
    yield t.heap_read(rollover, "sock")


def _fanout_unbinder(t, rollover_ptr, rollover, refcount):
    count = yield t.read(refcount)
    if count == 0:
        yield t.free(rollover)
        yield t.write(rollover_ptr, None)


@program("ConVul-CVE-Benchmarks/CVE-2017-6346", bug_kinds=("use-after-free",), suite="ConVul")
def cve_2017_6346(t):
    """packet_do_bind frees the rollover structure based on a stale refcount
    read while a sender still holds a pointer to it."""
    rollover = yield t.malloc("rollover", sock=3)
    rollover_ptr = t.var("rollover_ptr", rollover)
    refcount = t.var("refcount", 0)
    s = yield t.spawn(_fanout_sender, rollover_ptr, refcount)
    u = yield t.spawn(_fanout_unbinder, rollover_ptr, rollover, refcount)
    yield t.join(s)
    yield t.join(u)


def convul_programs():
    """All 10 ConVul CVE models in Appendix B order."""
    return [
        cve_2009_3547,
        cve_2011_2183,
        cve_2013_1792,
        cve_2015_7550,
        cve_2016_1972,
        cve_2016_1973,
        cve_2016_7911,
        cve_2016_9806,
        cve_2017_15265,
        cve_2017_6346,
    ]
