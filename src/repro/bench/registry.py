"""The benchmark registry: all 49 programs of the paper's evaluation.

Programs are keyed by their Appendix B names (``CS/reorder_100``,
``ConVul-CVE-Benchmarks/CVE-2016-9806``, ...).  The registry is the single
source the harness, tests and benches iterate over.

Beyond the fixed corpus, two namespaces resolve by name:

* ``gen:`` — *generated* scenarios (:mod:`repro.gen`):
  ``get("gen:<seed>[:<token>]")`` re-synthesizes the program
  deterministically from the name;
* ``py:`` — *real-Python* ``threading`` targets run under the substrate
  (:mod:`repro.bench.pybench`), e.g. ``get("py:counter_race")``.

Name-based resolution is what makes both first-class campaign targets —
parallel workers, replay and the CLI all rebuild the identical program
from its name.
"""

from __future__ import annotations

import difflib
from functools import lru_cache

from repro.bench.cb import cb_programs
from repro.bench.chess import chess_programs
from repro.bench.convul import convul_programs
from repro.bench.cs import cs_programs
from repro.bench.inspect_suite import inspect_programs
from repro.bench.radbench import radbench_programs
from repro.bench.safestack import safestack_programs
from repro.bench.splash2 import splash2_programs
from repro.runtime.program import Program

#: Number of benchmark programs in the paper's evaluation (Section 5.1).
EXPECTED_PROGRAM_COUNT = 49


@lru_cache(maxsize=1)
def all_programs() -> dict[str, Program]:
    """Every benchmark program, keyed by its Appendix B name."""
    programs: dict[str, Program] = {}
    for group in (
        cb_programs(),
        cs_programs(),
        chess_programs(),
        convul_programs(),
        inspect_programs(),
        safestack_programs(),
        splash2_programs(),
        radbench_programs(),
    ):
        for prog in group:
            if prog.name in programs:
                raise ValueError(f"duplicate benchmark name {prog.name!r}")
            programs[prog.name] = prog
    return programs


def get(name: str) -> Program:
    """Look one program up by its Appendix B name, ``gen:`` or ``py:`` spec.

    Unknown names raise a ``KeyError`` listing the closest matches, so a
    typo like ``CS/reorder_1000`` points straight at ``CS/reorder_100``.
    """
    from repro.gen.synth import GEN_PREFIX, from_name

    if name.startswith(GEN_PREFIX):
        return from_name(name).program
    from repro.bench.pybench import PY_PREFIX, get as py_get

    if name.startswith(PY_PREFIX):
        return py_get(name)
    programs = all_programs()
    if name not in programs:
        close = difflib.get_close_matches(name, programs, n=3, cutoff=0.4)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise KeyError(
            f"unknown benchmark {name!r}{hint} "
            f"(see repro.bench.names(), or gen:<seed> for generated scenarios)"
        )
    return programs[name]


def names() -> list[str]:
    """All benchmark names in Appendix B (alphabetical) order."""
    return sorted(all_programs())


def by_suite(suite: str) -> list[Program]:
    """All programs of one suite (e.g. "CS", "ConVul", "Chess")."""
    return [p for p in all_programs().values() if p.suite == suite]


def mc_supported() -> list[Program]:
    """The subset the GenMC stand-in accepts (13 programs, mirroring the
    paper's non-Error GenMC rows)."""
    return [p for p in all_programs().values() if p.mc_supported]
