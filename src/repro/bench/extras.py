"""Curated extra subjects beyond the paper's 49-program evaluation.

The paper's artifact ships "some additional curated examples not discussed
in the paper" (Appendix A.1); this module plays that role: classic mutual
exclusion protocols, lock implementations and lock-free patterns that
exercise the runtime API broadly and make instructive fuzzing targets.
They are registered separately from the evaluation registry so campaign
results remain comparable with Appendix B.
"""

from __future__ import annotations

from repro.bench.common import busywork, join_all, spawn_all, unprotected_add
from repro.runtime.program import Program, program


# ----------------------------------------------------------------------
# Dekker's algorithm (correct under SC; breaks under TSO)
# ----------------------------------------------------------------------
def _dekker_thread(t, me, flags, turn, incritical):
    other = 1 - me
    yield t.write(flags[me], 1)
    while True:  # faithful (unbounded) entry protocol; step bound guards spins
        contended = yield t.read(flags[other])
        if not contended:
            break
        owner = yield t.read(turn)
        if owner != me:
            yield t.write(flags[me], 0)
            while True:
                owner = yield t.read(turn)
                if owner == me:
                    break
                yield t.pause()
            yield t.write(flags[me], 1)
    inside = yield t.add(incritical, 1)
    t.require(inside == 0, "two threads inside Dekker's critical section")
    yield t.add(incritical, -1)
    yield t.write(turn, other)
    yield t.write(flags[me], 0)


@program("extras/dekker", bug_kinds=("assertion",), suite="extras", max_steps=2000)
def dekker(t):
    """Dekker's mutual exclusion.  Under the runtime's SC semantics the
    assertion holds on every (non-truncated) schedule; under the TSO
    executor the buffered flag writes break it — the canonical weak-memory
    victim."""
    flags = [t.var("flag0", 0), t.var("flag1", 0)]
    turn = t.var("turn", 0)
    incritical = t.var("incritical", 0)
    h0 = yield t.spawn(_dekker_thread, 0, flags, turn, incritical)
    h1 = yield t.spawn(_dekker_thread, 1, flags, turn, incritical)
    yield from join_all(t, [h0, h1])


# ----------------------------------------------------------------------
# Peterson's algorithm (same story, simpler protocol)
# ----------------------------------------------------------------------
def _peterson_thread(t, me, flags, victim, incritical):
    other = 1 - me
    yield t.write(flags[me], 1)
    yield t.write(victim, me)
    while True:  # faithful busy-wait; the step bound guards livelocks
        contended = yield t.read(flags[other])
        blamed = yield t.read(victim)
        if not (contended and blamed == me):
            break
        yield t.pause()
    inside = yield t.add(incritical, 1)
    t.require(inside == 0, "two threads inside Peterson's critical section")
    yield t.add(incritical, -1)
    yield t.write(flags[me], 0)


@program("extras/peterson", bug_kinds=("assertion",), suite="extras", max_steps=1500)
def peterson(t):
    """Peterson's lock: SC-correct, TSO-broken."""
    flags = [t.var("flag0", 0), t.var("flag1", 0)]
    victim = t.var("victim", 0)
    incritical = t.var("incritical", 0)
    h0 = yield t.spawn(_peterson_thread, 0, flags, victim, incritical)
    h1 = yield t.spawn(_peterson_thread, 1, flags, victim, incritical)
    yield from join_all(t, [h0, h1])


# ----------------------------------------------------------------------
# Ticket lock built from atomic fetch-and-add
# ----------------------------------------------------------------------
def _ticket_worker(t, next_ticket, now_serving, counter):
    mine = yield t.add(next_ticket, 1)
    while True:  # faithful busy-wait: only the ticket holder may proceed
        serving = yield t.read(now_serving)
        if serving == mine:
            break
        yield t.pause()
    value = yield t.read(counter)
    yield t.write(counter, value + 1)
    yield t.add(now_serving, 1)


@program("extras/ticket_lock", bug_kinds=(), suite="extras", max_steps=2000)
def ticket_lock(t):
    """A correct ticket lock: the increments it guards are never lost.
    A bug-free subject — fuzzing it should report nothing, ever."""
    next_ticket = t.var("next_ticket", 0)
    now_serving = t.var("now_serving", 0)
    counter = t.var("counter", 0)
    handles = yield from spawn_all(t, _ticket_worker, 3, next_ticket, now_serving, counter)
    yield from join_all(t, handles)
    total = yield t.read(counter)
    t.require(total == 3, f"ticket lock lost an update: {total}")


# ----------------------------------------------------------------------
# Broken readers-writers: writer starvation check omitted
# ----------------------------------------------------------------------
def _rw_reader(t, lock, readers, data):
    yield t.lock(lock)
    yield from unprotected_add(t, readers, 1)
    yield t.unlock(lock)
    value = yield t.read(data)
    yield from busywork(t, data, 1)
    again = yield t.read(data)
    t.require(value == again, f"torn read: {value} then {again}")
    yield t.lock(lock)
    yield from unprotected_add(t, readers, -1)
    yield t.unlock(lock)


def _rw_writer(t, lock, readers, data):
    yield t.lock(lock)
    active = yield t.read(readers)
    yield t.unlock(lock)
    if active == 0:
        # Bug: the reader count was sampled under the lock, but the write
        # happens after releasing it — a reader may have arrived since.
        yield t.write(data, 1)
        yield t.write(data, 2)


@program("extras/readers_writers", bug_kinds=("assertion",), suite="extras")
def readers_writers(t):
    """A readers-writers 'lock' that releases the gate before writing:
    readers observe torn writes."""
    lock = t.mutex("gate")
    readers = t.var("readers", 0)
    data = t.var("data", 0)
    r1 = yield t.spawn(_rw_reader, lock, readers, data)
    w = yield t.spawn(_rw_writer, lock, readers, data)
    yield from join_all(t, [r1, w])


# ----------------------------------------------------------------------
# ABA counter: CAS loop with a recycled sentinel
# ----------------------------------------------------------------------
def _aba_mutator(t, top, epoch):
    observed = yield t.read(top)
    yield from busywork(t, epoch, 2)
    swapped = yield t.cas(top, observed, observed + 1)
    if swapped:
        yield t.add(epoch, 1)


def _aba_recycler(t, top):
    value = yield t.read(top)
    yield t.write(top, value + 1)
    yield t.write(top, value)  # recycle: same value, different "identity"


@program("extras/aba_counter", bug_kinds=("assertion",), suite="extras")
def aba_counter(t):
    """A CAS that succeeds because the value was recycled (A-B-A), breaking
    the epoch invariant the mutators maintain."""
    top = t.var("top", 0)
    epoch = t.var("epoch", 0)
    m1 = yield t.spawn(_aba_mutator, top, epoch)
    recycler = yield t.spawn(_aba_recycler, top)
    m2 = yield t.spawn(_aba_mutator, top, epoch)
    yield from join_all(t, [m1, recycler, m2])
    final_top = yield t.read(top)
    final_epoch = yield t.read(epoch)
    t.require(
        final_top >= final_epoch,
        f"ABA broke the epoch invariant: top {final_top} < epoch {final_epoch}",
    )


# ----------------------------------------------------------------------
# Barrier misuse: one party skips the second phase
# ----------------------------------------------------------------------
def _phased_worker(t, b, phase_data, me, skip_second):
    yield t.write(phase_data[me], 1)
    yield t.arrive(b)
    for other, slot in enumerate(phase_data):
        value = yield t.read(slot)
        t.require(value >= 1, f"worker {me} saw phase-1 data of {other} missing")
    if skip_second:
        return  # bug: deserts the barrier before phase 2
    yield t.write(phase_data[me], 2)
    yield t.arrive(b)


@program("extras/barrier_desertion", bug_kinds=("deadlock",), suite="extras")
def barrier_desertion(t):
    """One worker deserts a cyclic barrier after phase 1: the remaining
    parties wait forever — a structured deadlock without any lock."""
    b = t.barrier("phases", 3)
    phase_data = [t.var(f"pd{i}", 0) for i in range(3)]
    h0 = yield t.spawn(_phased_worker, b, phase_data, 0, False)
    h1 = yield t.spawn(_phased_worker, b, phase_data, 1, False)
    h2 = yield t.spawn(_phased_worker, b, phase_data, 2, True)
    yield from join_all(t, [h0, h1, h2])


def extras_programs() -> list[Program]:
    """The curated extra subjects (not part of the Appendix B registry)."""
    return [dekker, peterson, ticket_lock, readers_writers, aba_counter, barrier_desertion]
