"""Fault injection for the campaign engines: one-shot hooks + chaos plans.

The engines' robustness claims — bounded retries, per-cell timeouts, lease
expiry, crash isolation, checkpoint/store resume — are only testable if
worker and storage failure can be provoked on demand.  Two mechanisms:

**One-shot hooks** (the original layer).  A
:class:`~repro.harness.parallel.CellSpec` may carry an importable
``fault_hook`` reference (``"module:qualname"``); the worker entrypoint
resolves and calls it with the spec *before* running the cell.  The
built-in :func:`crash_once` hook targets a single cell through environment
variables and fires exactly once per campaign via an atomically created
state file:

* ``RFF_FAULT_CELL``  — target cell as ``"tool|program|trial"``;
* ``RFF_FAULT_STATE`` — path of the once-only state file (must not exist);
* ``RFF_FAULT_MODE``  — ``"crash"`` (default: hard ``os._exit``) or
  ``"hang"`` (wedge the worker: heartbeats stop, then sleep until the
  engine's lease/timeout kills it);
* ``RFF_FAULT_HANG_SECONDS`` — sleep length for ``"hang"`` (default 3600).

**Chaos plans** (the composable layer).  A :class:`ChaosPlan` is a pure
function of its seed: for any cell key or store-write index it answers
"which fault, if any, fires here?" — identically on every call, in every
process, under any start method.  Plans travel through the environment
(:data:`ENV_PLAN` carries the JSON form, inherited by fork and spawn
workers alike), and every injection point fires *exactly once* per
campaign via ``O_CREAT | O_EXCL`` claim files under :data:`ENV_PLAN_STATE`
— so a retried or resumed attempt of a faulted cell proceeds normally and
the campaign provably converges to the fault-free result.

Worker-side fault kinds (applied by :func:`chaos_hook`):

* ``kill`` — hard ``os._exit`` mid-trial (segfault/OOM/SIGKILL model);
* ``hang`` — wedge the worker past its lease: the heartbeat thread checks
  :func:`is_wedged` and stops beating, then the hook sleeps until the
  supervisor's lease expiry kills the process;
* ``skew`` — a benign slow-worker clock skew: sleep briefly, keep beating.

Store-side fault kinds (applied by
:class:`~repro.harness.store.CorpusStore` during appends):

* ``torn_write`` — flush only a prefix of the record's line, then raise
  :class:`ChaosKill` (the SIGKILL-mid-write model);
* ``corrupt`` — commit the record with a poisoned checksum, modelling
  at-rest corruption the reader must detect and re-run around.

Hooks run inside worker processes.  In the engines' degraded serial mode
they run in the campaign process itself, so tests combining degradation
with ``kill`` faults would kill the whole campaign — don't.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass

ENV_TARGET = "RFF_FAULT_CELL"
ENV_STATE = "RFF_FAULT_STATE"
ENV_MODE = "RFF_FAULT_MODE"
ENV_HANG_SECONDS = "RFF_FAULT_HANG_SECONDS"

#: JSON form of a ChaosPlan (see ChaosPlan.to_env / from_env).
ENV_PLAN = "RFF_CHAOS_PLAN"
#: Directory of once-only claim files for chaos injection points.
ENV_PLAN_STATE = "RFF_CHAOS_STATE"

#: Exit code of a crash-injected worker (distinctive in worker_exit records).
CRASH_EXIT_CODE = 17

#: Importable reference for CellSpec.fault_hook / ParallelCampaign.fault_hook.
CRASH_ONCE_REF = "repro.harness.faults:crash_once"
#: Importable reference of the chaos-plan worker hook.
CHAOS_HOOK_REF = "repro.harness.faults:chaos_hook"

#: Fault kinds applied inside worker processes by chaos_hook.
WORKER_FAULTS = ("kill", "hang", "skew")
#: Fault kinds applied by CorpusStore during record appends.
STORE_FAULTS = ("torn_write", "corrupt")
FAULT_KINDS = WORKER_FAULTS + STORE_FAULTS


class ChaosKill(BaseException):
    """A simulated SIGKILL during a store write.

    Derives from ``BaseException`` so generic ``except Exception`` recovery
    code cannot swallow it — like the real signal, the only valid response
    is to die and let a resumed campaign recover from disk.
    """


#: Set by wedge-style faults in the worker process; the supervised worker's
#: heartbeat thread polls it and stops beating, so the parent's lease
#: machinery (not in-process cooperation) is what ends the worker.
_WEDGED = False


def is_wedged() -> bool:
    return _WEDGED


def _wedge() -> None:
    global _WEDGED
    _WEDGED = True


def cell_key(tool: str, program: str, trial: int) -> str:
    """The canonical ``"tool|program|trial"`` encoding of one campaign cell."""
    return f"{tool}|{program}|{trial}"


# ----------------------------------------------------------------------
# Seeded deterministic chaos plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, deterministic fault-injection plan.

    Each rate is the probability mass assigned to that fault kind; for one
    injection point a single uniform draw (a pure hash of ``(seed, scope,
    token)``) is partitioned across the kinds, so rates compose: with
    ``kill=0.2, hang=0.1`` a cell draws ``kill`` with 20% mass, ``hang``
    with the next 10%, nothing otherwise.  The same seed always yields the
    same injection points — the property the differential chaos suite and
    the hypothesis tests pin down.
    """

    seed: int
    kill: float = 0.0
    hang: float = 0.0
    skew: float = 0.0
    torn_write: float = 0.0
    corrupt: float = 0.0
    #: Sleep length of a wedged (hang) worker; the lease must expire first.
    hang_seconds: float = 3600.0
    #: Sleep length of a skewed (slow) worker; benign, under the lease.
    skew_seconds: float = 0.02

    def _uniform(self, scope: str, token: str) -> float:
        digest = hashlib.sha256(f"{self.seed}|{scope}|{token}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    @staticmethod
    def _pick(draw: float, bands: list[tuple[str, float]]) -> str | None:
        low = 0.0
        for kind, rate in bands:
            if draw < low + rate:
                return kind
            low += rate
        return None

    def worker_fault(self, key: str) -> str | None:
        """Fault kind (kill/hang/skew) injected into cell ``key``, if any."""
        return self._pick(
            self._uniform("cell", key),
            [("kill", self.kill), ("hang", self.hang), ("skew", self.skew)],
        )

    def store_fault(self, index: int) -> str | None:
        """Fault kind (torn_write/corrupt) injected into store append #index."""
        return self._pick(
            self._uniform("write", str(index)),
            [("torn_write", self.torn_write), ("corrupt", self.corrupt)],
        )

    def injection_points(self, keys: list[str]) -> dict[str, str]:
        """All worker-side injections over ``keys`` (key -> fault kind)."""
        points = {}
        for key in keys:
            kind = self.worker_fault(key)
            if kind is not None:
                points[key] = kind
        return points

    # -- environment plumbing ------------------------------------------
    def to_env(self, state_dir: str | os.PathLike) -> dict[str, str]:
        """The environment variables that arm this plan for workers and
        stores; ``state_dir`` must be an existing directory."""
        return {ENV_PLAN: json.dumps(asdict(self)), ENV_PLAN_STATE: str(state_dir)}

    @classmethod
    def from_env(cls, environ=os.environ) -> "ChaosPlan | None":
        raw = environ.get(ENV_PLAN)
        if not raw:
            return None
        return cls(**json.loads(raw))


def claim_once(state_dir: str, token: str) -> bool:
    """Atomically claim one injection point; True exactly once per token.

    ``O_CREAT | O_EXCL`` makes exactly one attempt win the creation race;
    every later attempt (a retry, or a resumed campaign) loses the claim
    and proceeds normally."""
    name = hashlib.sha256(token.encode()).hexdigest()[:24]
    try:
        fd = os.open(os.path.join(state_dir, name), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, token.encode())
    os.close(fd)
    return True


def claimed_tokens(state_dir: str) -> list[str]:
    """The tokens of every injection point that actually fired (sorted) —
    lets tests assert exact retry/backoff accounting."""
    tokens = []
    for name in os.listdir(state_dir):
        with open(os.path.join(state_dir, name), "r", encoding="utf-8") as handle:
            tokens.append(handle.read())
    return sorted(tokens)


def chaos_hook(spec) -> None:
    """Worker-side chaos: apply the planned kill/hang/skew fault, once."""
    plan = ChaosPlan.from_env()
    state = os.environ.get(ENV_PLAN_STATE)
    if plan is None or not state:
        return
    key = cell_key(spec.tool, spec.program, spec.trial)
    kind = plan.worker_fault(key)
    if kind is None:
        return
    if kind == "skew":
        # Benign slowness: fires on every attempt, never claims state —
        # a deterministically slow worker, not a one-shot failure.
        time.sleep(plan.skew_seconds)
        return
    if not claim_once(state, f"{kind}:{key}"):
        return
    if kind == "hang":
        _wedge()
        time.sleep(plan.hang_seconds)
        return
    # A hard exit models a segfaulting/oom-killed worker: no exception, no
    # result message, just a dead process the engine must notice and retry.
    os._exit(CRASH_EXIT_CODE)


def store_chaos(index: int) -> str | None:
    """Store-side chaos: the planned torn_write/corrupt fault for append
    #``index``, claimed once; None when nothing fires."""
    plan = ChaosPlan.from_env()
    state = os.environ.get(ENV_PLAN_STATE)
    if plan is None or not state:
        return None
    kind = plan.store_fault(index)
    if kind is None:
        return None
    if not claim_once(state, f"{kind}:write-{index}"):
        return None
    return kind


# ----------------------------------------------------------------------
# One-shot targeted hook (the original layer)
# ----------------------------------------------------------------------
def crash_once(spec) -> None:
    """Fail the *first* attempt of the targeted cell, then never again.

    The once-only guarantee comes from ``O_CREAT | O_EXCL`` on the state
    file: exactly one worker attempt wins the creation race and dies; every
    later attempt (the engine's retry, or a resumed campaign) sees the file
    and proceeds normally.
    """
    target = os.environ.get(ENV_TARGET)
    state = os.environ.get(ENV_STATE)
    if not target or not state:
        return
    if cell_key(spec.tool, spec.program, spec.trial) != target:
        return
    try:
        fd = os.open(state, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    if os.environ.get(ENV_MODE, "crash") == "hang":
        # A wedged worker: its heartbeat thread (if any) stops beating, so
        # only the parent's lease/timeout machinery can end it.
        _wedge()
        time.sleep(float(os.environ.get(ENV_HANG_SECONDS, "3600")))
        return
    # A hard exit models a segfaulting/oom-killed worker: no exception, no
    # result message, just a dead process the engine must notice and retry.
    os._exit(CRASH_EXIT_CODE)


def crash_always(spec) -> None:
    """Crash *every* attempt of the targeted cell — a deterministic crasher
    (the retry budget must exhaust and classify it as such)."""
    target = os.environ.get(ENV_TARGET)
    if not target:
        return
    if cell_key(spec.tool, spec.program, spec.trial) != target:
        return
    os._exit(CRASH_EXIT_CODE)


#: Importable reference of the deterministic-crasher hook.
CRASH_ALWAYS_REF = "repro.harness.faults:crash_always"
