"""Fault-injection hooks for exercising the parallel campaign engine.

The engine's fault-tolerance claims — bounded retries, per-cell timeouts,
crash isolation, checkpoint/resume — are only testable if worker failure
can be provoked on demand.  A :class:`~repro.harness.parallel.CellSpec`
may carry an importable ``fault_hook`` reference (``"module:qualname"``);
the worker entrypoint resolves and calls it with the spec *before* running
the cell, so a hook can crash or hang the worker process at will.

The built-in :func:`crash_once` hook is configured through environment
variables (inherited by both fork and spawn workers) and fires exactly once
per campaign via an atomically created state file, which lets a test assert
that the retry of the faulted cell then succeeds and the final result is
bit-identical to an undisturbed run:

* ``RFF_FAULT_CELL``  — target cell as ``"tool|program|trial"``;
* ``RFF_FAULT_STATE`` — path of the once-only state file (must not exist);
* ``RFF_FAULT_MODE``  — ``"crash"`` (default: hard ``os._exit``) or
  ``"hang"`` (sleep until the engine's cell timeout kills the worker);
* ``RFF_FAULT_HANG_SECONDS`` — sleep length for ``"hang"`` (default 3600).

Hooks run inside worker processes.  In the engine's degraded serial mode
they run in the campaign process itself, so tests combining degradation
with ``crash`` faults would kill the whole campaign — don't.
"""

from __future__ import annotations

import os
import time

ENV_TARGET = "RFF_FAULT_CELL"
ENV_STATE = "RFF_FAULT_STATE"
ENV_MODE = "RFF_FAULT_MODE"
ENV_HANG_SECONDS = "RFF_FAULT_HANG_SECONDS"

#: Exit code of a crash-injected worker (distinctive in worker_exit records).
CRASH_EXIT_CODE = 17

#: Importable reference for CellSpec.fault_hook / ParallelCampaign.fault_hook.
CRASH_ONCE_REF = "repro.harness.faults:crash_once"


def cell_key(tool: str, program: str, trial: int) -> str:
    """The ``RFF_FAULT_CELL`` encoding of one campaign cell."""
    return f"{tool}|{program}|{trial}"


def crash_once(spec) -> None:
    """Fail the *first* attempt of the targeted cell, then never again.

    The once-only guarantee comes from ``O_CREAT | O_EXCL`` on the state
    file: exactly one worker attempt wins the creation race and dies; every
    later attempt (the engine's retry, or a resumed campaign) sees the file
    and proceeds normally.
    """
    target = os.environ.get(ENV_TARGET)
    state = os.environ.get(ENV_STATE)
    if not target or not state:
        return
    if cell_key(spec.tool, spec.program, spec.trial) != target:
        return
    try:
        fd = os.open(state, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    if os.environ.get(ENV_MODE, "crash") == "hang":
        time.sleep(float(os.environ.get(ENV_HANG_SECONDS, "3600")))
        return
    # A hard exit models a segfaulting/oom-killed worker: no exception, no
    # result message, just a dead process the engine must notice and retry.
    os._exit(CRASH_EXIT_CODE)
