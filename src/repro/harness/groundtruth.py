"""Ground-truth differential evaluation over generated corpora.

Where :mod:`repro.harness.campaign` measures tools against the paper's 49
hand-modeled benchmarks, this harness measures them against *synthesized*
programs whose bugs are planted and therefore known exactly
(:mod:`repro.gen`).  Two channels are scored:

* **crash channel** — every configured tool searches every generated
  program for its planted crash; the result is the familiar
  schedules-to-bug data (cumulative curves, per-kind detection counts),
  but judged against ground truth instead of against "whatever the 49
  programs happen to contain".
* **sanitizer channel** — RFF fuzzes each program with the full online
  sanitizer stack attached and the planted label decides whether each
  report is a true detection or a false positive, and each silence a true
  negative or a false negative.  The aggregated FN/FP rates are the
  numbers the CI baseline (``results/groundtruth_baseline.json``) pins.

Determinism: the corpus is a pure function of ``(seed, count, GenConfig)``;
trial seeds derive exactly as in serial campaigns (``base_seed + 7919 *
trial``); generated programs resolve by *name* through the benchmark
registry, so the parallel engine's workers rebuild byte-identical programs
and serial == parallel holds for the whole report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.gen.oracle import (
    SANITIZER_NAMES,
    aggregate_sanitizers,
    judge_result,
    judge_sanitizers,
)
from repro.gen.synth import GenConfig, GeneratedProgram, corpus
from repro.harness.campaign import Campaign, CampaignConfig, CampaignResult
from repro.harness.telemetry import TelemetrySink
from repro.harness.tools import (
    GenMcTool,
    PeriodTool,
    RffTool,
    TestingTool,
    muzz_tool,
    pct_tool,
    pos_tool,
    qlearning_tool,
    random_tool,
)


def tool_factories() -> dict[str, Callable[[], TestingTool]]:
    """Name -> constructor for every tool eval-gen can run."""
    return {
        "RFF": RffTool,
        "POS": pos_tool,
        "PCT3": pct_tool,
        "PERIOD": PeriodTool,
        "GenMC": GenMcTool,
        "QLearning RF": qlearning_tool,
        "Random": random_tool,
        "MUZZ-like": muzz_tool,
    }


@dataclass(frozen=True)
class GroundTruthConfig:
    """One ground-truth evaluation: corpus shape + measurement budgets."""

    #: First corpus seed; programs are ``gen:<seed> .. gen:<seed+count-1>``.
    seed: int = 0
    count: int = 50
    gen_config: GenConfig = field(default_factory=GenConfig)
    #: Crash-channel tools (keys of :func:`tool_factories`).
    tools: tuple[str, ...] = ("RFF", "Random", "PCT3", "POS")
    trials: int = 3
    #: Schedules per (tool, program, trial) in the crash channel.
    budget: int = 400
    base_seed: int = 1234
    #: Schedules of sanitizer-instrumented RFF fuzzing per program.
    sanitizer_budget: int = 80
    sanitizers: tuple[str, ...] = SANITIZER_NAMES

    def corpus(self) -> list[GeneratedProgram]:
        return corpus(self.seed, self.count, self.gen_config)


class GroundTruthHarness:
    """Runs both measurement channels and assembles the JSON report."""

    def __init__(
        self,
        config: GroundTruthConfig | None = None,
        sink: TelemetrySink | None = None,
    ):
        self.config = config or GroundTruthConfig()
        self.sink = sink or TelemetrySink()

    # -- corpus ---------------------------------------------------------
    def corpus(self) -> list[GeneratedProgram]:
        return self.config.corpus()

    def _emit_corpus(self, programs: list[GeneratedProgram]) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for generated in programs:
            kind = generated.ground_truth.kind
            kinds[kind] = kinds.get(kind, 0) + 1
        self.sink.emit(
            "gen_corpus",
            seed=self.config.seed,
            count=self.config.count,
            config=self.config.gen_config.to_token(),
            kinds=kinds,
        )
        return kinds

    # -- crash channel --------------------------------------------------
    def run_campaign(self, processes: int | None = 1) -> CampaignResult:
        """Crash-channel search over the corpus.

        ``processes=1`` (default) runs the serial :class:`Campaign`;
        anything else hands the *names* to the parallel engine, whose
        workers re-synthesize each program from its ``gen:`` name — the
        two paths produce bit-identical results.
        """
        names = [generated.name for generated in self.corpus()]
        campaign_config = CampaignConfig(
            trials=self.config.trials,
            budget=self.config.budget,
            base_seed=self.config.base_seed,
        )
        if processes == 1:
            from repro import bench

            tools = [tool_factories()[name]() for name in self.config.tools]
            programs = [bench.get(name) for name in names]
            return Campaign(campaign_config).run(tools, programs)
        from repro.harness.parallel import ParallelCampaign

        engine = ParallelCampaign(config=campaign_config, processes=processes)
        return engine.run(list(self.config.tools), names)

    # -- sanitizer channel ----------------------------------------------
    def run_sanitizer_sweep(self, programs: list[GeneratedProgram]) -> list:
        """Fuzz each program with the sanitizer stack; judge every verdict."""
        judgements = []
        fuzz_config = RffConfig(sanitizers=self.config.sanitizers)
        for generated in programs:
            fuzzer = RffFuzzer(
                generated.program, seed=self.config.base_seed, config=fuzz_config
            )
            report = fuzzer.run(self.config.sanitizer_budget, stop_on_first_crash=False)
            reports = [record.report for record in report.sanitizer_records]
            judgements.extend(
                judge_sanitizers(
                    generated.ground_truth,
                    reports,
                    program=generated.name,
                    sanitizers=self.config.sanitizers,
                )
            )
        return judgements

    # -- full evaluation ------------------------------------------------
    def evaluate(self, processes: int | None = 1) -> dict[str, Any]:
        """Both channels end to end; returns the BENCH_groundtruth payload."""
        programs = self.corpus()
        kinds = self._emit_corpus(programs)
        truths = {generated.name: generated.ground_truth for generated in programs}

        campaign = self.run_campaign(processes=processes)
        tool_sections: dict[str, Any] = {}
        for tool in self.config.tools:
            detected: dict[str, int] = {}
            planted: dict[str, int] = {}
            spurious = 0
            hits: list[int] = []
            for generated in programs:
                truth = truths[generated.name]
                trials = campaign.trials(tool, generated.name)
                verdicts = [judge_result(truth, result) for result in trials]
                if truth.kind != "none":
                    planted[truth.kind] = planted.get(truth.kind, 0) + 1
                    if any(v["verdict"] == "detected" for v in verdicts):
                        detected[truth.kind] = detected.get(truth.kind, 0) + 1
                spurious += sum(1 for v in verdicts if v["verdict"] == "spurious")
                hits.extend(
                    v["schedules_to_bug"]
                    for v in verdicts
                    if v["verdict"] == "detected" and v["schedules_to_bug"] is not None
                )
            tool_sections[tool] = {
                "planted": planted,
                "detected": detected,
                "detected_total": sum(detected.values()),
                "planted_total": sum(planted.values()),
                "spurious_crashes": spurious,
                "mean_schedules_to_bug": (sum(hits) / len(hits)) if hits else None,
                "cumulative_curve": campaign.cumulative_curve(tool),
            }

        judgements = self.run_sanitizer_sweep(programs)
        sanitizer_summary = aggregate_sanitizers(judgements)

        payload = {
            "schema": 1,
            "config": {
                "seed": self.config.seed,
                "count": self.config.count,
                "gen_config": self.config.gen_config.to_token(),
                "tools": list(self.config.tools),
                "trials": self.config.trials,
                "budget": self.config.budget,
                "base_seed": self.config.base_seed,
                "sanitizer_budget": self.config.sanitizer_budget,
                "sanitizers": list(self.config.sanitizers),
            },
            "corpus": {
                "kinds": kinds,
                "programs": {
                    generated.name: generated.ground_truth.to_dict()
                    for generated in programs
                },
            },
            "tools": tool_sections,
            "sanitizers": sanitizer_summary,
        }
        self.sink.emit(
            "gen_eval_end",
            tools=list(self.config.tools),
            programs=len(programs),
            trials=self.config.trials,
            budget=self.config.budget,
            detected={name: section["detected_total"] for name, section in tool_sections.items()},
            fn_rates={name: cell["fn_rate"] for name, cell in sanitizer_summary.items()},
        )
        return payload


# ----------------------------------------------------------------------
# Baseline regression checking (CI gen-smoke)
# ----------------------------------------------------------------------
def check_baseline(payload: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Compare a report against the checked-in baseline; returns violations.

    The baseline pins *bounds*, not exact numbers, so hardware and
    parallelism never flake CI: per-sanitizer maximum FN/FP rates and a
    per-tool minimum detection fraction.  An empty list means no
    regression.
    """
    problems: list[str] = []
    for name, bound in baseline.get("max_fn_rate", {}).items():
        cell = payload["sanitizers"].get(name)
        if cell is None:
            problems.append(f"sanitizer {name!r} missing from report")
        elif cell["fn_rate"] > bound:
            problems.append(
                f"sanitizer {name!r} fn_rate {cell['fn_rate']:.3f} > baseline {bound:.3f}"
            )
    for name, bound in baseline.get("max_fp_rate", {}).items():
        cell = payload["sanitizers"].get(name)
        if cell is not None and cell["fp_rate"] > bound:
            problems.append(
                f"sanitizer {name!r} fp_rate {cell['fp_rate']:.3f} > baseline {bound:.3f}"
            )
    for tool, bound in baseline.get("min_detection_rate", {}).items():
        section = payload["tools"].get(tool)
        if section is None:
            problems.append(f"tool {tool!r} missing from report")
            continue
        total = section["planted_total"]
        rate = (section["detected_total"] / total) if total else 1.0
        if rate < bound:
            problems.append(
                f"tool {tool!r} detection rate {rate:.3f} < baseline {bound:.3f}"
            )
    for section in payload["tools"].values():
        if section["spurious_crashes"]:
            problems.append(
                f"{section['spurious_crashes']} spurious crash(es) on bug-free programs"
            )
            break
    return problems


def load_baseline(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def write_report(payload: dict[str, Any], path: str | Path) -> Path:
    """Write the BENCH_groundtruth.json artifact (stable key order)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
