"""Multiprocess campaign execution.

The paper runs its experiments with GNU Parallel over up to 50 cores
(Appendix A.2); this module provides the same scale-out for our campaigns:
the (tool, program, trial) cells of a campaign are independent, so they
map cleanly onto a process pool.  Results are bit-identical to the serial
:class:`~repro.harness.campaign.Campaign` — each cell derives its seed the
same way — so parallelism is purely a wall-clock optimisation.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.harness.campaign import CampaignConfig, CampaignResult
from repro.harness.tools import BugSearchResult

#: (tool spec, program name, trial index, seed, budget)
_Cell = tuple[str, str, int, int, int]

#: Tool factory registry used inside workers (tools themselves are not
#: picklable across spawn boundaries; names are).
_TOOL_FACTORIES = {}


def _register_default_factories() -> None:
    from repro.harness.tools import (
        GenMcTool,
        PeriodTool,
        RffTool,
        pct_tool,
        pos_tool,
        qlearning_tool,
        random_tool,
    )

    _TOOL_FACTORIES.update(
        {
            "RFF": RffTool,
            "POS": pos_tool,
            "PCT3": pct_tool,
            "PERIOD": PeriodTool,
            "GenMC": GenMcTool,
            "QLearning RF": qlearning_tool,
            "Random": random_tool,
        }
    )


def _run_cell(cell: _Cell) -> BugSearchResult:
    from repro import bench

    if not _TOOL_FACTORIES:
        _register_default_factories()
    tool_name, program_name, trial, seed, budget = cell
    tool = _TOOL_FACTORIES[tool_name]()
    program = bench.get(program_name)
    result = tool.find_bug(program, budget, seed)
    # Stamp the trial index (the tool records the seed there by default).
    return BugSearchResult(
        tool=result.tool,
        program=result.program,
        trial=trial,
        found=result.found,
        schedules_to_bug=result.schedules_to_bug,
        executions=result.executions,
        outcome=result.outcome,
        error=result.error,
    )


@dataclass
class ParallelCampaign:
    """A process-pool campaign over named tools and benchmark programs."""

    config: CampaignConfig
    processes: int | None = None

    def run(self, tool_names: list[str], program_names: list[str]) -> CampaignResult:
        """Run all campaign cells on a fork pool; identical to serial runs."""
        _register_default_factories()
        deterministic = {"PERIOD", "GenMC"}
        cells: list[_Cell] = []
        for tool_name in tool_names:
            if tool_name not in _TOOL_FACTORIES:
                raise KeyError(f"unknown tool {tool_name!r}; known: {sorted(_TOOL_FACTORIES)}")
            trials = 1 if tool_name in deterministic else self.config.trials
            for program_name in program_names:
                budget = self.config.budget_for(program_name)
                for trial in range(trials):
                    seed = self.config.base_seed + 7919 * trial
                    cells.append((tool_name, program_name, trial, seed, budget))
        # Fork keeps the already-imported registry warm; campaign cells are
        # CPU-bound pure functions, so chunking is left to the pool.
        context = mp.get_context("fork")
        with context.Pool(processes=self.processes) as pool:
            results = pool.map(_run_cell, cells)
        outcome = CampaignResult(config=self.config)
        for result in results:
            outcome.results.setdefault((result.tool, result.program), []).append(result)
        for (tool_name, program_name), cell_results in outcome.results.items():
            cell_results.sort(key=lambda r: r.trial)
            if tool_name in deterministic and self.config.trials > 1:
                outcome.results[(tool_name, program_name)] = cell_results * self.config.trials
        return outcome
