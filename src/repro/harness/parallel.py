"""Fault-tolerant, observable multiprocess campaign execution.

The paper runs its experiments with GNU Parallel over up to 50 cores
(Appendix A.2); this module provides the same scale-out for our campaigns:
the (tool, program, trial) cells of a campaign are independent, so they map
cleanly onto worker processes.  Results are bit-identical to the serial
:class:`~repro.harness.campaign.Campaign` — each cell derives its seed the
same way — so parallelism is purely a wall-clock optimisation.

Unlike a bare process pool, the engine survives its workers:

* **crash isolation** — a worker that dies (segfault model: hard exit, OOM
  kill, SIGKILL) costs one cell attempt, not the campaign; the cell is
  retried on a fresh process up to ``max_retries`` times and, if it keeps
  failing, recorded as a structured error result (``isolate_failures``)
  instead of aborting everything;
* **per-cell timeouts** — a hung worker is killed at ``cell_timeout``
  seconds and handled like a crash;
* **graceful degradation** — if worker processes cannot be started at all,
  the engine falls back to in-process serial execution of the remaining
  cells rather than failing;
* **checkpoint/resume** — with ``checkpoint`` set, every completed cell is
  appended to a JSONL file; re-running the same campaign against that file
  skips completed cells and still produces a bit-identical
  :class:`~repro.harness.campaign.CampaignResult`;
* **telemetry** — every lifecycle step (cell start/end/retry/error, worker
  start/exit, degradation, checkpoints) is emitted into a
  :class:`~repro.harness.telemetry.TelemetrySink`.

Tool factories cross the process boundary *by importable reference*
(``"module:qualname"`` strings carried in the cell spec), never through a
module-global registry alone — so custom tools registered with
:func:`register_tool` work under the ``spawn`` start method too, where
workers do not inherit the parent's registrations.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable

from repro.harness.campaign import CampaignConfig, CampaignResult, campaign_header
from repro.harness.persist import append_jsonl, read_jsonl, result_from_dict, result_to_dict
from repro.harness.telemetry import GLOBAL_COUNTERS, TelemetrySink
from repro.harness.tools import BugSearchResult, TestingTool

CHECKPOINT_VERSION = 1


class CampaignError(RuntimeError):
    """A campaign cell failed and ``isolate_failures`` is off, or a
    checkpoint file does not match the campaign being run."""


@dataclass(frozen=True)
class CellSpec:
    """One (tool, program, trial) campaign cell, fully self-describing.

    ``factory_ref`` is an importable ``"module:qualname"`` reference to the
    tool factory, resolved *inside* the worker — the spec is all a freshly
    spawned process needs, with no reliance on inherited module globals.
    """

    tool: str
    program: str
    trial: int
    seed: int
    budget: int
    factory_ref: str
    #: Optional importable fault-injection hook called with the spec before
    #: the cell runs (see repro.harness.faults).
    fault_hook: str | None = None
    #: Online sanitizer names attached to the tool inside the worker.
    sanitizers: tuple[str, ...] = ()
    #: Replays per found bug for STABLE/FLAKY verification (0 = off).
    verify_replays: int = 0
    #: Guardrail identity triple (step budget, wall seconds, livelock
    #: window) reconstructed into a GuardConfig inside the worker; carried
    #: as a plain tuple so specs stay trivially picklable and comparable.
    guard: tuple | None = None

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.tool, self.program, self.trial)


@dataclass(frozen=True)
class CellOutcome:
    """What a worker ships back: the result plus its measured cost."""

    result: BugSearchResult
    wall_time: float
    counters: dict[str, int]


# ----------------------------------------------------------------------
# Tool factory registry (parent side) + importable references (worker side)
# ----------------------------------------------------------------------
_TOOL_FACTORIES: dict[str, Callable[[], TestingTool]] = {}


def resolve_ref(ref: str) -> Any:
    """Resolve an importable ``"module:qualname"`` reference."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed importable reference {ref!r}; expected 'module:qualname'")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def factory_ref(factory: Callable[[], TestingTool]) -> str:
    """The spawn-safe importable reference of a tool factory.

    Raises ``ValueError`` for factories a fresh worker process could not
    re-import (lambdas, closures, instance methods): those used to *silently*
    fall back to default tools in spawned workers — now they fail loudly at
    registration time.
    """
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(
            f"tool factory {factory!r} is not an importable module-level callable; "
            "parallel workers resolve factories by 'module:qualname' reference"
        )
    ref = f"{module}:{qualname}"
    try:
        resolved = resolve_ref(ref)
    except (ImportError, AttributeError, ValueError) as exc:
        raise ValueError(f"tool factory reference {ref!r} does not resolve: {exc}") from exc
    if resolved is not factory:
        raise ValueError(
            f"tool factory reference {ref!r} resolves to a different object; "
            "register a module-level function or class"
        )
    return ref


def register_tool(name: str, factory: Callable[[], TestingTool]) -> None:
    """Register a custom tool factory for parallel campaigns.

    The factory must be a module-level callable (validated eagerly) so that
    worker processes under any start method — including ``spawn``, which
    inherits nothing — can re-import it from its cell spec reference.
    """
    factory_ref(factory)  # validate now, not inside a worker
    _TOOL_FACTORIES[name] = factory


def _register_default_factories() -> None:
    from repro.harness.tools import (
        GenMcTool,
        PeriodTool,
        RffTool,
        muzz_tool,
        pct_tool,
        pos_tool,
        qlearning_tool,
        random_tool,
    )

    _TOOL_FACTORIES.setdefault("RFF", RffTool)
    _TOOL_FACTORIES.setdefault("POS", pos_tool)
    _TOOL_FACTORIES.setdefault("PCT3", pct_tool)
    _TOOL_FACTORIES.setdefault("PERIOD", PeriodTool)
    _TOOL_FACTORIES.setdefault("GenMC", GenMcTool)
    _TOOL_FACTORIES.setdefault("QLearning RF", qlearning_tool)
    _TOOL_FACTORIES.setdefault("Random", random_tool)
    _TOOL_FACTORIES.setdefault("MUZZ-like", muzz_tool)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _rff_env_snapshot() -> tuple[tuple[str, str], ...]:
    """The parent's ``RFF_*`` environment, as a picklable sorted tuple.

    Fault-injection state travels through ``RFF_*`` variables.  Under the
    ``fork`` start method children inherit them implicitly, but ``spawn``
    re-executes the interpreter and ``forkserver`` forks from a *server*
    process whose environment was frozen at first use — both can miss
    variables set (e.g. by a chaos test) after interpreter start.  Workers
    therefore restore this snapshot explicitly before running any cell.
    """
    return tuple(sorted((k, v) for k, v in os.environ.items() if k.startswith("RFF_")))


def _restore_env_then(env: dict[str, str], target: Callable, args: tuple) -> None:
    """Worker bootstrap: restore the parent's RFF_* env, then run ``target``."""
    os.environ.update(env)
    target(*args)


def _run_cell(spec: CellSpec) -> CellOutcome:
    """Execute one campaign cell; shared by workers and serial fallback."""
    from repro import bench

    if spec.fault_hook:
        resolve_ref(spec.fault_hook)(spec)
    tool = resolve_ref(spec.factory_ref)()
    if spec.sanitizers:
        tool.sanitizers = tuple(spec.sanitizers)
    if spec.verify_replays:
        tool.verify_replays = spec.verify_replays
    if spec.guard is not None:
        from repro.runtime.guard import GuardConfig

        step_budget, wall_seconds, livelock_window = spec.guard
        tool.guard = GuardConfig(
            step_budget=step_budget,
            wall_seconds=wall_seconds,
            livelock_window=livelock_window,
        )
    program = bench.get(spec.program)
    before = GLOBAL_COUNTERS.snapshot()
    start = time.perf_counter()
    result = tool.find_bug(program, spec.budget, spec.seed)
    wall_time = time.perf_counter() - start
    counters = GLOBAL_COUNTERS.delta(before).as_dict()
    # Stamp the trial index (the tool records the seed there by default).
    return CellOutcome(
        result=replace(result, trial=spec.trial), wall_time=wall_time, counters=counters
    )


def _worker_main(conn, spec: CellSpec) -> None:
    """Worker entrypoint: run the cell, ship ('ok', outcome) or ('error', msg).

    An exception here is deterministic program/tool misbehaviour, reported
    as a structured message; a worker that dies without sending anything
    (hard crash, kill) is detected parent-side by the closed pipe.
    """
    try:
        payload = ("ok", _run_cell(spec))
    except BaseException as exc:  # noqa: BLE001 - must not leak workers
        payload = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    finally:
        conn.close()


@dataclass
class _Worker:
    """Parent-side handle of one in-flight cell attempt."""

    spec: CellSpec
    attempt: int
    proc: Any
    conn: Any
    started: float


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class ParallelCampaign:
    """A fault-tolerant process-per-cell campaign over named tools/programs.

    ``processes=0`` runs every cell in-process (the degraded-pool code path,
    also useful for debugging); ``processes=None`` uses the CPU count.
    ``max_retries`` bounds *extra* attempts after a worker crash or timeout;
    in-worker Python exceptions are deterministic and are not retried.
    """

    config: CampaignConfig
    processes: int | None = None
    #: Seconds one cell attempt may run before its worker is killed.
    cell_timeout: float | None = None
    #: Extra attempts (fresh worker process each) after crash/timeout.
    max_retries: int = 2
    #: Record exhausted cells as structured error results instead of raising.
    isolate_failures: bool = True
    #: JSONL checkpoint path; existing compatible checkpoints are resumed.
    checkpoint: str | Path | None = None
    telemetry: TelemetrySink = field(default_factory=TelemetrySink)
    #: Multiprocessing start method (None = fork where available, else spawn).
    start_method: str | None = None
    #: Importable fault-injection hook propagated into every cell spec.
    fault_hook: str | None = None
    #: Durable corpus store (CorpusStore instance or path); completed cells
    #: are recorded there and resumed from it, alongside any checkpoint.
    store: Any = None
    #: Execution engine: "percell" forks one worker per slice attempt;
    #: "pool" serves batches of slices through long-lived workers that
    #: cache tools and programs (see repro.harness.pool).  Results are
    #: bit-identical either way.
    engine: str = "percell"
    #: Maximum slices per pooled batch (None = pool default).
    batch_size: int | None = None
    #: Directory for per-worker cProfile dumps under the pool engine
    #: (None = profiling off); summarize with reporting.profile_summary.
    profile_dir: str | Path | None = None

    # -- public API -----------------------------------------------------
    def run(self, tool_names: list[str], program_names: list[str]) -> CampaignResult:
        """Run all campaign cells; the result is bit-identical to serial runs."""
        if self.engine not in ("percell", "pool"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'percell' or 'pool'"
            )
        _register_default_factories()
        if self.config.allocator is not None:
            return self._run_allocated(tool_names, program_names)
        sink = self.telemetry
        specs, deterministic = self._build_specs(tool_names, program_names)
        self._total_cells = len(specs)
        store, store_owned = self._open_store()
        try:
            if store is not None:
                store.begin_campaign(self._checkpoint_header(tool_names, program_names))
            completed = self._load_checkpoint(specs, tool_names, program_names)
            if store is not None:
                # Checkpoint records win (they went through the same recorder);
                # the store fills in cells the checkpoint missed — e.g. a crash
                # between the store append and the checkpoint append.
                valid_keys = {spec.key for spec in specs}
                for key, result in store.completed().items():
                    if key in valid_keys and key not in completed:
                        completed[key] = result
            pending = [spec for spec in specs if spec.key not in completed]
            start = time.perf_counter()
            sink.emit(
                "campaign_start",
                tools=list(tool_names),
                programs=list(program_names),
                trials=self.config.trials,
                total_cells=len(specs),
                resumed_cells=len(completed),
                processes=self._process_count(),
            )
            stats = {"retries": 0, "failed": 0, "executions": 0}
            recorder = self._make_recorder(completed, stats, sink, store)
            if self._process_count() == 0:
                for spec in pending:
                    self._run_serial_cell(spec, 1, recorder, stats, sink)
            else:
                self._execute_parallel(pending, recorder, stats, sink)
            wall_time = time.perf_counter() - start
            sink.emit(
                "campaign_end",
                wall_time=wall_time,
                cells=len(completed),
                failed_cells=stats["failed"],
                retries=stats["retries"],
                executions=stats["executions"],
                schedules_per_sec=stats["executions"] / wall_time if wall_time > 0 else 0.0,
            )
            return self._assemble(tool_names, program_names, deterministic, completed)
        finally:
            self._close_pool()
            if store_owned:
                store.close()

    def _open_store(self):
        """Resolve the ``store`` field to (CorpusStore | None, owned)."""
        if self.store is None:
            return None, False
        if isinstance(self.store, (str, Path)):
            from repro.harness.store import CorpusStore

            return CorpusStore(self.store), True
        return self.store, False

    # -- allocated (round-based) execution ------------------------------
    def _run_allocated(self, tool_names: list[str], program_names: list[str]) -> CampaignResult:
        """The round-based path: identical plans and slice seeds to the
        serial engine (both drive ``AllocationRun``), with each round's
        missing slices dispatched through the normal worker machinery —
        so crash isolation, retries, timeouts, supervision and degraded
        fallback all apply per slice."""
        from repro.harness.allocator import AllocationRun, slice_seed

        sink = self.telemetry
        allocator = self.config.allocator
        cells, deterministic, refs = self._build_cells(tool_names, program_names)
        self._total_cells = len(cells)
        store, store_owned = self._open_store()
        try:
            header = self._checkpoint_header(tool_names, program_names)
            valid_keys = {cell.key for cell in cells}
            done_cells, done_slices = self._load_allocated_checkpoint(header, valid_keys)
            if store is not None:
                store.begin_campaign(header)
                for key, result in store.completed().items():
                    if key in valid_keys and key not in done_cells:
                        done_cells[key] = result
                for slice_key, result in store.completed_slices().items():
                    if slice_key[:3] in valid_keys and slice_key not in done_slices:
                        done_slices[slice_key] = result
            sliced_cells = {slice_key[:3] for slice_key in done_slices}
            run_state = AllocationRun(allocator, cells, self.config.base_seed)
            start = time.perf_counter()
            sink.emit(
                "campaign_start",
                tools=list(tool_names),
                programs=list(program_names),
                trials=self.config.trials,
                total_cells=len(cells),
                resumed_cells=len(sliced_cells | set(done_cells)),
                processes=self._process_count(),
            )
            stats = {"retries": 0, "failed": 0, "executions": 0}
            while (plan := run_state.next_plan()) is not None:
                round_index = run_state.round_index
                sink.emit(
                    "alloc_round",
                    allocator=allocator.name,
                    round=round_index,
                    budget=sum(plan.values()),
                    cells=len(plan),
                )
                estimates = run_state.estimates()
                round_results: dict[tuple[str, str, int], BugSearchResult] = {}
                recorder = self._make_recorder(
                    round_results, stats, sink, store, slice_round=round_index
                )
                pending: list[CellSpec] = []
                for key in sorted(plan):
                    tool_name, program_name, trial = key
                    sink.emit(
                        "alloc_estimate",
                        allocator=allocator.name,
                        round=round_index,
                        tool=tool_name,
                        program=program_name,
                        trial=trial,
                        allocated=plan[key],
                        estimate=estimates.get(key),
                    )
                    slice_key = (tool_name, program_name, trial, round_index)
                    if slice_key in done_slices:
                        round_results[key] = done_slices[slice_key]
                        continue
                    if round_index == 0 and key in done_cells and key not in sliced_cells:
                        # A store/checkpoint written by the single-pass path
                        # (only header-compatible under the uniform
                        # allocator): the whole cell is already done.
                        round_results[key] = done_cells[key]
                        continue
                    pending.append(
                        CellSpec(
                            tool=tool_name,
                            program=program_name,
                            trial=trial,
                            seed=slice_seed(self.config.base_seed, trial, round_index),
                            budget=plan[key],
                            factory_ref=refs[tool_name],
                            fault_hook=self.fault_hook,
                            sanitizers=tuple(self.config.sanitizers),
                            verify_replays=self.config.verify_replays,
                            guard=(
                                self.config.guard.as_tuple()
                                if self.config.guard is not None
                                else None
                            ),
                        )
                    )
                if pending:
                    if self._process_count() == 0:
                        for spec in pending:
                            self._run_serial_cell(spec, 1, recorder, stats, sink)
                    else:
                        self._execute_parallel(pending, recorder, stats, sink)
                run_state.observe(plan, round_results)
            merged = run_state.merged()
            if store is not None:
                already = store.completed()
                for key in sorted(merged):
                    if key not in already:
                        store.record_result(merged[key])
            wall_time = time.perf_counter() - start
            sink.emit(
                "campaign_end",
                wall_time=wall_time,
                cells=len(merged),
                failed_cells=stats["failed"],
                retries=stats["retries"],
                executions=stats["executions"],
                schedules_per_sec=stats["executions"] / wall_time if wall_time > 0 else 0.0,
            )
            outcome = self._assemble(tool_names, program_names, deterministic, merged)
            outcome.allocation = run_state.ledger()
            return outcome
        finally:
            # The pool persists across allocation rounds (that is the point:
            # worker caches amortize over the whole campaign); it is torn
            # down only here, once the last round has run.
            self._close_pool()
            if store_owned:
                store.close()

    def _build_cells(self, tool_names: list[str], program_names: list[str]):
        """The allocator's view of the campaign: CellInfo per cell, plus the
        deterministic-tool set and factory references for spec building."""
        from repro.harness.allocator import CellInfo

        deterministic: set[str] = set()
        refs: dict[str, str] = {}
        cells: list[CellInfo] = []
        for tool_name in tool_names:
            if tool_name not in _TOOL_FACTORIES:
                raise KeyError(f"unknown tool {tool_name!r}; known: {sorted(_TOOL_FACTORIES)}")
            factory = _TOOL_FACTORIES[tool_name]
            refs[tool_name] = factory_ref(factory)
            if factory().deterministic:
                deterministic.add(tool_name)
            trials = 1 if tool_name in deterministic else self.config.trials
            for program_name in program_names:
                budget = self.config.budget_for(program_name)
                for trial in range(trials):
                    cells.append(
                        CellInfo(
                            tool=tool_name,
                            program=program_name,
                            trial=trial,
                            budget=budget,
                            one_shot=tool_name in deterministic,
                        )
                    )
        return cells, deterministic, refs

    def _load_allocated_checkpoint(
        self, header: dict[str, Any], valid_keys: set[tuple[str, str, int]]
    ) -> tuple[
        dict[tuple[str, str, int], BugSearchResult],
        dict[tuple[str, str, int, int], BugSearchResult],
    ]:
        """Resume (whole cells, round slices) from the checkpoint file."""
        done_cells: dict[tuple[str, str, int], BugSearchResult] = {}
        done_slices: dict[tuple[str, str, int, int], BugSearchResult] = {}
        if self.checkpoint is None:
            return done_cells, done_slices
        records = read_jsonl(self.checkpoint)
        if not records:
            append_jsonl(header, self.checkpoint)
            return done_cells, done_slices
        if records[0] != header:
            raise CampaignError(
                f"checkpoint {self.checkpoint} belongs to a different campaign: "
                f"{records[0]!r} != {header!r}"
            )
        for record in records[1:]:
            result = result_from_dict(record["result"])
            key = (result.tool, result.program, result.trial)
            if key not in valid_keys:
                continue
            if "round" in record:
                done_slices.setdefault((*key, record["round"]), result)
            else:
                done_cells.setdefault(key, result)
        return done_cells, done_slices

    # -- cell spec construction ----------------------------------------
    def _build_specs(
        self, tool_names: list[str], program_names: list[str]
    ) -> tuple[list[CellSpec], set[str]]:
        deterministic: set[str] = set()
        specs: list[CellSpec] = []
        for tool_name in tool_names:
            if tool_name not in _TOOL_FACTORIES:
                raise KeyError(f"unknown tool {tool_name!r}; known: {sorted(_TOOL_FACTORIES)}")
            factory = _TOOL_FACTORIES[tool_name]
            ref = factory_ref(factory)
            if factory().deterministic:
                deterministic.add(tool_name)
            trials = 1 if tool_name in deterministic else self.config.trials
            for program_name in program_names:
                budget = self.config.budget_for(program_name)
                for trial in range(trials):
                    seed = self.config.base_seed + 7919 * trial
                    specs.append(
                        CellSpec(
                            tool=tool_name,
                            program=program_name,
                            trial=trial,
                            seed=seed,
                            budget=budget,
                            factory_ref=ref,
                            fault_hook=self.fault_hook,
                            sanitizers=tuple(self.config.sanitizers),
                            verify_replays=self.config.verify_replays,
                            guard=(
                                self.config.guard.as_tuple()
                                if self.config.guard is not None
                                else None
                            ),
                        )
                    )
        return specs, deterministic

    def _process_count(self) -> int:
        if self.processes is None:
            return os.cpu_count() or 1
        return self.processes

    # -- checkpointing --------------------------------------------------
    def _checkpoint_header(self, tool_names: list[str], program_names: list[str]) -> dict[str, Any]:
        return campaign_header(self.config, tool_names, program_names)

    def _load_checkpoint(
        self, specs: list[CellSpec], tool_names: list[str], program_names: list[str]
    ) -> dict[tuple[str, str, int], BugSearchResult]:
        """Resume completed cells from the checkpoint file (if any)."""
        if self.checkpoint is None:
            return {}
        header = self._checkpoint_header(tool_names, program_names)
        records = read_jsonl(self.checkpoint)
        if not records:
            append_jsonl(header, self.checkpoint)
            return {}
        if records[0] != header:
            raise CampaignError(
                f"checkpoint {self.checkpoint} belongs to a different campaign: "
                f"{records[0]!r} != {header!r}"
            )
        valid_keys = {spec.key for spec in specs}
        completed: dict[tuple[str, str, int], BugSearchResult] = {}
        for record in records[1:]:
            result = result_from_dict(record["result"])
            key = (result.tool, result.program, result.trial)
            if key in valid_keys:
                completed[key] = result
        return completed

    # -- result recording ----------------------------------------------
    def _make_recorder(
        self,
        completed: dict[tuple[str, str, int], BugSearchResult],
        stats: dict[str, int],
        sink: TelemetrySink,
        store=None,
        slice_round: int | None = None,
    ) -> Callable[[CellSpec, int, CellOutcome | None, BugSearchResult], None]:
        def record(
            spec: CellSpec, attempt: int, outcome: CellOutcome | None, result: BugSearchResult
        ) -> None:
            completed[spec.key] = result
            if store is not None:
                # Durable ledger first: if we die between the two appends, the
                # checkpoint is behind the store and resume takes the union.
                if slice_round is None:
                    store.record_result(result)
                else:
                    store.record_slice(slice_round, result)
            if outcome is not None:
                stats["executions"] += outcome.result.executions
                # The executor-level counter delta also counts executions;
                # the result's own count is the authoritative cell figure.
                counters = {k: v for k, v in outcome.counters.items() if k != "executions"}
                sink.emit(
                    "cell_end",
                    tool=spec.tool,
                    program=spec.program,
                    trial=spec.trial,
                    attempt=attempt,
                    wall_time=outcome.wall_time,
                    executions=outcome.result.executions,
                    schedules_per_sec=(
                        outcome.result.executions / outcome.wall_time
                        if outcome.wall_time > 0
                        else 0.0
                    ),
                    found=outcome.result.found,
                    **counters,
                )
                for report in outcome.result.sanitizer_reports:
                    sink.emit(
                        "sanitizer_report",
                        tool=spec.tool,
                        program=spec.program,
                        trial=spec.trial,
                        sanitizer=report.sanitizer,
                        kind=report.kind,
                        location=report.location,
                        pair=list(report.pair),
                    )
            if self.checkpoint is not None:
                payload: dict[str, Any] = {"result": result_to_dict(result)}
                if slice_round is not None:
                    payload["round"] = slice_round
                append_jsonl(payload, self.checkpoint)
                sink.emit(
                    "checkpoint",
                    path=str(self.checkpoint),
                    completed=len(completed),
                    total=self._total_cells,
                )

        return record

    def _fail(
        self,
        spec: CellSpec,
        attempts: int,
        kind: str,
        detail: str,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        stats["failed"] += 1
        sink.emit(
            "cell_error",
            tool=spec.tool,
            program=spec.program,
            trial=spec.trial,
            attempts=attempts,
            kind=kind,
            detail=detail,
        )
        if not self.isolate_failures:
            raise CampaignError(
                f"cell {spec.tool}/{spec.program} trial {spec.trial} failed ({kind}): {detail}"
            )
        recorder(
            spec,
            attempts,
            None,
            BugSearchResult(
                tool=spec.tool,
                program=spec.program,
                trial=spec.trial,
                found=False,
                schedules_to_bug=None,
                executions=0,
                outcome=None,
                error=f"{kind} after {attempts} attempt(s): {detail}",
            ),
        )

    # -- serial fallback -----------------------------------------------
    def _run_serial_cell(
        self, spec: CellSpec, attempt: int, recorder, stats: dict[str, int], sink: TelemetrySink
    ) -> None:
        sink.emit(
            "cell_start", tool=spec.tool, program=spec.program, trial=spec.trial, attempt=attempt
        )
        try:
            outcome = _run_cell(spec)
        except Exception as exc:  # deterministic failure: no retry in-process
            self._fail(spec, attempt, "error", f"{type(exc).__name__}: {exc}", recorder, stats, sink)
            return
        recorder(spec, attempt, outcome, outcome.result)

    # -- pooled execution -----------------------------------------------
    def _pool_heartbeat_seconds(self) -> float | None:
        """Heartbeat period for pooled workers (None = no heartbeats) —
        subclass hook; the supervised engine returns its configured period."""
        return None

    def _pool_kwargs(self) -> dict[str, Any]:
        """Extra WorkerPool arguments — subclass hook (the supervised engine
        adds its lease timeout and retry backoff)."""
        return {}

    def _ensure_pool(self):
        """The campaign's persistent worker pool, created on first use and
        kept alive across allocation rounds so worker caches amortize."""
        pool = getattr(self, "_pool", None)
        if pool is not None:
            return pool
        from repro.harness.pool import WorkerPool, WorkerProfile

        profile_dir = None
        if self.profile_dir is not None:
            profile_dir = str(self.profile_dir)
            Path(profile_dir).mkdir(parents=True, exist_ok=True)
        profile = WorkerProfile(
            sanitizers=tuple(self.config.sanitizers),
            verify_replays=self.config.verify_replays,
            guard=self.config.guard.as_tuple() if self.config.guard is not None else None,
            fault_hook=self.fault_hook,
            heartbeat_seconds=self._pool_heartbeat_seconds(),
            profile_dir=profile_dir,
            env=_rff_env_snapshot(),
        )
        context = mp.get_context(self.start_method or _default_start_method())
        self._pool = WorkerPool(
            context=context,
            size=max(1, self._process_count()),
            profile=profile,
            batch_size=self.batch_size,
            **self._pool_kwargs(),
        )
        return self._pool

    def _close_pool(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            self._pool = None
            pool.close(self.telemetry)

    # -- parallel execution --------------------------------------------
    def _worker_invocation(self, child_conn, spec: CellSpec) -> tuple[Callable, tuple]:
        """The (target, args) a worker process runs — subclass hook (the
        supervised engine swaps in a heartbeat-emitting entrypoint)."""
        return _worker_main, (child_conn, spec)

    def _launch(self, context, spec: CellSpec, attempt: int, sink: TelemetrySink) -> _Worker | None:
        """Start one worker process; None when the pool is dead (degrade)."""
        sink.emit(
            "cell_start", tool=spec.tool, program=spec.program, trial=spec.trial, attempt=attempt
        )
        try:
            parent_conn, child_conn = context.Pipe(duplex=False)
            target, args = self._worker_invocation(child_conn, spec)
            proc = context.Process(
                target=_restore_env_then,
                args=(dict(_rff_env_snapshot()), target, args),
                daemon=True,
            )
            proc.start()
        except OSError:
            return None
        child_conn.close()
        sink.emit(
            "worker_start", pid=proc.pid, tool=spec.tool, program=spec.program, trial=spec.trial
        )
        return _Worker(
            spec=spec, attempt=attempt, proc=proc, conn=parent_conn, started=time.perf_counter()
        )

    @staticmethod
    def _kill(worker: _Worker) -> None:
        worker.proc.terminate()
        worker.proc.join(timeout=5)
        if worker.proc.is_alive():  # pragma: no cover - terminate() suffices
            worker.proc.kill()
            worker.proc.join()
        worker.conn.close()

    def _retry_or_fail(
        self,
        worker: _Worker,
        kind: str,
        detail: str,
        queue: deque,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        if worker.attempt <= self.max_retries:
            stats["retries"] += 1
            sink.emit(
                "cell_retry",
                tool=worker.spec.tool,
                program=worker.spec.program,
                trial=worker.spec.trial,
                attempt=worker.attempt,
                kind=kind,
            )
            queue.append((worker.spec, worker.attempt + 1))
        else:
            self._fail(worker.spec, worker.attempt, kind, detail, recorder, stats, sink)

    def _reap(
        self,
        worker: _Worker,
        queue: deque,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        """Handle a worker whose pipe became readable (result or death)."""
        try:
            kind, payload = worker.conn.recv()
        except (EOFError, OSError):
            worker.proc.join()
            worker.conn.close()
            exitcode = worker.proc.exitcode
            sink.emit("worker_exit", pid=worker.proc.pid, exitcode=exitcode, kind="crash")
            self._retry_or_fail(
                worker,
                "crash",
                f"worker died with exit code {exitcode}",
                queue,
                recorder,
                stats,
                sink,
            )
            return
        worker.conn.close()
        worker.proc.join()
        sink.emit("worker_exit", pid=worker.proc.pid, exitcode=worker.proc.exitcode, kind="ok")
        if kind == "ok":
            recorder(worker.spec, worker.attempt, payload, payload.result)
        else:
            # A deterministic in-worker exception; retrying cannot help.
            self._fail(worker.spec, worker.attempt, "error", payload, recorder, stats, sink)

    def _execute_parallel(
        self,
        specs: list[CellSpec],
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        if self.engine == "pool":
            self._ensure_pool().execute(specs, recorder, stats, sink, self)
            return
        context = mp.get_context(self.start_method or _default_start_method())
        capacity = max(1, self._process_count())
        queue: deque[tuple[CellSpec, int]] = deque((spec, 1) for spec in specs)
        active: dict[Any, _Worker] = {}
        degraded = False
        try:
            while queue or active:
                while not degraded and queue and len(active) < capacity:
                    spec, attempt = queue.popleft()
                    worker = self._launch(context, spec, attempt, sink)
                    if worker is None:
                        degraded = True
                        sink.emit(
                            "pool_degraded",
                            reason="worker process could not be started; "
                            "running remaining cells serially in-process",
                        )
                        queue.appendleft((spec, attempt))
                        break
                    active[worker.conn] = worker
                if not active:
                    if degraded and queue:
                        spec, attempt = queue.popleft()
                        self._run_serial_cell(spec, attempt, recorder, stats, sink)
                    continue
                timeout = None
                if self.cell_timeout is not None:
                    now = time.perf_counter()
                    nearest = min(w.started + self.cell_timeout for w in active.values())
                    timeout = max(0.0, nearest - now)
                for conn in mp_connection.wait(list(active), timeout=timeout):
                    self._reap(active.pop(conn), queue, recorder, stats, sink)
                if self.cell_timeout is not None:
                    now = time.perf_counter()
                    for conn, worker in list(active.items()):
                        if now - worker.started >= self.cell_timeout:
                            del active[conn]
                            self._kill(worker)
                            sink.emit(
                                "worker_exit",
                                pid=worker.proc.pid,
                                exitcode=worker.proc.exitcode,
                                kind="timeout",
                            )
                            self._retry_or_fail(
                                worker,
                                "timeout",
                                f"cell exceeded {self.cell_timeout:g}s timeout",
                                queue,
                                recorder,
                                stats,
                                sink,
                            )
        finally:
            for worker in active.values():  # abort path: leak no workers
                self._kill(worker)

    # -- assembly -------------------------------------------------------
    def _assemble(
        self,
        tool_names: list[str],
        program_names: list[str],
        deterministic: set[str],
        completed: dict[tuple[str, str, int], BugSearchResult],
    ) -> CampaignResult:
        outcome = CampaignResult(config=self.config)
        for tool_name in tool_names:
            trials = 1 if tool_name in deterministic else self.config.trials
            for program_name in program_names:
                cell_results = [
                    completed[(tool_name, program_name, trial)] for trial in range(trials)
                ]
                if tool_name in deterministic and self.config.trials > 1:
                    # Replicate the single deterministic result so per-trial
                    # aggregates stay comparable across tools.
                    cell_results = cell_results * self.config.trials
                outcome.results[(tool_name, program_name)] = cell_results
        return outcome


def _default_start_method() -> str:
    """Prefer ``forkserver`` on 3.12+ (fork-from-threaded-parent is deprecated
    there and the server process keeps launches cheap and thread-safe); keep
    ``fork`` on older interpreters where it is still the fastest safe default.
    Workers re-apply the parent's ``RFF_*`` env either way, so fault-injection
    behaviour is identical across start methods."""
    methods = mp.get_all_start_methods()
    if sys.version_info >= (3, 12) and "forkserver" in methods:
        return "forkserver"
    return "fork" if "fork" in methods else "spawn"
