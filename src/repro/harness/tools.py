"""Uniform adapters around every testing technique the paper evaluates.

A :class:`TestingTool` answers one question — *how many schedules until the
first bug?* — which is the paper's primary metric (Section 5.1, "Bugs").
Tool names match the Figure 4 legend: ``RFF``, ``POS``, ``PCT3``,
``PERIOD``, ``QLearning RF``, ``GenMC`` (plus ``Random`` as an extra naive
baseline).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.algos.modelcheck import ModelChecker, UnsupportedProgram
from repro.algos.period import PeriodExplorer
from repro.algos.qlearning import QLearningRfPolicy
from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.core.reproduce import bucket_id, dedup_key, sanitizer_key, verify_replay
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.guard import GuardConfig
from repro.runtime.program import Program
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.muzz_like import MuzzLikePolicy
from repro.schedulers.pct import PctPolicy
from repro.schedulers.pos import PosPolicy
from repro.schedulers.random_walk import RandomWalkPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.online import SanitizerReport


@dataclass(frozen=True)
class BugSearchResult:
    """Outcome of one trial of one tool on one program."""

    tool: str
    program: str
    trial: int
    found: bool
    #: 1-based schedule index of the first bug (None when not found).
    schedules_to_bug: int | None
    #: Total schedules executed by the trial.
    executions: int
    outcome: str | None = None
    #: Non-None when the tool could not run the program at all (the
    #: Appendix B "Error" cells, e.g. GenMC's unsupported programs).
    error: str | None = None
    #: Distinct online-sanitizer findings of the trial (when the tool ran
    #: with a sanitizer stack attached).
    sanitizer_reports: tuple["SanitizerReport", ...] = ()
    #: Triage bucket of the first bug (None when no bug / not computable).
    bucket: str | None = None
    #: Replay verification verdict of the first bug: ``"STABLE"`` when every
    #: verification replay reproduced the identical outcome and dedup key,
    #: ``"FLAKY"`` otherwise (the finding is quarantined), None when replay
    #: verification was off or the tool cannot replay (model checkers).
    replay_verdict: str | None = None
    #: Executions whose reads-from signature was new to this trial — the
    #: novelty counter adaptive budget allocators estimate from (0 for
    #: tools that do not track rf-signatures).
    new_signatures: int = 0


class TestingTool(ABC):
    """One bug-finding technique with a schedule budget."""

    name: str = "tool"
    #: Deterministic tools (model checkers, systematic explorers) need only
    #: one trial; the harness exploits this.
    deterministic: bool = False
    #: Online sanitizer names attached per execution.  The campaign harness
    #: sets this from ``CampaignConfig.sanitizers``; tools that do not
    #: support sanitizers simply ignore it.
    sanitizers: tuple[str, ...] = ()
    #: Replays per found bug for STABLE/FLAKY verification (0 = off).  Set
    #: by the campaign harness from ``CampaignConfig.verify_replays``.
    verify_replays: int = 0
    #: Runtime guardrails attached to every execution (None = unguarded).
    guard: GuardConfig | None = None
    #: Whether one tool instance may serve many ``find_bug`` calls.  Every
    #: built-in tool derives all per-search state (RNGs, policies, fuzzers)
    #: from the call's seed, so pooled workers cache instances across slices
    #: and allocation rounds.  A custom tool that accumulates cross-call
    #: state must set this to False; the worker pool then rebuilds it for
    #: every slice instead of caching it by (tool, program).
    reusable: bool = True

    @abstractmethod
    def find_bug(self, program: Program, budget: int, seed: int) -> BugSearchResult:
        """Run until the first bug or until ``budget`` schedules elapse."""

    def _result(
        self,
        program: Program,
        trial_seed: int,
        schedules_to_bug: int | None,
        executions: int,
        outcome: str | None = None,
        error: str | None = None,
        sanitizer_reports: tuple["SanitizerReport", ...] = (),
        bucket: str | None = None,
        replay_verdict: str | None = None,
        new_signatures: int = 0,
    ) -> BugSearchResult:
        return BugSearchResult(
            tool=self.name,
            program=program.name,
            trial=trial_seed,
            found=schedules_to_bug is not None,
            schedules_to_bug=schedules_to_bug,
            executions=executions,
            outcome=outcome,
            error=error,
            sanitizer_reports=sanitizer_reports,
            bucket=bucket,
            replay_verdict=replay_verdict,
            new_signatures=new_signatures,
        )

    def _verify(
        self,
        program: Program,
        schedule: tuple[int, ...],
        expected_outcome: str | None,
        expected_key: tuple[str, str, str] | None = None,
        expected_sanitizer_key: tuple | None = None,
        executor_class: type[Executor] | None = None,
        sanitizers: tuple[str, ...] | None = None,
        max_steps: int | None = None,
        guard: GuardConfig | None = None,
    ) -> str | None:
        """Replay-verify one found bug; returns STABLE/FLAKY or None (off)."""
        if self.verify_replays <= 0:
            return None
        verdict = verify_replay(
            program,
            schedule,
            expected_outcome,
            expected_key,
            replays=self.verify_replays,
            max_steps=max_steps,
            sanitizers=tuple(self.sanitizers) if sanitizers is None else sanitizers,
            expected_sanitizer_key=expected_sanitizer_key,
            executor_class=executor_class,
            guard=self.guard if guard is None else guard,
        )
        if not verdict.stable:
            from repro.harness.telemetry import GLOBAL_COUNTERS

            GLOBAL_COUNTERS.flaky_quarantined += 1
        return verdict.verdict


def _program_steps(program: Program) -> int:
    return program.max_steps if program.max_steps is not None else DEFAULT_MAX_STEPS


class RffTool(TestingTool):
    """The paper's tool: greybox fuzzing over abstract schedules."""

    def __init__(self, config: RffConfig | None = None, name: str = "RFF"):
        self.config = config or RffConfig()
        self.name = name

    def find_bug(self, program: Program, budget: int, seed: int) -> BugSearchResult:
        config = self.config
        if self.sanitizers and not config.sanitizers:
            config = replace(config, sanitizers=tuple(self.sanitizers))
        if self.guard is not None and config.guard is None:
            config = replace(config, guard=self.guard)
        fuzzer = RffFuzzer(program, seed=seed, config=config)
        report = fuzzer.run(budget, stop_on_first_crash=True)
        crash = report.crashes[0] if report.crashes else None
        record = report.sanitizer_records[0] if report.sanitizer_records else None
        if record is not None and (
            crash is None or record.execution_index < crash.execution_index
        ):
            crash = None  # the sanitizer finding is the first bug
        outcome = None
        bucket = None
        verdict = None
        executor_class = fuzzer._executor_class()
        if crash is not None:
            outcome = crash.outcome
            if crash.dedup_key is not None:
                bucket = bucket_id(crash.dedup_key)
            verdict = self._verify(
                program,
                crash.concrete_schedule,
                crash.outcome,
                crash.dedup_key,
                executor_class=executor_class,
                sanitizers=config.sanitizers,
                max_steps=config.max_steps,
                guard=config.guard,
            )
        elif record is not None:
            outcome = f"sanitizer:{record.report.sanitizer}"
            bucket = bucket_id(sanitizer_key(record.report))
            verdict = self._verify(
                program,
                record.concrete_schedule,
                None,
                expected_sanitizer_key=record.report.dedup_key,
                executor_class=executor_class,
                sanitizers=config.sanitizers,
                max_steps=config.max_steps,
                guard=config.guard,
            )
        return self._result(
            program,
            seed,
            report.first_bug_at,
            report.executions,
            outcome,
            sanitizer_reports=tuple(r.report for r in report.sanitizer_records),
            bucket=bucket,
            replay_verdict=verdict,
            new_signatures=report.unique_signatures,
        )


class PerExecutionPolicyTool(TestingTool):
    """Run a fresh (or persistent) scheduler policy once per schedule.

    ``persistent=True`` keeps one policy object across executions — needed by
    PCT (execution-length estimate) and Q-learning (the Q table)."""

    def __init__(self, name: str, make_policy, persistent: bool = False):
        self.name = name
        self._make_policy = make_policy
        self.persistent = persistent

    def find_bug(self, program: Program, budget: int, seed: int) -> BugSearchResult:
        rng = random.Random(seed)
        policy: SchedulerPolicy | None = self._make_policy(rng.randrange(2**63)) if self.persistent else None
        max_steps = _program_steps(program)
        stack_builder = None
        if self.sanitizers:
            from repro.analysis.online import build_stack

            stack_builder = build_stack
        seen_keys: set[tuple] = set()
        all_reports: list["SanitizerReport"] = []
        seen_signatures: set[int] = set()
        for index in range(1, budget + 1):
            current = policy if policy is not None else self._make_policy(rng.randrange(2**63))
            stack = stack_builder(self.sanitizers) if stack_builder else None
            result = Executor(
                program, current, max_steps=max_steps, sanitizers=stack, guard=self.guard
            ).run()
            seen_signatures.add(result.trace.rf_sig_hash())
            new_reports = [
                r for r in result.sanitizer_reports if r.dedup_key not in seen_keys
            ]
            for report in new_reports:
                seen_keys.add(report.dedup_key)
                all_reports.append(report)
            if result.crashed:
                key = dedup_key(result)
                verdict = self._verify(
                    program, tuple(result.schedule), result.outcome, key
                )
                return self._result(
                    program, seed, index, index, result.outcome,
                    sanitizer_reports=tuple(all_reports),
                    bucket=bucket_id(key),
                    replay_verdict=verdict,
                    new_signatures=len(seen_signatures),
                )
            if new_reports:
                first = new_reports[0]
                verdict = self._verify(
                    program,
                    tuple(result.schedule),
                    None,
                    expected_sanitizer_key=first.dedup_key,
                )
                return self._result(
                    program, seed, index, index,
                    f"sanitizer:{first.sanitizer}",
                    sanitizer_reports=tuple(all_reports),
                    bucket=bucket_id(sanitizer_key(first)),
                    replay_verdict=verdict,
                    new_signatures=len(seen_signatures),
                )
        return self._result(
            program, seed, None, budget,
            sanitizer_reports=tuple(all_reports),
            new_signatures=len(seen_signatures),
        )


def pos_tool() -> PerExecutionPolicyTool:
    """Partial Order Sampling, one fresh sampler per schedule."""
    return PerExecutionPolicyTool("POS", lambda s: PosPolicy(seed=s))


def random_tool() -> PerExecutionPolicyTool:
    """Uniform random walk baseline."""
    return PerExecutionPolicyTool("Random", lambda s: RandomWalkPolicy(seed=s))


def muzz_tool() -> PerExecutionPolicyTool:
    """MUZZ-style static-priority exploration (the Section 5.1 negative
    result): priorities are randomized once per thread at creation."""
    return PerExecutionPolicyTool("MUZZ-like", lambda s: MuzzLikePolicy(seed=s))


def pct_tool(depth: int = 3) -> PerExecutionPolicyTool:
    """PCT with the paper's depth 3; the length estimate persists."""
    return PerExecutionPolicyTool(
        f"PCT{depth}", lambda s: PctPolicy(depth=depth, seed=s), persistent=True
    )


def qlearning_tool() -> PerExecutionPolicyTool:
    """Q-Learning RF (Section 5.5); the Q table persists across schedules."""
    return PerExecutionPolicyTool("QLearning RF", lambda s: QLearningRfPolicy(seed=s), persistent=True)


class PeriodTool(TestingTool):
    """The PERIOD stand-in: iterative preemption-bounded exploration."""

    name = "PERIOD"
    deterministic = True

    def __init__(self, max_bound: int = 4):
        self.max_bound = max_bound

    def find_bug(self, program: Program, budget: int, seed: int) -> BugSearchResult:
        explorer = PeriodExplorer(
            program, max_executions=budget, max_bound=self.max_bound, max_steps=_program_steps(program)
        )
        report = explorer.run()
        return self._result(program, seed, report.first_bug_at, report.executions, report.bug_outcome)


class GenMcTool(TestingTool):
    """The GenMC stand-in: exhaustive rf-class enumeration where supported."""

    name = "GenMC"
    deterministic = True

    def find_bug(self, program: Program, budget: int, seed: int) -> BugSearchResult:
        checker = ModelChecker(program, max_executions=budget, max_steps=_program_steps(program))
        try:
            report = checker.check()
        except UnsupportedProgram as exc:
            return self._result(program, seed, None, 0, error=str(exc))
        return self._result(
            program, seed, report.first_bug_at_class, report.executions, report.bug_outcome
        )


def paper_tools() -> list[TestingTool]:
    """The six techniques of Figure 4, in its legend order."""
    return [pct_tool(), PeriodTool(), RffTool(), pos_tool(), qlearning_tool(), GenMcTool()]
