"""Adaptive cross-target budget allocation for campaigns.

Campaigns historically split schedule budgets uniformly across every
(tool, program, trial) cell — :meth:`CampaignConfig.budget_for` — which
wastes executions on targets that stopped yielding novelty long ago.  This
module adds the allocation layer ROADMAP item 3 names: campaigns run in
*rounds*, an allocator hands each live cell a slice of the global budget,
slice results feed per-cell estimates back, and the next round's plan
shifts budget toward cells whose reads-from signatures are still producing
new behaviour.

Three allocators:

* :class:`UniformAllocator` — one round, every cell gets its full nominal
  budget.  Bit-for-bit identical to the pre-allocator campaign split, and
  stamps nothing into the campaign header, so legacy stores resume.
* :class:`LaplaceAllocator` — hypofuzz-style: each cell's residual
  bug-finding rate is estimated by a Laplace rule-of-succession posterior
  ``(novel_signatures + 1) / (executions + 2)`` over its whole history,
  and round budgets are apportioned proportionally.
* :class:`NoveltyBiasAllocator` — MUZZ-style: weight by the *recent* rate
  of novel rf-signatures (last slice only), so a cell that has gone dry is
  demoted quickly but can win budget back the moment it produces novelty.

The determinism contract, which every engine and the property suite lean
on:

* :meth:`BudgetAllocator.plan` is a **pure function** of
  ``(cells, history, round_index, base_seed)`` — no hidden state, no wall
  clock, no global RNG.  Cells are canonically sorted before any draw, so
  iteration order cannot leak into the plan.
* Tie-breaking randomness comes from ``random.Random(f"{base_seed}:{name}:
  {round}")`` — string seeding is stable across platforms and Python
  versions we support.
* Every round's plan sums to exactly that round's share of the global
  budget (largest-remainder apportionment), every live cell receives at
  least the ``min_cell_budget`` floor (clamped so the floor itself cannot
  overcommit), and one-shot cells (deterministic tools) receive their full
  budget in round 0 and are never re-sliced.

Because plans depend only on (seed, history) and slice seeds derive from
``slice_seed(base_seed, trial, round)``, serial, parallel, supervised and
SIGKILL-resumed campaigns replay the identical sequence of slices for a
fixed (seed, allocator) pair — the differential suite proves it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from repro.harness.tools import BugSearchResult

#: A campaign cell's identity: (tool name, program name, trial index).
CellId = tuple[str, str, int]

#: Seed stride between allocation rounds.  Round 0 reproduces the legacy
#: per-trial seed exactly (``base_seed + 7919 * trial``); later rounds of
#: the same cell step by a large prime so slices never reuse a seed.
ROUND_SEED_STRIDE = 15485863


def slice_seed(base_seed: int, trial: int, round_index: int) -> int:
    """The RNG seed of one cell slice; round 0 equals the legacy seed."""
    return base_seed + 7919 * trial + ROUND_SEED_STRIDE * round_index


@dataclass(frozen=True)
class CellInfo:
    """Static description of one campaign cell the allocator plans over."""

    tool: str
    program: str
    trial: int
    #: Nominal (uniform-split) budget of this cell; the adaptive pool is
    #: the sum of these over non-one-shot cells.
    budget: int
    #: Deterministic tools explore systematically and cannot resume from a
    #: slice boundary: they get their full budget in round 0 and retire.
    one_shot: bool = False

    @property
    def key(self) -> CellId:
        return (self.tool, self.program, self.trial)


@dataclass(frozen=True)
class SliceObservation:
    """What one completed slice taught the allocator about its cell."""

    round: int
    allocated: int
    executions: int
    found: bool
    error: bool
    #: Executions whose rf-signature was new to the slice's trial.
    new_signatures: int = 0


#: Everything the allocator may condition on: per-cell, ordered by round.
History = Mapping[CellId, Sequence[SliceObservation]]


def _retired(observations: Sequence[SliceObservation]) -> bool:
    """A cell that found its bug or errored needs no further budget."""
    return any(o.found or o.error for o in observations)


def _apportion(
    budget: int,
    ids: list[CellId],
    weights: dict[CellId, float],
    floor: int,
    rng: random.Random,
) -> dict[CellId, int]:
    """Split ``budget`` across ``ids`` proportionally to ``weights``.

    Largest-remainder apportionment: exact conservation (the result sums
    to ``budget``), a per-cell floor (clamped to ``budget // len(ids)`` so
    the floor itself cannot overcommit), and deterministic seeded
    tie-breaks for equal fractional remainders.  ``ids`` must already be
    canonically sorted — every RNG draw happens in that order, which is
    what makes plans insensitive to caller iteration order.
    """
    if budget <= 0 or not ids:
        return {}
    count = len(ids)
    if budget < count:
        # Not even one schedule per cell: the highest-weighted cells get 1.
        ranked = sorted(ids, key=lambda i: (-weights[i], i))
        return {i: 1 for i in ranked[:budget]}
    floor_eff = max(1, min(floor, budget // count))
    alloc = {i: floor_eff for i in ids}
    rest = budget - floor_eff * count
    if rest > 0:
        total = sum(weights[i] for i in ids)
        quotas = {i: rest * weights[i] / total for i in ids}
        shares = {i: int(quotas[i]) for i in ids}
        for i in ids:
            alloc[i] += shares[i]
        leftover = rest - sum(shares.values())
        if leftover > 0:
            jitter = {i: rng.random() for i in ids}
            ranked = sorted(ids, key=lambda i: (-(quotas[i] - shares[i]), jitter[i], i))
            for i in ranked[:leftover]:
                alloc[i] += 1
    return alloc


@dataclass(frozen=True)
class BudgetAllocator:
    """The allocator protocol: a pure, seeded planner over campaign cells.

    Subclasses set :attr:`name` and implement :meth:`_weights`; the base
    class owns round arithmetic, retirement, the floor, and conservation.
    """

    #: How many allocation rounds the campaign runs.
    rounds: int = 1
    #: Minimum schedules any live cell receives per round (starvation
    #: freedom); clamped per round so the floor never overcommits.
    min_cell_budget: int = 1

    name = "abstract"

    def identity(self) -> dict[str, Any] | None:
        """What this allocator stamps into the campaign header.

        ``None`` means "stamp nothing" — the uniform allocator returns
        None so its headers stay byte-identical to pre-allocator
        campaigns and legacy stores resume cleanly.  Adaptive allocators
        return their full identity, and the store/checkpoint header
        equality check then refuses to resume under a different one.
        """
        return {
            "name": self.name,
            "rounds": self.rounds,
            "min_cell_budget": self.min_cell_budget,
        }

    # -- planning -------------------------------------------------------
    def plan(
        self,
        cells: Sequence[CellInfo],
        history: History,
        round_index: int,
        base_seed: int,
    ) -> dict[CellId, int]:
        """The slice budgets of round ``round_index``.

        Pure in ``(cells, history, round_index, base_seed)``: callers may
        replay any prefix of a campaign and get the identical plan.
        """
        if round_index >= self.rounds:
            return {}
        ordered = sorted(cells, key=lambda c: c.key)
        plan: dict[CellId, int] = {}
        if round_index == 0:
            for cell in ordered:
                if cell.one_shot:
                    plan[cell.key] = cell.budget
        adaptive = [c for c in ordered if not c.one_shot]
        pool = sum(c.budget for c in adaptive)
        share = pool // self.rounds + (1 if round_index < pool % self.rounds else 0)
        live = [c for c in adaptive if not _retired(history.get(c.key, ()))]
        if live and share > 0:
            rng = random.Random(f"{base_seed}:{self.name}:{round_index}")
            weights = self.estimates(live, history)
            plan.update(
                _apportion(share, [c.key for c in live], weights, self.min_cell_budget, rng)
            )
        return plan

    def estimates(self, cells: Sequence[CellInfo], history: History) -> dict[CellId, float]:
        """Per-cell residual-rate estimates over the *live* cells given.

        These are the proportional weights :meth:`plan` apportions by;
        they also feed ``alloc_estimate`` telemetry and the allocation
        ledger.  Pure and iteration-order-insensitive like ``plan``.
        """
        live = [c for c in cells if not c.one_shot and not _retired(history.get(c.key, ()))]
        return {c.key: self._weight(history.get(c.key, ())) for c in live}

    def _weight(self, observations: Sequence[SliceObservation]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformAllocator(BudgetAllocator):
    """Today's split, bit-for-bit: one round, full nominal budget per cell."""

    rounds: int = 1

    name = "uniform"

    def identity(self) -> dict[str, Any] | None:
        # Stamp nothing: uniform campaigns are header-identical to
        # pre-allocator campaigns, so their stores interoperate.
        return None

    def plan(
        self,
        cells: Sequence[CellInfo],
        history: History,
        round_index: int,
        base_seed: int,
    ) -> dict[CellId, int]:
        if round_index >= 1:
            return {}
        return {c.key: c.budget for c in sorted(cells, key=lambda c: c.key)}

    def estimates(self, cells: Sequence[CellInfo], history: History) -> dict[CellId, float]:
        return {}


@dataclass(frozen=True)
class LaplaceAllocator(BudgetAllocator):
    """Posterior residual-rate allocation (hypofuzz's ``bayes.py`` style).

    Each cell's weight is the Laplace rule-of-succession estimate of its
    probability that the *next* execution exhibits a novel rf-signature:
    ``(novel + 1) / (executions + 2)`` over the cell's whole history.  An
    unobserved cell sits at the maximally-uncertain 1/2, so round 0 is
    uniform over the adaptive pool and exploration is automatic.
    """

    rounds: int = 4

    name = "laplace"

    def _weight(self, observations: Sequence[SliceObservation]) -> float:
        executions = sum(o.executions for o in observations)
        novel = sum(o.new_signatures for o in observations)
        return (novel + 1) / (executions + 2)


@dataclass(frozen=True)
class NoveltyBiasAllocator(BudgetAllocator):
    """Recency-biased novelty allocation (MUZZ-style energy scheduling).

    Weight is the novel-signature rate of the cell's *last* slice only —
    ``(new_signatures + 1) / (executions + 1)`` — so stale cells decay
    immediately instead of coasting on early novelty, while the +1
    smoothing (and the per-round floor) keeps every live cell probing.
    """

    rounds: int = 4

    name = "novelty"

    def _weight(self, observations: Sequence[SliceObservation]) -> float:
        if not observations:
            return 1.0
        last = observations[-1]
        return (last.new_signatures + 1) / (max(last.executions, 1) + 1)


#: CLI name -> allocator class.
ALLOCATORS: dict[str, type[BudgetAllocator]] = {
    "uniform": UniformAllocator,
    "laplace": LaplaceAllocator,
    "novelty": NoveltyBiasAllocator,
}


def make_allocator(
    name: str,
    *,
    rounds: int | None = None,
    min_cell_budget: int | None = None,
) -> BudgetAllocator:
    """Build a named allocator with optional knob overrides."""
    try:
        cls = ALLOCATORS[name]
    except KeyError:
        raise ValueError(f"unknown allocator {name!r}; known: {sorted(ALLOCATORS)}") from None
    kwargs: dict[str, Any] = {}
    if rounds is not None and cls is not UniformAllocator:
        kwargs["rounds"] = rounds
    if min_cell_budget is not None:
        kwargs["min_cell_budget"] = min_cell_budget
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Slice batching (pooled dispatch)
# ----------------------------------------------------------------------
def pack_batches(
    slices: Sequence[Any],
    max_slices: int,
    budget_cap: int,
    budget: Any = None,
) -> list[list[Any]]:
    """Greedily pack slices into dispatch batches, preserving order.

    A batch closes when it holds ``max_slices`` slices *or* adding the next
    slice would push its total schedule budget past ``budget_cap`` — the
    budget bound is what keeps one over-packed batch from holding a round
    barrier hostage while every other worker idles.  Packing is pure and
    deterministic in the input order, so batch composition never influences
    results (each slice still runs with its own seed and budget); it only
    shapes dispatch granularity.  A slice whose own budget exceeds the cap
    still gets a (singleton) batch.
    """
    if max_slices < 1:
        raise ValueError(f"max_slices must be >= 1, got {max_slices}")
    cost = budget or (lambda item: item.budget)
    batches: list[list[Any]] = []
    current: list[Any] = []
    current_budget = 0
    for item in slices:
        item_cost = cost(item)
        if current and (
            len(current) >= max_slices or current_budget + item_cost > budget_cap
        ):
            batches.append(current)
            current = []
            current_budget = 0
        current.append(item)
        current_budget += item_cost
    if current:
        batches.append(current)
    return batches


# ----------------------------------------------------------------------
# Slice merging
# ----------------------------------------------------------------------
def merge_slices(slices: Sequence[BugSearchResult]) -> BugSearchResult:
    """Fold one cell's slice results (in round order) into one cell result.

    ``schedules_to_bug`` is global across the cell: the executions of every
    slice before the finding one count toward it, so merged results remain
    comparable with uniform campaigns on the paper's primary metric.
    Sanitizer reports are unioned first-wins by dedup key; novelty counters
    sum.  A single-slice cell merges to its slice unchanged — which is what
    keeps :class:`UniformAllocator` campaigns bit-identical to legacy ones.
    """
    if not slices:
        raise ValueError("cannot merge an empty slice list")
    if len(slices) == 1:
        return slices[0]
    reports: list[Any] = []
    seen: set[Any] = set()
    total_new = 0
    prior_execs = 0
    for result in slices:
        for report in result.sanitizer_reports:
            if report.dedup_key not in seen:
                seen.add(report.dedup_key)
                reports.append(report)
        total_new += result.new_signatures
        if result.found or result.error is not None:
            return replace(
                result,
                schedules_to_bug=(
                    prior_execs + result.schedules_to_bug
                    if result.schedules_to_bug is not None
                    else None
                ),
                executions=prior_execs + result.executions,
                sanitizer_reports=tuple(reports),
                new_signatures=total_new,
            )
        prior_execs += result.executions
    return replace(
        slices[-1],
        executions=prior_execs,
        sanitizer_reports=tuple(reports),
        new_signatures=total_new,
    )


# ----------------------------------------------------------------------
# The engine-agnostic round state machine
# ----------------------------------------------------------------------
class AllocationRun:
    """Round bookkeeping shared by the serial, parallel and supervised
    engines, so all three drive the allocator through the identical
    (plan, observe) sequence and assemble the identical ledger."""

    def __init__(
        self, allocator: BudgetAllocator, cells: Sequence[CellInfo], base_seed: int
    ) -> None:
        self.allocator = allocator
        self.cells = sorted(cells, key=lambda c: c.key)
        self.base_seed = base_seed
        self.history: dict[CellId, list[SliceObservation]] = {}
        self.slices: dict[CellId, list[BugSearchResult]] = {}
        self.round_index = 0
        self._ledger_rounds: list[dict[str, Any]] = []

    def next_plan(self) -> dict[CellId, int] | None:
        """The current round's plan, or None when all rounds have run."""
        if self.round_index >= max(1, self.allocator.rounds):
            return None
        return self.allocator.plan(self.cells, self.history, self.round_index, self.base_seed)

    def estimates(self) -> dict[CellId, float]:
        """The estimates the *current* round's plan was computed from."""
        return self.allocator.estimates(self.cells, self.history)

    def observe(self, plan: dict[CellId, int], results: dict[CellId, BugSearchResult]) -> None:
        """Feed one completed round back: history, slices, ledger entry."""
        estimates = self.estimates()
        entries = []
        for key in sorted(plan):
            allocated = plan[key]
            result = results[key]
            self.slices.setdefault(key, []).append(result)
            self.history.setdefault(key, []).append(
                SliceObservation(
                    round=self.round_index,
                    allocated=allocated,
                    executions=result.executions,
                    found=result.found,
                    error=result.error is not None,
                    new_signatures=result.new_signatures,
                )
            )
            entries.append(
                {
                    "tool": key[0],
                    "program": key[1],
                    "trial": key[2],
                    "allocated": allocated,
                    "estimate": estimates.get(key),
                    "executions": result.executions,
                    "found": result.found,
                }
            )
        self._ledger_rounds.append(
            {
                "round": self.round_index,
                "budget": sum(plan.values()),
                "cells": len(plan),
                "slices": entries,
            }
        )
        self.round_index += 1

    def merged(self) -> dict[CellId, BugSearchResult]:
        """One merged result per cell.

        A cell that never won a slice (degenerate budgets smaller than the
        cell count) merges to an empty not-found result so assembly stays
        total."""
        out: dict[CellId, BugSearchResult] = {}
        for cell in self.cells:
            slices = self.slices.get(cell.key)
            if slices:
                out[cell.key] = merge_slices(slices)
            else:
                out[cell.key] = BugSearchResult(
                    tool=cell.tool,
                    program=cell.program,
                    trial=cell.trial,
                    found=False,
                    schedules_to_bug=None,
                    executions=0,
                )
        return out

    def ledger(self) -> dict[str, Any]:
        """The campaign's allocation ledger (see ``allocation_summary``)."""
        return {
            "allocator": self.allocator.name,
            "rounds": self._ledger_rounds,
            "min_cell_budget": self.allocator.min_cell_budget,
        }
