"""Campaigns: tools × programs × trials, the data behind every figure.

The paper runs each tool for 5 wall-clock minutes per program, 20 trials
(Section 5.1).  Our budgets are *schedule counts* — the paper's own metric —
sized so a full campaign runs on one laptop core; everything scales through
:class:`CampaignConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.harness.stats import SummaryCell, summarize
from repro.harness.tools import BugSearchResult, TestingTool
from repro.runtime.guard import GuardConfig
from repro.runtime.program import Program


@dataclass(frozen=True)
class CampaignConfig:
    """Trial counts and budgets for one campaign."""

    trials: int = 20
    #: Default schedules-to-run per (tool, program, trial).
    budget: int = 2000
    base_seed: int = 1234
    #: Per-program budget overrides (large programs get smaller budgets so
    #: laptop-scale campaigns stay fast).
    budget_overrides: dict[str, int] = field(default_factory=dict)
    #: Online sanitizer names to attach to every tool (see
    #: ``repro.analysis.online.SANITIZERS``); empty = crash oracle only.
    sanitizers: tuple[str, ...] = ()
    #: Replays per found bug for STABLE/FLAKY verification (0 = off).
    verify_replays: int = 0
    #: Runtime guardrails attached to every execution (None = unguarded).
    guard: GuardConfig | None = None
    #: Budget allocator (see ``repro.harness.allocator``).  None keeps the
    #: historical single-pass uniform split; an allocator instance runs the
    #: campaign in seeded allocation rounds instead.
    allocator: Any = None

    def budget_for(self, program_name: str) -> int:
        return self.budget_overrides.get(program_name, self.budget)


def campaign_header(
    config: CampaignConfig, tool_names: list[str], program_names: list[str]
) -> dict[str, Any]:
    """The identity of one campaign: everything that determines its results.

    Checkpoint files and corpus stores both stamp this header and refuse to
    resume a campaign whose header differs — results computed under one
    configuration must never be silently mixed with another's.  The
    ``checkpoint_version`` key is the on-disk format version shared by both.

    An adaptive allocator stamps its identity into the header, so resuming
    a store under a different allocator is refused by the same equality
    check.  The uniform allocator (and ``allocator=None``) stamps nothing —
    its headers stay byte-identical to pre-allocator campaigns, keeping
    old stores resumable.

    Execution-engine choices never appear here: ``engine``, ``batch_size``
    and pool sizing affect only *how* cells are dispatched, never what they
    compute (the bit-identity contract), so a store written by a pooled
    campaign resumes under the per-cell engine and vice versa.
    """
    header = {
        "checkpoint_version": 1,
        "base_seed": config.base_seed,
        "budget": config.budget,
        "budget_overrides": dict(sorted(config.budget_overrides.items())),
        "trials": config.trials,
        "tools": list(tool_names),
        "programs": list(program_names),
        "sanitizers": list(config.sanitizers),
        "verify_replays": config.verify_replays,
        "guard": (list(config.guard.as_tuple()) if config.guard is not None else None),
    }
    identity = config.allocator.identity() if config.allocator is not None else None
    if identity is not None:
        header["allocator"] = identity
    return header


@dataclass
class CampaignResult:
    """All trial results, keyed by (tool name, program name)."""

    config: CampaignConfig
    results: dict[tuple[str, str], list[BugSearchResult]] = field(default_factory=dict)
    #: Allocation ledger (rounds, slices, estimates) when the campaign ran
    #: under a budget allocator; None for legacy single-pass campaigns.
    allocation: dict[str, Any] | None = None

    def trials(self, tool: str, program: str) -> list[BugSearchResult]:
        return self.results.get((tool, program), [])

    def tools(self) -> list[str]:
        return sorted({tool for tool, _ in self.results})

    def programs(self) -> list[str]:
        return sorted({program for _, program in self.results})

    def schedules_to_bug(self, tool: str, program: str) -> list[int | None]:
        return [r.schedules_to_bug for r in self.trials(tool, program)]

    def cell(self, tool: str, program: str) -> SummaryCell:
        return summarize(self.schedules_to_bug(tool, program))

    def is_error(self, tool: str, program: str) -> bool:
        trials = self.trials(tool, program)
        return bool(trials) and all(r.error is not None for r in trials)

    def bugs_found_per_trial(self, tool: str) -> list[int]:
        """#programs in which the bug was found, per trial index — the
        quantity behind "RFF finds 46.1 bugs on average" (Section 5.2)."""
        per_trial: dict[int, int] = {}
        for (result_tool, _), trials in self.results.items():
            if result_tool != tool:
                continue
            for index, result in enumerate(trials):
                per_trial[index] = per_trial.get(index, 0) + (1 if result.found else 0)
        return [per_trial[i] for i in sorted(per_trial)]

    def mean_bugs_found(self, tool: str) -> float:
        per_trial = self.bugs_found_per_trial(tool)
        return sum(per_trial) / len(per_trial) if per_trial else 0.0

    def cumulative_curve(self, tool: str) -> list[tuple[int, int]]:
        """Figure 4 data: for each bug found (any program, any trial), the
        schedule count at which it was found; returned as the sorted list of
        (schedules, cumulative bugs)."""
        # No per-result tool predicate: trials are already fetched per tool,
        # and results resumed from a store may carry whatever tool string
        # was stamped at record time — filtering on it dropped real hits.
        hits = sorted(
            r.schedules_to_bug
            for trials in (self.trials(tool, p) for p in self.programs())
            for r in trials
            if r.schedules_to_bug is not None
        )
        return [(schedules, index + 1) for index, schedules in enumerate(hits)]

    def one_shot_wins(self, tool: str) -> int:
        """#programs where the tool found the bug on the very first schedule
        of at least one trial (the QL-RF observation of Section 5.5)."""
        count = 0
        for program in self.programs():
            if any(r.schedules_to_bug == 1 for r in self.trials(tool, program)):
                count += 1
        return count


class Campaign:
    """Runs tools over programs and collects every trial result."""

    def __init__(self, config: CampaignConfig | None = None):
        self.config = config or CampaignConfig()

    def run(
        self,
        tools: list[TestingTool],
        programs: list[Program],
        progress=None,
        store=None,
    ) -> CampaignResult:
        """Execute the full cross product; ``progress`` is an optional
        callback ``(tool_name, program_name, trial_index)``.

        With ``store`` set (a :class:`~repro.harness.store.CorpusStore` or a
        path opened as one), every cell result is recorded durably as it
        completes and cells already in the store are skipped — so a killed
        serial campaign resumes through the same ledger parallel ones use.

        With ``config.allocator`` set, the campaign runs in allocation
        rounds instead of a single uniform pass (see
        :mod:`repro.harness.allocator`).
        """
        if self.config.allocator is not None:
            return self._run_allocated(tools, programs, progress, store)
        owned = False
        if isinstance(store, (str, Path)):
            # Lazy import: the store depends on persist, which imports tools
            # from this package; campaign stays import-light.
            from repro.harness.store import CorpusStore

            store = CorpusStore(store)
            owned = True
        try:
            done: dict[tuple[str, str, int], BugSearchResult] = {}
            if store is not None:
                store.begin_campaign(
                    campaign_header(
                        self.config, [t.name for t in tools], [p.name for p in programs]
                    )
                )
                done = store.completed()
            outcome = CampaignResult(config=self.config)
            for tool in tools:
                if self.config.sanitizers:
                    tool.sanitizers = tuple(self.config.sanitizers)
                if self.config.verify_replays:
                    tool.verify_replays = self.config.verify_replays
                if self.config.guard is not None:
                    tool.guard = self.config.guard
                trials = 1 if tool.deterministic else self.config.trials
                for program in programs:
                    budget = self.config.budget_for(program.name)
                    results = []
                    for trial in range(trials):
                        key = (tool.name, program.name, trial)
                        if key in done:
                            results.append(done[key])
                            continue
                        if progress is not None:
                            progress(tool.name, program.name, trial)
                        seed = self.config.base_seed + 7919 * trial
                        result = tool.find_bug(program, budget, seed)
                        # Tools record the seed in the trial field by default;
                        # stamp the trial index so serial, parallel and resumed
                        # campaigns produce bit-identical results.
                        result = replace(result, trial=trial)
                        if store is not None:
                            store.record_result(result)
                        results.append(result)
                    if tool.deterministic and self.config.trials > 1:
                        # Replicate the single deterministic result so per-trial
                        # aggregates stay comparable across tools.
                        results = results * self.config.trials
                    outcome.results[(tool.name, program.name)] = results
            return outcome
        finally:
            if owned:
                store.close()

    def _run_allocated(
        self,
        tools: list[TestingTool],
        programs: list[Program],
        progress=None,
        store=None,
    ) -> CampaignResult:
        """The round-based path: the allocator plans per-cell slices, slice
        results feed its estimates, and slices merge into cell results.

        Slices are recorded to the store as they complete and resumed
        slice-granularly, so a killed adaptive campaign converges to the
        same bits as an uninterrupted one.
        """
        from repro.harness.allocator import AllocationRun, CellInfo, slice_seed

        owned = False
        if isinstance(store, (str, Path)):
            from repro.harness.store import CorpusStore

            store = CorpusStore(store)
            owned = True
        try:
            done_cells: dict[tuple[str, str, int], BugSearchResult] = {}
            done_slices: dict[tuple[str, str, int, int], BugSearchResult] = {}
            if store is not None:
                store.begin_campaign(
                    campaign_header(
                        self.config, [t.name for t in tools], [p.name for p in programs]
                    )
                )
                done_cells = store.completed()
                done_slices = store.completed_slices()
            sliced_cells = {key[:3] for key in done_slices}
            cells = []
            tool_by_name: dict[str, TestingTool] = {}
            for tool in tools:
                if self.config.sanitizers:
                    tool.sanitizers = tuple(self.config.sanitizers)
                if self.config.verify_replays:
                    tool.verify_replays = self.config.verify_replays
                if self.config.guard is not None:
                    tool.guard = self.config.guard
                tool_by_name[tool.name] = tool
                trials = 1 if tool.deterministic else self.config.trials
                for program in programs:
                    budget = self.config.budget_for(program.name)
                    for trial in range(trials):
                        cells.append(
                            CellInfo(
                                tool=tool.name,
                                program=program.name,
                                trial=trial,
                                budget=budget,
                                one_shot=tool.deterministic,
                            )
                        )
            program_by_name = {p.name: p for p in programs}
            run_state = AllocationRun(self.config.allocator, cells, self.config.base_seed)
            while (plan := run_state.next_plan()) is not None:
                round_index = run_state.round_index
                round_results: dict[tuple[str, str, int], BugSearchResult] = {}
                for key in sorted(plan):
                    tool_name, program_name, trial = key
                    slice_key = (tool_name, program_name, trial, round_index)
                    if slice_key in done_slices:
                        round_results[key] = done_slices[slice_key]
                        continue
                    if round_index == 0 and key in done_cells and key not in sliced_cells:
                        # A store written by the single-pass path (only
                        # reachable under the uniform allocator, whose
                        # header matches): the whole cell is already done.
                        round_results[key] = done_cells[key]
                        continue
                    if progress is not None:
                        progress(tool_name, program_name, trial)
                    seed = slice_seed(self.config.base_seed, trial, round_index)
                    result = tool_by_name[tool_name].find_bug(
                        program_by_name[program_name], plan[key], seed
                    )
                    result = replace(result, trial=trial)
                    if store is not None:
                        store.record_slice(round_index, result)
                    round_results[key] = result
                run_state.observe(plan, round_results)
            merged = run_state.merged()
            if store is not None:
                already = store.completed()
                for key in sorted(merged):
                    if key not in already:
                        store.record_result(merged[key])
            outcome = CampaignResult(config=self.config)
            for tool in tools:
                trials = 1 if tool.deterministic else self.config.trials
                for program in programs:
                    results = [merged[(tool.name, program.name, t)] for t in range(trials)]
                    if tool.deterministic and self.config.trials > 1:
                        results = results * self.config.trials
                    outcome.results[(tool.name, program.name)] = results
            outcome.allocation = run_state.ledger()
            return outcome
        finally:
            if owned:
                store.close()
