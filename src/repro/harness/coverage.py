"""Schedule-space coverage estimation.

RQ3 asks how evenly a tool explores the reads-from-partitioned schedule
space; this module adds the quantitative companions: species-richness
estimators over rf-signature observation counts.  ``chao1`` estimates how
many rf classes exist *including the unseen ones*, and ``coverage_deficit``
(the Good-Turing estimate) gives the probability that the next schedule
lands in a never-seen class — together they say not just how even the
exploration was, but how much of the space remains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class CoverageEstimate:
    """Richness and coverage statistics of one campaign's rf classes."""

    observed_classes: int
    executions: int
    #: Chao1 lower-bound estimate of the total number of rf classes.
    estimated_classes: float
    #: Good-Turing probability that the next schedule is a new class.
    discovery_probability: float

    @property
    def estimated_remaining(self) -> float:
        return max(0.0, self.estimated_classes - self.observed_classes)

    @property
    def saturation(self) -> float:
        """Fraction of the (estimated) class space already visited."""
        if self.estimated_classes <= 0:
            return 1.0
        return min(1.0, self.observed_classes / self.estimated_classes)


def chao1(counts: list[int]) -> float:
    """The Chao1 species-richness lower bound.

    ``S + f1^2 / (2 f2)`` with singletons f1 and doubletons f2; the
    bias-corrected ``S + f1(f1-1)/2`` form is used when f2 == 0.
    """
    observed = sum(1 for c in counts if c > 0)
    singletons = sum(1 for c in counts if c == 1)
    doubletons = sum(1 for c in counts if c == 2)
    if doubletons > 0:
        return observed + singletons * singletons / (2.0 * doubletons)
    return observed + singletons * (singletons - 1) / 2.0


def good_turing_discovery(counts: list[int]) -> float:
    """Good-Turing estimate of unseen-class probability: f1 / n."""
    total = sum(counts)
    if total == 0:
        return 1.0
    singletons = sum(1 for c in counts if c == 1)
    return singletons / total


def estimate_coverage(signature_counts: Counter | dict) -> CoverageEstimate:
    """Coverage statistics from an rf-signature observation counter."""
    counts = [c for c in signature_counts.values() if c > 0]
    return CoverageEstimate(
        observed_classes=len(counts),
        executions=sum(counts),
        estimated_classes=chao1(counts),
        discovery_probability=good_turing_discovery(counts),
    )
