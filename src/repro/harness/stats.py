"""Statistics used by the paper's evaluation.

* mean ± std cells for the Appendix B table,
* the Mann-Whitney U test for the bugs-found comparison (Section 5.2),
* the two-sample log-rank test (Mantel 1966) on schedules-to-bug with
  censoring for trials that never found the bug (Sections 5.2/5.3) —
  schedules-to-bug is survival data: a trial that exhausts its budget is a
  right-censored observation, not a missing one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class SummaryCell:
    """One Appendix B cell: mean ± std over trials, with found counts."""

    mean: float | None
    std: float | None
    found: int
    trials: int

    @property
    def all_found(self) -> bool:
        return self.found == self.trials

    @property
    def none_found(self) -> bool:
        return self.found == 0

    def render(self) -> str:
        """The paper's cell syntax: ``12 ± 3``, ``12 ± 3*`` (some trials
        missed), or ``-`` (no trial found the bug)."""
        if self.none_found or self.mean is None:
            return "-"
        body = f"{self.mean:.0f} ± {self.std:.0f}" if self.std is not None else f"{self.mean:.0f}"
        return body if self.all_found else body + "*"


def summarize(schedule_counts: list[int | None]) -> SummaryCell:
    """Mean ± std of schedules-to-bug over trials (found trials only)."""
    found = [s for s in schedule_counts if s is not None]
    if not found:
        return SummaryCell(mean=None, std=None, found=0, trials=len(schedule_counts))
    mean = sum(found) / len(found)
    variance = sum((s - mean) ** 2 for s in found) / len(found)
    return SummaryCell(mean=mean, std=math.sqrt(variance), found=len(found), trials=len(schedule_counts))


def mann_whitney_u(xs: list[float], ys: list[float]) -> float:
    """Two-sided Mann-Whitney U p-value (used for the bugs-found-per-trial
    comparison of Section 5.2).  Returns 1.0 for degenerate inputs."""
    if not xs or not ys:
        return 1.0
    if len(set(xs)) == 1 and set(xs) == set(ys):
        return 1.0
    return float(_scipy_stats.mannwhitneyu(xs, ys, alternative="two-sided").pvalue)


@dataclass(frozen=True)
class LogRankResult:
    """Two-group log-rank test outcome."""

    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def logrank(
    times_a: list[int | None],
    times_b: list[int | None],
    budget_a: int,
    budget_b: int | None = None,
) -> LogRankResult:
    """Two-sample log-rank test with right censoring.

    ``times_a``/``times_b`` are schedules-to-bug per trial; ``None`` means
    the trial was censored at its budget (bug never found).  Implements the
    standard Mantel (1966) chi-square on the hypergeometric event counts.
    """
    budget_b = budget_b if budget_b is not None else budget_a
    samples: list[tuple[int, bool, int]] = []  # (time, observed, group)
    for t in times_a:
        samples.append((t, True, 0) if t is not None else (budget_a, False, 0))
    for t in times_b:
        samples.append((t, True, 1) if t is not None else (budget_b, False, 1))
    event_times = sorted({time for time, observed, _ in samples if observed})
    if not event_times:
        return LogRankResult(statistic=0.0, p_value=1.0)
    observed_a = 0.0
    expected_a = 0.0
    variance = 0.0
    for when in event_times:
        at_risk = [(time, observed, group) for time, observed, group in samples if time >= when]
        n = len(at_risk)
        n_a = sum(1 for _, _, group in at_risk if group == 0)
        deaths = [(time, observed, group) for time, observed, group in at_risk if observed and time == when]
        d = len(deaths)
        d_a = sum(1 for _, _, group in deaths if group == 0)
        if n == 0 or d == 0:
            continue
        observed_a += d_a
        expected_a += d * n_a / n
        if n > 1:
            variance += d * (n_a / n) * (1 - n_a / n) * (n - d) / (n - 1)
    if variance <= 0:
        return LogRankResult(statistic=0.0, p_value=1.0)
    statistic = (observed_a - expected_a) ** 2 / variance
    p_value = float(_scipy_stats.chi2.sf(statistic, df=1))
    return LogRankResult(statistic=statistic, p_value=p_value)


def logrank_direction(times_a: list[int | None], times_b: list[int | None]) -> int:
    """Which group finds bugs faster by crude median comparison: -1 if A,
    +1 if B, 0 if tied.  Used to attribute a significant log-rank result."""
    def score(times: list[int | None]) -> float:
        observed = sorted(t for t in times if t is not None)
        if not observed:
            return math.inf
        # Penalise censored trials by treating them as slowest.
        rank = (len(observed) - 1) // 2
        return observed[rank] * (1 + (len(times) - len(observed)))

    a, b = score(times_a), score(times_b)
    if a < b:
        return -1
    if b < a:
        return 1
    return 0
