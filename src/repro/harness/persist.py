"""JSON persistence for traces, crashes and campaign results.

The paper's artifact ships raw experiment data alongside the tool; this
module provides the same affordance — everything the harness produces can
be serialised to JSON, reloaded, and (for crashes) *re-executed*: a crash
record round-trips into a ReplayPolicy run that reproduces the failure.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.online import SanitizerReport
from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent, Event
from repro.core.fuzzer import CrashRecord, FuzzReport
from repro.core.trace import Trace
from repro.harness.tools import BugSearchResult

# ----------------------------------------------------------------------
# Events / traces
# ----------------------------------------------------------------------
def event_to_dict(event: Event) -> dict[str, Any]:
    out = {
        "eid": event.eid,
        "tid": event.tid,
        "kind": event.kind,
        "location": event.location,
        "loc": event.loc,
    }
    if event.rf is not None:
        out["rf"] = event.rf
    if isinstance(event.value, (int, float, str, bool)) or event.value is None:
        out["value"] = event.value
    else:
        out["value"] = repr(event.value)
    if isinstance(event.aux, (int, str)) or event.aux is None:
        out["aux"] = event.aux
    elif isinstance(event.aux, tuple):
        out["aux"] = list(event.aux)
    return out


def event_from_dict(data: dict[str, Any]) -> Event:
    aux = data.get("aux")
    if isinstance(aux, list):
        aux = tuple(aux)
    return Event(
        eid=data["eid"],
        tid=data["tid"],
        kind=data["kind"],
        location=data["location"],
        loc=data["loc"],
        rf=data.get("rf"),
        value=data.get("value"),
        aux=aux,
    )


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    return {
        "events": [event_to_dict(e) for e in trace.events],
        "outcome": trace.outcome,
        "failure": trace.failure,
    }


def trace_from_dict(data: dict[str, Any]) -> Trace:
    return Trace(
        events=[event_from_dict(e) for e in data["events"]],
        outcome=data.get("outcome"),
        failure=data.get("failure"),
    )


# ----------------------------------------------------------------------
# Abstract schedules
# ----------------------------------------------------------------------
def _abstract_event_to_dict(event: AbstractEvent | None) -> dict[str, Any] | None:
    if event is None:
        return None
    return {"kind": event.kind, "location": event.location, "loc": event.loc}


def _abstract_event_from_dict(data: dict[str, Any] | None) -> AbstractEvent | None:
    if data is None:
        return None
    return AbstractEvent(kind=data["kind"], location=data["location"], loc=data["loc"])


def schedule_to_dict(schedule: AbstractSchedule) -> list[dict[str, Any]]:
    return [
        {
            "read": _abstract_event_to_dict(c.read),
            "write": _abstract_event_to_dict(c.write),
            "positive": c.positive,
        }
        for c in sorted(schedule.constraints, key=str)
    ]


def schedule_from_dict(data: list[dict[str, Any]]) -> AbstractSchedule:
    constraints = [
        Constraint(
            read=_abstract_event_from_dict(c["read"]),
            write=_abstract_event_from_dict(c["write"]),
            positive=c["positive"],
        )
        for c in data
    ]
    return AbstractSchedule(frozenset(constraints))


# ----------------------------------------------------------------------
# Crash records / fuzz reports
# ----------------------------------------------------------------------
def crash_to_dict(crash: CrashRecord) -> dict[str, Any]:
    out = {
        "execution_index": crash.execution_index,
        "outcome": crash.outcome,
        "failure": crash.failure,
        "abstract_schedule": schedule_to_dict(crash.abstract_schedule),
        "concrete_schedule": list(crash.concrete_schedule),
        "frames": list(crash.frames),
    }
    if crash.dedup_key is not None:
        out["dedup_key"] = list(crash.dedup_key)
    return out


def crash_from_dict(data: dict[str, Any]) -> CrashRecord:
    raw_key = data.get("dedup_key")
    return CrashRecord(
        execution_index=data["execution_index"],
        outcome=data["outcome"],
        failure=data["failure"],
        abstract_schedule=schedule_from_dict(data["abstract_schedule"]),
        concrete_schedule=tuple(data["concrete_schedule"]),
        dedup_key=tuple(raw_key) if raw_key is not None else None,
        frames=tuple(data.get("frames", ())),
    )


def report_to_dict(report: FuzzReport) -> dict[str, Any]:
    return {
        "program": report.program_name,
        "executions": report.executions,
        "corpus_size": report.corpus_size,
        "pair_coverage": report.pair_coverage,
        "unique_signatures": report.unique_signatures,
        "truncated_runs": report.truncated_runs,
        "crashes": [crash_to_dict(c) for c in report.crashes],
    }


def result_to_dict(result: BugSearchResult) -> dict[str, Any]:
    out = {
        "tool": result.tool,
        "program": result.program,
        "trial": result.trial,
        "found": result.found,
        "schedules_to_bug": result.schedules_to_bug,
        "executions": result.executions,
        "outcome": result.outcome,
        "error": result.error,
    }
    if result.sanitizer_reports:
        out["sanitizer_reports"] = [r.to_dict() for r in result.sanitizer_reports]
    if result.bucket is not None:
        out["bucket"] = result.bucket
    if result.replay_verdict is not None:
        out["replay_verdict"] = result.replay_verdict
    if result.new_signatures:
        out["new_signatures"] = result.new_signatures
    return out


def result_from_dict(data: dict[str, Any]) -> BugSearchResult:
    """Exact inverse of :func:`result_to_dict` — resumed campaign cells must
    compare equal to freshly computed ones."""
    return BugSearchResult(
        tool=data["tool"],
        program=data["program"],
        trial=data["trial"],
        found=data["found"],
        schedules_to_bug=data["schedules_to_bug"],
        executions=data["executions"],
        outcome=data.get("outcome"),
        error=data.get("error"),
        sanitizer_reports=tuple(
            SanitizerReport.from_dict(r) for r in data.get("sanitizer_reports", ())
        ),
        bucket=data.get("bucket"),
        replay_verdict=data.get("replay_verdict"),
        new_signatures=data.get("new_signatures", 0),
    )


# ----------------------------------------------------------------------
# File-level helpers
# ----------------------------------------------------------------------
def save_json(payload: Any, path: str | Path) -> Path:
    """Write any of the dict forms above to ``path`` (pretty-printed)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def load_json(path: str | Path) -> Any:
    return json.loads(Path(path).read_text())


def save_crashes(report: FuzzReport, directory: str | Path) -> list[Path]:
    """Persist every crash of a fuzz report as ``crash-NNN.json`` files."""
    base = Path(directory)
    written = []
    for index, crash in enumerate(report.crashes):
        payload = {"program": report.program_name, **crash_to_dict(crash)}
        written.append(save_json(payload, base / f"crash-{index:03d}.json"))
    return written


def load_crash(path: str | Path) -> tuple[str, CrashRecord]:
    """Load one persisted crash; returns (program name, crash record)."""
    data = load_json(path)
    return data["program"], crash_from_dict(data)


# ----------------------------------------------------------------------
# Append-only JSONL (campaign checkpoints, telemetry-adjacent records)
# ----------------------------------------------------------------------
def append_jsonl(record: dict[str, Any], path: str | Path) -> Path:
    """Append one JSON object as a line to ``path`` (created on demand).

    Append-and-flush per record makes the file crash-safe in the sense a
    checkpoint needs: a campaign killed mid-run leaves every *completed*
    record intact, and at worst one torn trailing line, which readers skip.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
    return target


class TornLineError(ValueError):
    """A JSONL file contains an unparseable line the caller must not skip:
    either a torn *tail* with ``tolerate_torn_tail=False``, or a torn line
    in the *middle* of the file — which append-and-flush writers never
    produce, so it signals real corruption, not an interrupted write."""


def read_jsonl(path: str | Path, tolerate_torn_tail: bool = True) -> list[dict[str, Any]]:
    """Read a JSONL file written by :func:`append_jsonl`.

    A killed writer can leave at most one torn line, and only at the end of
    the file.  With ``tolerate_torn_tail=True`` (the default, matching what
    checkpoint resume needs) that single trailing tear is skipped and
    counted in the ``torn_lines`` telemetry counter; an unparseable line
    anywhere *before* the last one always raises :class:`TornLineError`,
    because it cannot be explained by an interrupted append."""
    target = Path(path)
    if not target.exists():
        return []
    lines = [
        (number, line)
        for number, line in enumerate(target.read_text(encoding="utf-8").splitlines(), start=1)
        if line.strip()
    ]
    records = []
    for position, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            is_tail = position == len(lines) - 1
            if is_tail and tolerate_torn_tail:
                # Lazy import: repro.harness.telemetry imports nothing from
                # here, but keeping persist import-light avoids surprises.
                from repro.harness.telemetry import GLOBAL_COUNTERS

                GLOBAL_COUNTERS.torn_lines += 1
                break
            where = "torn trailing line" if is_tail else "torn line mid-file"
            raise TornLineError(f"{target}:{number}: {where}: {exc}") from exc
    return records


def recover_jsonl(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Read a JSONL file and *repair* its torn tail in place.

    :func:`read_jsonl` merely tolerates the single torn trailing line a
    killed writer can leave; a writer that wants to *keep appending* to the
    file must also remove it, or the next append would glue new records onto
    the partial line and manufacture a mid-file tear.  This reads the valid
    prefix (via :func:`read_jsonl`, so a torn line anywhere before the tail
    still raises :class:`TornLineError`) and truncates the file back to that
    prefix.  Returns ``(records, truncated_bytes)``."""
    target = Path(path)
    if not target.exists():
        return [], 0
    records = read_jsonl(target, tolerate_torn_tail=True)
    raw = target.read_bytes()
    offset = 0
    parsed = 0
    for line in raw.splitlines(keepends=True):
        if line.strip():
            if parsed == len(records):
                break
            parsed += 1
        offset += len(line)
    truncated = len(raw) - offset
    if truncated:
        with target.open("rb+") as handle:
            handle.truncate(offset)
    return records, truncated


# ----------------------------------------------------------------------
# Checksummed payloads (standalone repro artifacts)
# ----------------------------------------------------------------------
class ChecksumError(ValueError):
    """A checksummed payload failed verification (corrupt or hand-edited)."""


def payload_checksum(payload: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of ``payload`` minus its own
    ``checksum`` field, so the digest can be stored inside the payload."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def attach_checksum(payload: dict[str, Any]) -> dict[str, Any]:
    """Return ``payload`` with its ``checksum`` field (re)computed."""
    out = dict(payload)
    out["checksum"] = payload_checksum(out)
    return out


def verify_checksum(payload: dict[str, Any], source: str = "payload") -> dict[str, Any]:
    """Validate a checksummed payload; raises :class:`ChecksumError`."""
    stored = payload.get("checksum")
    if not stored:
        raise ChecksumError(f"{source}: missing checksum field")
    expected = payload_checksum(payload)
    if stored != expected:
        raise ChecksumError(
            f"{source}: checksum mismatch (stored {stored[:12]}…, computed "
            f"{expected[:12]}…) — the file is corrupt or was edited by hand"
        )
    return payload


def save_checksummed(payload: dict[str, Any], path: str | Path) -> Path:
    """Write ``payload`` with an attached checksum (pretty-printed JSON)."""
    return save_json(attach_checksum(payload), path)


def load_checksummed(path: str | Path) -> dict[str, Any]:
    """Load and verify a checksummed JSON payload."""
    return verify_checksum(load_json(path), source=str(path))
