"""Triage: fold raw findings into bug buckets and ship verified reproducers.

A keep-going fuzzing run returns *findings* — every crashing schedule and
every novel sanitizer report.  Triage turns them into *bugs*:

1. **bucket** — findings are grouped by their stable dedup key
   (:func:`repro.core.reproduce.dedup_key` for crashes, the sanitizer's own
   dedup key for analysis findings); two schedules tripping the same
   assertion through the same frames and reads-from pairs are one bug.
2. **pick the reproducer** — each bucket keeps its shortest schedule (ties
   broken by discovery order), optionally shrunk further with
   bucket-constrained :func:`repro.core.minimize.minimize_schedule`.
3. **verify** — the reproducer is replayed N times
   (:func:`repro.core.reproduce.verify_replay`); only a bug whose replays
   all reproduce the identical outcome and dedup key is ``STABLE``.  FLAKY
   buckets are quarantined: they stay in the triage result (a flaky finding
   is information) but are never reported as reproduced and never shipped.
4. **ship** — STABLE bugs become standalone, checksummed JSON artifacts
   (program reference + concrete schedule + expected signature) that
   ``rff replay --verify`` re-triggers end-to-end.

Everything here is deterministic given the fuzz report: serial and parallel
campaigns that produced bit-identical reports triage bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.fuzzer import CrashRecord, FuzzReport, RffConfig, SanitizerRecord
from repro.core.reproduce import (
    ReplayVerdict,
    bucket_id,
    dedup_key,
    failure_frames,
    sanitizer_key,
    verify_replay,
)
from repro.harness.persist import (
    attach_checksum,
    load_checksummed,
    save_checksummed,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.runtime.executor import Executor
from repro.schedulers.replay import ReplayPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.constraints import AbstractSchedule
    from repro.runtime.program import Program

ARTIFACT_KIND = "rff-repro"
ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class TriagedBug:
    """One deduplicated bug: its bucket, reproducer and replay verdict."""

    program: str
    bucket: str
    #: (kind, frame hash, rf hash) triage signature.
    key: tuple[str, str, str]
    frames: tuple[str, ...]
    #: Findings folded into this bucket.
    count: int
    #: Expected crash outcome (None for sanitizer findings).
    outcome: str | None
    failure: str
    concrete_schedule: tuple[int, ...]
    abstract_schedule: "AbstractSchedule | None" = None
    #: Set for sanitizer findings: the sanitizer name and its native key.
    sanitizer: str | None = None
    sanitizer_dedup_key: tuple | None = None
    verdict: ReplayVerdict | None = None

    @property
    def kind(self) -> str:
        return self.key[0]

    @property
    def reproduced(self) -> bool:
        """Verified STABLE — the only state that counts as reproduced."""
        return self.verdict is not None and self.verdict.stable

    @property
    def quarantined(self) -> bool:
        """Verified FLAKY — kept as information, never shipped."""
        return self.verdict is not None and not self.verdict.stable


@dataclass
class TriageResult:
    """All triaged bugs of one program, deterministically ordered."""

    program: str
    bugs: list[TriagedBug] = field(default_factory=list)
    #: Raw findings that went into the buckets.
    findings: int = 0
    replays: int = 0

    @property
    def stable(self) -> list[TriagedBug]:
        return [bug for bug in self.bugs if bug.reproduced]

    @property
    def quarantined(self) -> list[TriagedBug]:
        return [bug for bug in self.bugs if bug.quarantined]

    def summary(self) -> str:
        lines = [
            f"Triage: {self.program} — {self.findings} finding(s) -> "
            f"{len(self.bugs)} bug(s), {len(self.stable)} STABLE, "
            f"{len(self.quarantined)} FLAKY (quarantined), "
            f"{self.replays} verification replays"
        ]
        for bug in self.bugs:
            verdict = bug.verdict.verdict if bug.verdict is not None else "UNVERIFIED"
            schedule = f"{len(bug.concrete_schedule)}-step schedule"
            lines.append(
                f"  [{verdict}] {bug.bucket}: {bug.count} finding(s), {schedule}"
            )
            detail = bug.failure or bug.outcome or ""
            if detail:
                lines.append(f"      {detail}")
            if bug.frames:
                lines.append(f"      frames: {', '.join(bug.frames)}")
        return "\n".join(lines)


def crash_bucket_key(
    program: "Program", crash: CrashRecord, config: RffConfig | None = None
) -> tuple[str, str, str]:
    """The crash's dedup key, recomputed by one replay when the record
    predates triage (files written before dedup keys existed)."""
    if crash.dedup_key is not None:
        return crash.dedup_key
    config = config or RffConfig()
    result = Executor(
        program,
        ReplayPolicy(list(crash.concrete_schedule)),
        max_steps=config.max_steps or program.max_steps or 20000,
        guard=config.guard,
    ).run()
    if result.crashed:
        return dedup_key(result)
    # The schedule no longer crashes: key off the recorded outcome alone so
    # the finding still gets a bucket (it will fail verification anyway).
    return (crash.outcome, "unreproduced", "unreproduced")


def _shrink_reproducer(
    program: "Program",
    bug: TriagedBug,
    config: RffConfig,
) -> TriagedBug:
    """Bucket-constrained ddmin, then hunt for a shorter concrete schedule.

    Minimization operates on the abstract schedule; a shorter *concrete*
    reproducer is adopted only when probing the minimized schedule yields a
    crashing execution in the same bucket with fewer steps."""
    from repro.core.minimize import minimize_schedule
    from repro.core.proactive import RffSchedulerPolicy
    from repro.core.reproduce import same_bucket

    if bug.abstract_schedule is None:
        return bug
    predicate = same_bucket(bug.key)
    outcome = minimize_schedule(
        program, bug.abstract_schedule, still_failing=predicate
    )
    best = bug
    steps = config.max_steps or program.max_steps or 20000
    for probe in range(5):
        policy = RffSchedulerPolicy(outcome.minimized, seed=31 * probe)
        result = Executor(program, policy, max_steps=steps, guard=config.guard).run()
        if predicate(result) and len(result.schedule) < len(best.concrete_schedule):
            best = replace(
                best,
                concrete_schedule=tuple(result.schedule),
                abstract_schedule=outcome.minimized,
            )
    return best


def triage_report(
    program: "Program",
    report: FuzzReport,
    *,
    replays: int = 5,
    config: RffConfig | None = None,
    minimize: bool = False,
) -> TriageResult:
    """Bucket, deduplicate and replay-verify every finding of a fuzz run.

    ``config`` must mirror the fuzzing configuration (memory model, guard,
    sanitizers, step budget) so verification replays the same runtime the
    findings were observed under.  With ``minimize=True`` each bucket's
    reproducer is additionally shrunk by bucket-constrained delta debugging
    before verification (slower; off by default)."""
    config = config or RffConfig()
    executor_class = Executor
    if config.memory_model == "tso":
        from repro.runtime.tso import TsoExecutor

        executor_class = TsoExecutor

    # -- bucket crashes -------------------------------------------------
    crash_buckets: dict[tuple[str, str, str], list[CrashRecord]] = {}
    for crash in report.crashes:
        key = crash_bucket_key(program, crash, config)
        crash_buckets.setdefault(key, []).append(crash)

    # -- bucket sanitizer findings (already deduplicated by the fuzzer,
    #    but fold defensively in case records were merged from files) ----
    sanitizer_buckets: dict[tuple[str, str, str], list[SanitizerRecord]] = {}
    for record in report.sanitizer_records:
        sanitizer_buckets.setdefault(sanitizer_key(record.report), []).append(record)

    bugs: list[TriagedBug] = []
    total_replays = 0
    for key in sorted(crash_buckets):
        findings = crash_buckets[key]
        best = min(findings, key=lambda c: (len(c.concrete_schedule), c.execution_index))
        bug = TriagedBug(
            program=program.name,
            bucket=bucket_id(key),
            key=key,
            frames=best.frames,
            count=len(findings),
            outcome=best.outcome,
            failure=best.failure,
            concrete_schedule=best.concrete_schedule,
            abstract_schedule=best.abstract_schedule,
        )
        if minimize:
            bug = _shrink_reproducer(program, bug, config)
        verdict = verify_replay(
            program,
            bug.concrete_schedule,
            bug.outcome,
            bug.key,
            replays=replays,
            max_steps=config.max_steps,
            sanitizers=config.sanitizers,
            executor_class=executor_class,
            guard=config.guard,
        )
        total_replays += verdict.replays
        bugs.append(replace(bug, verdict=verdict))
    for key in sorted(sanitizer_buckets):
        findings = sanitizer_buckets[key]
        best = min(findings, key=lambda r: (len(r.concrete_schedule), r.execution_index))
        sanitizers = config.sanitizers or (best.report.sanitizer,)
        verdict = verify_replay(
            program,
            best.concrete_schedule,
            None,
            replays=replays,
            max_steps=config.max_steps,
            sanitizers=sanitizers,
            expected_sanitizer_key=best.report.dedup_key,
            executor_class=executor_class,
            guard=config.guard,
        )
        total_replays += verdict.replays
        bugs.append(
            TriagedBug(
                program=program.name,
                bucket=bucket_id(key),
                key=key,
                frames=(best.report.location,),
                count=len(findings),
                outcome=None,
                failure=best.report.message,
                concrete_schedule=best.concrete_schedule,
                abstract_schedule=best.abstract_schedule,
                sanitizer=best.report.sanitizer,
                sanitizer_dedup_key=best.report.dedup_key,
                verdict=verdict,
            )
        )
    quarantined = sum(1 for bug in bugs if bug.quarantined)
    if quarantined:
        from repro.harness.telemetry import GLOBAL_COUNTERS

        GLOBAL_COUNTERS.flaky_quarantined += quarantined
    bugs.sort(key=lambda bug: bug.bucket)
    return TriageResult(
        program=program.name,
        bugs=bugs,
        findings=len(report.crashes) + len(report.sanitizer_records),
        replays=total_replays,
    )


# ----------------------------------------------------------------------
# Standalone repro artifacts
# ----------------------------------------------------------------------
def make_artifact(bug: TriagedBug, config: RffConfig | None = None) -> dict[str, Any]:
    """The checksummed, self-contained JSON form of one verified bug.

    The artifact carries everything a fresh process needs to re-trigger the
    bug: the program reference, the exact concrete schedule, the runtime
    environment (memory model, guard, sanitizers, step budget) and the
    expected signature to compare against."""
    config = config or RffConfig()
    payload: dict[str, Any] = {
        "artifact": ARTIFACT_KIND,
        "version": ARTIFACT_VERSION,
        "program": bug.program,
        "bucket": bug.bucket,
        "signature": list(bug.key),
        "outcome": bug.outcome,
        "failure": bug.failure,
        "frames": list(bug.frames),
        "concrete_schedule": list(bug.concrete_schedule),
        "abstract_schedule": (
            schedule_to_dict(bug.abstract_schedule)
            if bug.abstract_schedule is not None
            else None
        ),
        "sanitizer": bug.sanitizer,
        "sanitizer_key": (
            list(bug.sanitizer_dedup_key) if bug.sanitizer_dedup_key is not None else None
        ),
        "verdict": bug.verdict.verdict if bug.verdict is not None else None,
        "replays": bug.verdict.replays if bug.verdict is not None else 0,
        "memory_model": config.memory_model,
        "max_steps": config.max_steps,
        "sanitizers": list(config.sanitizers),
        "guard": list(config.guard.as_tuple()) if config.guard is not None else None,
    }
    return attach_checksum(payload)


def write_artifacts(
    result: TriageResult,
    directory: str | Path,
    config: RffConfig | None = None,
    stable_only: bool = True,
) -> list[Path]:
    """Persist one ``repro-<bucket>.json`` per bug; STABLE-only by default
    (quarantined bugs are never shipped as reproducers)."""
    base = Path(directory)
    written = []
    for bug in result.bugs:
        if stable_only and not bug.reproduced:
            continue
        path = base / f"repro-{_safe_name(bug.bucket)}.json"
        save_checksummed(make_artifact(bug, config), path)
        written.append(path)
    return written


def _safe_name(bucket: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in bucket)


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load a repro artifact, verifying its checksum and format."""
    payload = load_checksummed(path)
    if payload.get("artifact") != ARTIFACT_KIND:
        raise ValueError(f"{path}: not a {ARTIFACT_KIND} artifact")
    if payload.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {payload.get('version')} unsupported "
            f"(expected {ARTIFACT_VERSION})"
        )
    return payload


def artifact_schedule(payload: dict[str, Any]) -> "AbstractSchedule | None":
    raw = payload.get("abstract_schedule")
    return schedule_from_dict(raw) if raw is not None else None


def verify_artifact(
    payload: dict[str, Any],
    replays: int | None = None,
    program: "Program | None" = None,
) -> ReplayVerdict:
    """Re-trigger a loaded artifact end-to-end and classify STABLE/FLAKY.

    Resolves the benchmark program by name (unless one is injected), then
    replays the artifact's concrete schedule under the recorded runtime
    environment and compares outcome + signature."""
    if program is None:
        from repro import bench

        program = bench.get(payload["program"])
    executor_class = Executor
    if payload.get("memory_model") == "tso":
        from repro.runtime.tso import TsoExecutor

        executor_class = TsoExecutor
    guard = None
    if payload.get("guard") is not None:
        from repro.runtime.guard import GuardConfig

        step_budget, wall_seconds, livelock_window = payload["guard"]
        guard = GuardConfig(
            step_budget=step_budget,
            wall_seconds=wall_seconds,
            livelock_window=livelock_window,
        )
    sanitizer_raw = payload.get("sanitizer_key")
    return verify_replay(
        program,
        tuple(payload["concrete_schedule"]),
        payload.get("outcome"),
        tuple(payload["signature"]) if sanitizer_raw is None else None,
        replays=replays if replays is not None else max(1, payload.get("replays") or 3),
        max_steps=payload.get("max_steps"),
        sanitizers=tuple(payload.get("sanitizers") or ()),
        expected_sanitizer_key=tuple(sanitizer_raw) if sanitizer_raw is not None else None,
        executor_class=executor_class,
        guard=guard,
    )
