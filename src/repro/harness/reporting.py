"""Renderers for the paper's tables and figures.

Everything renders to plain text (the benches ``tee`` it into
EXPERIMENTS.md-ready blocks): the Appendix B mean±std table, the Figure 4
cumulative-bugs-vs-log-schedules curves, and the Figure 5 reads-from
frequency histograms.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.core.fuzzer import FuzzReport, RffConfig, RffFuzzer
from repro.harness.campaign import CampaignResult
from repro.harness.stats import logrank, logrank_direction
from repro.runtime.executor import Executor
from repro.runtime.program import Program
from repro.schedulers.pos import PosPolicy

#: Appendix B column order (paper's table).
APPENDIX_B_ORDER = ["PCT3", "PERIOD", "RFF", "POS", "QLearning RF", "GenMC"]


def appendix_b_table(campaign: CampaignResult, tools: list[str] | None = None) -> str:
    """Render the Appendix B table: mean ± std schedules-to-first-bug.

    Cell syntax follows the paper: ``-`` = bug never found, ``*`` = missed
    in at least one trial, ``Error`` = the tool could not run the program.
    """
    tool_names = tools or [t for t in APPENDIX_B_ORDER if t in campaign.tools()]
    width = max(len(p) for p in campaign.programs()) + 2
    header = "Benchmark/program".ljust(width) + "".join(t.rjust(18) for t in tool_names)
    lines = [header, "-" * len(header)]
    for program in campaign.programs():
        row = [program.ljust(width)]
        for tool in tool_names:
            if campaign.is_error(tool, program):
                cell = "Error"
            else:
                cell = campaign.cell(tool, program).render()
            row.append(cell.rjust(18))
        lines.append("".join(row))
    lines.append("-" * len(header))
    summary = "mean bugs found".ljust(width) + "".join(
        f"{campaign.mean_bugs_found(t):.1f}".rjust(18) for t in tool_names
    )
    lines.append(summary)
    return "\n".join(lines)


def figure4_series(campaign: CampaignResult) -> dict[str, list[tuple[int, int]]]:
    """Figure 4 data: tool -> sorted (schedules, cumulative bugs) points."""
    return {tool: campaign.cumulative_curve(tool) for tool in campaign.tools()}


def figure4_ascii(campaign: CampaignResult, width: int = 64, height: int = 16) -> str:
    """ASCII rendering of Figure 4 (cumulative bugs vs log10 schedules)."""
    series = {t: c for t, c in figure4_series(campaign).items() if c}
    if not series:
        return "(no bugs found by any tool)"
    max_bugs = max(curve[-1][1] for curve in series.values())
    max_log = max(math.log10(curve[-1][0] + 1) for curve in series.values())
    max_log = max(max_log, 1.0)
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for marker, (tool, curve) in zip("RPOCQG#@%&", sorted(series.items())):
        markers[tool] = marker
        for schedules, bugs in curve:
            x = min(width - 1, int(math.log10(schedules + 1) / max_log * (width - 1)))
            y = min(height - 1, int(bugs / max_bugs * (height - 1)))
            grid[height - 1 - y][x] = marker
    lines = [f"cumulative bugs (max {max_bugs}) vs log10(schedules)"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines += [f"  {marker} = {tool}" for tool, marker in sorted(markers.items())]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 5: reads-from signature frequency on SafeStack
# ----------------------------------------------------------------------
@dataclass
class RfDistribution:
    """Observation counts per rf signature after N schedules of one tool."""

    tool: str
    executions: int
    counts: list[int]  # descending

    @property
    def unique_signatures(self) -> int:
        return len(self.counts)

    @property
    def top_share(self) -> float:
        """Fraction of all executions consumed by the most common signature
        (the paper's ">50% under POS" observation)."""
        return self.counts[0] / self.executions if self.counts else 0.0

    def gini(self) -> float:
        """Gini coefficient of the distribution: 0 = perfectly even
        exploration, 1 = maximally skewed.  A scalar summary of Figure 5."""
        if not self.counts:
            return 0.0
        sorted_counts = sorted(self.counts)
        n = len(sorted_counts)
        cumulative = sum((i + 1) * c for i, c in enumerate(sorted_counts))
        total = sum(sorted_counts)
        if total == 0:
            return 0.0
        return (2 * cumulative) / (n * total) - (n + 1) / n


def rf_distribution_pos(program: Program, executions: int, seed: int = 0) -> RfDistribution:
    """Signature counts under plain POS (Figure 5, top)."""
    import random

    rng = random.Random(seed)
    counts: Counter = Counter()
    for _ in range(executions):
        policy = PosPolicy(seed=rng.randrange(2**63))
        result = Executor(program, policy, max_steps=program.max_steps or 20000).run()
        counts[result.trace.rf_signature()] += 1
    return RfDistribution("POS", executions, sorted(counts.values(), reverse=True))


def rf_distribution_rff(
    program: Program, executions: int, seed: int = 0, config: RffConfig | None = None
) -> RfDistribution:
    """Signature counts under RFF with greybox feedback (Figure 5, bottom)."""
    fuzzer = RffFuzzer(program, seed=seed, config=config or RffConfig())
    report: FuzzReport = fuzzer.run(executions)
    return RfDistribution("RFF", report.executions, sorted(report.signature_counts.values(), reverse=True))


def figure5_ascii(distribution: RfDistribution, bars: int = 40, height: int = 10) -> str:
    """Log-scale frequency bars for the most common rf signatures."""
    counts = distribution.counts[:bars]
    if not counts:
        return "(no executions)"
    top = math.log10(max(counts) + 1)
    lines = [
        f"{distribution.tool}: {distribution.unique_signatures} rf signatures over "
        f"{distribution.executions} schedules; top signature share "
        f"{distribution.top_share:.1%}, gini {distribution.gini():.2f}"
    ]
    for level in range(height, 0, -1):
        threshold = top * level / height
        lines.append("|" + "".join("#" if math.log10(c + 1) >= threshold else " " for c in counts))
    lines.append("+" + "-" * len(counts) + "  (signatures, most frequent first; log-scale)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign throughput (telemetry summary)
# ----------------------------------------------------------------------
def throughput_summary(aggregator, slowest: int = 3) -> str:
    """Render a campaign's telemetry aggregate as a plain-text block.

    ``aggregator`` is a :class:`~repro.harness.telemetry.TelemetryAggregator`
    attached to the campaign's sink; the block mirrors what the paper's
    Appendix A.2 infrastructure would report per 50-core run.
    """
    summary = aggregator.summary()
    lines = [
        "Campaign throughput",
        f"  cells:            {summary['cells']} completed, "
        f"{summary['failed_cells']} failed, {summary['retries']} retried",
        f"  schedules:        {summary['executions']:,} "
        f"({summary['schedules_per_sec']:,.1f}/sec)",
        f"  executor steps:   {summary['steps']:,}",
        f"  wall time:        {summary['wall_time']:.2f}s",
        f"  worker restarts:  {summary['worker_restarts']}",
    ]
    if getattr(aggregator, "batches_dispatched", 0):
        lines.append(
            f"  pooled batches:   {aggregator.batches_dispatched} dispatched, "
            f"{getattr(aggregator, 'worker_recycles', 0)} worker recycle(s)"
        )
    if getattr(aggregator, "lease_reassignments", 0):
        lines.append(
            f"  lease reassigns:  {aggregator.lease_reassignments} "
            f"({aggregator.heartbeats} heartbeats observed)"
        )
    if summary.get("sanitizer_reports"):
        by_name = aggregator.sanitizer_reports_by_name()
        breakdown = ", ".join(f"{name}: {count}" for name, count in sorted(by_name.items()))
        lines.append(f"  sanitizer hits:   {summary['sanitizer_reports']} ({breakdown})")
    slow = aggregator.slowest_cells(slowest)
    if slow:
        cells = ", ".join(
            f"{tool}/{program} trial {trial} ({wall:.2f}s)"
            for (tool, program, trial), wall in slow
        )
        lines.append(f"  slowest cells:    {cells}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Durable store health
# ----------------------------------------------------------------------
def store_summary(inspection) -> str:
    """Render a :class:`~repro.harness.store.StoreInspection` as plain text
    (the ``rff store inspect`` output)."""
    lines = [
        f"Corpus store {inspection.path}",
        f"  segments:         {inspection.segments} "
        f"({inspection.compactions} compaction(s))",
        f"  records:          {inspection.records} "
        f"({inspection.corrupt_records} corrupt, skipped)",
        f"  cells:            {inspection.cells} completed",
        f"  bugs:             {inspection.bugs} admitted",
    ]
    if inspection.recovered_bytes:
        lines.append(
            f"  torn tail:        {inspection.recovered_bytes} byte(s) "
            f"truncated on open"
        )
    if getattr(inspection, "slices", 0):
        lines.append(f"  slices:           {inspection.slices} allocation-round record(s)")
    header = inspection.header
    if header:
        lines.append(
            f"  campaign:         {len(header.get('tools', []))} tool(s) x "
            f"{len(header.get('programs', []))} program(s) x "
            f"{header.get('trials')} trial(s), base seed {header.get('base_seed')}"
        )
        allocator = header.get("allocator")
        if allocator:
            lines.append(
                f"  allocator:        {allocator.get('name')} "
                f"({allocator.get('rounds')} round(s), "
                f"floor {allocator.get('min_cell_budget')})"
            )
    else:
        lines.append("  campaign:         (none bound yet)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Adaptive budget allocation
# ----------------------------------------------------------------------
def allocation_summary(campaign: CampaignResult, top: int = 3) -> str:
    """Render a campaign's allocation ledger: per-round budgets, where the
    schedules went, and the per-cell totals the allocator converged on."""
    ledger = campaign.allocation
    if not ledger:
        return "Allocation: (campaign ran without a budget allocator)"
    lines = [
        f"Allocation ledger — allocator: {ledger['allocator']}, "
        f"floor {ledger.get('min_cell_budget', 1)}/cell/round"
    ]
    totals: dict[tuple[str, str, int], int] = {}
    for entry in ledger["rounds"]:
        found = sum(1 for s in entry["slices"] if s["found"])
        lines.append(
            f"  round {entry['round']}: {entry['budget']} schedules over "
            f"{entry['cells']} cell(s), {found} bug(s)"
        )
        ranked = sorted(
            entry["slices"],
            key=lambda s: (-s["allocated"], s["tool"], s["program"], s["trial"]),
        )
        for s in ranked[:top]:
            estimate = s["estimate"]
            estimate_text = f", est {estimate:.4f}" if estimate is not None else ""
            lines.append(
                f"    {s['tool']} / {s['program']} trial {s['trial']}: "
                f"{s['allocated']} schedule(s){estimate_text}"
            )
        for s in entry["slices"]:
            key = (s["tool"], s["program"], s["trial"])
            totals[key] = totals.get(key, 0) + s["allocated"]
    if totals:
        spread = sorted(totals.values())
        lines.append(
            f"  totals: {sum(spread)} schedules allocated, per-cell "
            f"min {spread[0]} / max {spread[-1]}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sanitizer findings
# ----------------------------------------------------------------------
def sanitizer_summary(campaign: CampaignResult) -> str:
    """Render the distinct sanitizer findings of a campaign, per program.

    Findings are deduplicated across tools and trials by their
    ``dedup_key`` (sanitizer, kind, abstract-event pair), so the block
    reports *bugs*, not detection counts.
    """
    per_program: dict[str, dict[tuple, str]] = {}
    per_sanitizer: Counter[str] = Counter()
    for (_, program), trials in campaign.results.items():
        bucket = per_program.setdefault(program, {})
        for result in trials:
            for report in result.sanitizer_reports:
                if report.dedup_key not in bucket:
                    bucket[report.dedup_key] = report.message
                    per_sanitizer[report.sanitizer] += 1
    total = sum(len(bucket) for bucket in per_program.values())
    lines = [f"Sanitizer findings: {total} distinct"]
    if total:
        breakdown = ", ".join(f"{name}: {count}" for name, count in sorted(per_sanitizer.items()))
        lines.append(f"  by sanitizer:     {breakdown}")
    for program in sorted(per_program):
        bucket = per_program[program]
        if not bucket:
            continue
        lines.append(f"  {program}: {len(bucket)}")
        for key in sorted(bucket):
            lines.append(f"    [{key[0]}] {bucket[key]}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Triage / reproduction
# ----------------------------------------------------------------------
def reproduction_summary(campaign: CampaignResult) -> str:
    """Render the replay-verification ledger of a campaign.

    Bugs are grouped per program by their triage bucket; each bucket shows
    how many trials landed in it and the replay verdicts observed.  Only
    STABLE bugs count as reproduced — FLAKY buckets are listed under a
    quarantine marker so they are never mistaken for verified findings.
    """
    per_program: dict[str, dict[str, Counter]] = {}
    stable = flaky = unverified = 0
    for (_, program), trials in campaign.results.items():
        buckets = per_program.setdefault(program, {})
        for result in trials:
            if not result.found or result.bucket is None:
                continue
            verdict = result.replay_verdict or "UNVERIFIED"
            buckets.setdefault(result.bucket, Counter())[verdict] += 1
            if verdict == "STABLE":
                stable += 1
            elif verdict == "FLAKY":
                flaky += 1
            else:
                unverified += 1
    lines = [
        "Reproduction ledger: "
        f"{stable} STABLE, {flaky} FLAKY (quarantined), {unverified} unverified"
    ]
    for program in sorted(per_program):
        buckets = per_program[program]
        if not buckets:
            continue
        lines.append(f"  {program}:")
        for bucket in sorted(buckets):
            verdicts = buckets[bucket]
            rendered = ", ".join(f"{v}×{n}" for v, n in sorted(verdicts.items()))
            marker = " [QUARANTINED]" if verdicts.get("FLAKY") else ""
            lines.append(f"    {bucket}: {rendered}{marker}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pairwise significance (Sections 5.2/5.3 claims)
# ----------------------------------------------------------------------
def significance_summary(
    campaign: CampaignResult, tool_a: str, tool_b: str, alpha: float = 0.05
) -> dict[str, int]:
    """Count programs where each tool is significantly faster (log-rank).

    Returns ``{"a_faster": n, "b_faster": m, "ties": k}`` over all programs,
    the shape of the paper's "significantly fewer schedules on 30/49" claims.
    """
    a_faster = b_faster = ties = 0
    for program in campaign.programs():
        times_a = campaign.schedules_to_bug(tool_a, program)
        times_b = campaign.schedules_to_bug(tool_b, program)
        if not times_a or not times_b:
            continue
        budget = campaign.config.budget_for(program)
        test = logrank(times_a, times_b, budget_a=budget, budget_b=budget)
        if test.significant(alpha):
            direction = logrank_direction(times_a, times_b)
            if direction < 0:
                a_faster += 1
            elif direction > 0:
                b_faster += 1
            else:
                ties += 1
        else:
            ties += 1
    return {"a_faster": a_faster, "b_faster": b_faster, "ties": ties}


# ----------------------------------------------------------------------
# Ground-truth differential evaluation (generated corpora)
# ----------------------------------------------------------------------
def groundtruth_summary(payload: dict) -> str:
    """Render a BENCH_groundtruth payload (see harness.groundtruth).

    One block per channel: crash-channel detection per tool and planted
    kind, then the per-sanitizer confusion with FN/FP rates — the numbers
    the CI baseline bounds.
    """
    config = payload["config"]
    kinds = payload["corpus"]["kinds"]
    breakdown = ", ".join(f"{kind}: {count}" for kind, count in sorted(kinds.items()))
    lines = [
        f"Generated corpus: {config['count']} programs from seed {config['seed']}"
        + (f" (config {config['gen_config']})" if config["gen_config"] else ""),
        f"  planted kinds:    {breakdown}",
        "",
        f"Crash channel ({config['trials']} trials x {config['budget']} schedules):",
    ]
    for tool, section in payload["tools"].items():
        planted_total = section["planted_total"]
        mean = section["mean_schedules_to_bug"]
        mean_text = f"{mean:.1f}" if mean is not None else "-"
        per_kind = ", ".join(
            f"{kind} {section['detected'].get(kind, 0)}/{count}"
            for kind, count in sorted(section["planted"].items())
        )
        lines.append(
            f"  {tool:14s} {section['detected_total']:3d}/{planted_total} planted bugs"
            f"  (mean schedules-to-bug {mean_text};  {per_kind})"
        )
        if section["spurious_crashes"]:
            lines.append(
                f"  {'':14s} !! {section['spurious_crashes']} spurious crash(es) "
                "on bug-free programs"
            )
    lines.append("")
    lines.append(
        f"Sanitizer channel (RFF x {config['sanitizer_budget']} schedules per program):"
    )
    for name, cell in payload["sanitizers"].items():
        lines.append(
            f"  {name:10s} tp={cell['tp']:3d} fn={cell['fn']:3d} fp={cell['fp']:3d} "
            f"tn={cell['tn']:3d}  fn_rate={cell['fn_rate']:.3f} fp_rate={cell['fp_rate']:.3f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pooled-worker profiling
# ----------------------------------------------------------------------
def profile_summary(profile_dir, top: int = 15) -> str:
    """Merge the pool workers' ``.pstats`` dumps into one hot-spot table.

    ``rff campaign --engine pool --profile DIR`` leaves one
    ``worker-<pid>.pstats`` file per worker under ``DIR`` (re-dumped after
    every batch, so even killed workers contribute their completed work);
    this merges them and renders the ``top`` functions by cumulative time.
    """
    import io
    import pstats
    from pathlib import Path

    dumps = sorted(Path(profile_dir).glob("worker-*.pstats"))
    if not dumps:
        return f"Worker profile: no .pstats dumps under {profile_dir}"
    stats = pstats.Stats(str(dumps[0]))
    for dump in dumps[1:]:
        stats.add(str(dump))
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(top)
    lines = [
        f"Worker profile ({len(dumps)} worker dump(s), top {top} by cumulative time)"
    ]
    # pstats prints a preamble (file list, ordering note) before the table;
    # keep everything from the column header on.
    rows = buffer.getvalue().splitlines()
    start = next((i for i, row in enumerate(rows) if "ncalls" in row), 0)
    lines.extend(f"  {row}" for row in rows[start:] if row.strip())
    return "\n".join(lines)
