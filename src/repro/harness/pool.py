"""Persistent batched worker pool: fork-server-style campaign execution.

The paper's C/C++ RFF rides on AFL's fork server to amortize target startup
cost across executions; the per-cell engine in
:mod:`repro.harness.parallel` still pays a full process spawn plus tool and
program construction for every (cell, attempt, slice).  Allocation rounds
multiplied the number of *small* slices, so that per-dispatch overhead now
dominates short campaigns.  This module is the analogue of the fork server:

* **Long-lived workers.**  ``pool_size`` processes are spawned once per
  campaign and serve *batches* of slices over a request/reply pipe
  protocol, surviving across batches and allocation rounds.
* **Worker-side caches.**  Each worker caches constructed tools keyed by
  ``(tool_name, program_name)`` and resolved programs keyed by program
  name.  Caching is determinism-safe because every ``find_bug`` call
  builds its own RNG/policy/fuzzer state from the slice seed; campaign
  attributes (sanitizers, replay verification, guardrails) are applied
  from the campaign-wide :class:`WorkerProfile`, which never changes over
  a pool's lifetime.  Tools that keep cross-call state can opt out with
  ``reusable = False`` (see :class:`repro.harness.tools.TestingTool`).
* **Compact replies.**  Results cross the pipe in persist-dict form
  (:func:`repro.harness.persist.result_to_dict`), not as pickled live
  objects; the dispatcher re-interns repeated strings and rf-pair buffers
  on decode so ten thousand slices don't allocate ten thousand copies of
  ``"CS/reorder_10"``.
* **Budget-aware batching.**  The dispatcher packs slices into batches
  bounded both by slice count and by total schedule budget
  (:func:`repro.harness.allocator.pack_batches`), so one slow batch cannot
  starve an allocation-round barrier.
* **Crash replay of unfinished slices only.**  Workers stream one
  ``slice_done`` message per slice; when a worker dies mid-batch the
  dispatcher already holds every completed slice and re-enqueues only the
  unfinished remainder on a fresh worker (``worker_recycle`` telemetry).
  Combined with the engines' retry accounting this preserves the golden
  contract: for a fixed (seed, allocator), serial == per-cell == pool ==
  SIGKILL'd-and-resumed, bit for bit.

Wire protocol (one duplex pipe per worker):

======================  =================================================
parent -> worker        ``("batch", batch_id, [wire_slice, ...])`` then
                        eventually ``("shutdown",)``
worker -> parent        ``("slice_done", batch_id, index, payload)`` or
                        ``("slice_error", batch_id, index, message)`` per
                        slice, ``("batch_end", batch_id)`` per batch, and
                        ``("heartbeat", seq, identity)`` when supervised
======================  =================================================

A wire slice is the interned tuple ``(tool, program, trial, seed, budget,
factory_ref)``; a reply payload is ``(result_dict, wall_time,
counters_dict)``.
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import Any, Callable

from repro.core.trace import intern_schedule
from repro.harness.persist import result_from_dict, result_to_dict
from repro.harness.telemetry import GLOBAL_COUNTERS, TelemetrySink

#: Default maximum slices per dispatched batch.
DEFAULT_BATCH_SLICES = 8
#: Target number of batch "waves" per worker per execute() call; the budget
#: cap is sized so a round splits into roughly this many batches per worker,
#: keeping any single batch from holding the round barrier hostage.
BATCH_WAVES = 4


@dataclass(frozen=True)
class WorkerProfile:
    """Campaign-wide configuration shipped to each worker exactly once.

    Everything here is constant for the life of one campaign, which is what
    makes the worker-side tool cache sound: a cached tool re-applies the
    same profile attributes before every slice, so no slice can observe
    state leaked from a differently-configured predecessor.
    """

    sanitizers: tuple[str, ...] = ()
    verify_replays: int = 0
    guard: tuple | None = None
    fault_hook: str | None = None
    #: Interval of the worker's heartbeat thread; None disables heartbeats.
    heartbeat_seconds: float | None = None
    #: Directory for per-worker cProfile dumps; None disables profiling.
    profile_dir: str | None = None
    #: Snapshot of ``RFF_*`` environment variables taken dispatcher-side.
    #: Restored inside the worker so chaos plans and fault hooks behave
    #: identically under fork, forkserver and spawn — the forkserver
    #: process inherits the environment of its *first* use, not of the
    #: campaign that is currently running.
    env: tuple[tuple[str, str], ...] = ()


def wire_slice(spec) -> tuple:
    """The compact, interned wire form of one :class:`CellSpec` slice."""
    return intern_schedule(
        (spec.tool, spec.program, spec.trial, spec.seed, spec.budget, spec.factory_ref)
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _apply_profile(tool, profile: WorkerProfile) -> None:
    """Apply campaign-wide tool attributes, mirroring ``_run_cell``."""
    if profile.sanitizers:
        tool.sanitizers = tuple(profile.sanitizers)
    if profile.verify_replays:
        tool.verify_replays = profile.verify_replays
    if profile.guard is not None:
        from repro.runtime.guard import GuardConfig

        step_budget, wall_seconds, livelock_window = profile.guard
        tool.guard = GuardConfig(
            step_budget=step_budget,
            wall_seconds=wall_seconds,
            livelock_window=livelock_window,
        )


def _execute_wire_slice(wire: tuple, profile: WorkerProfile, tools: dict, programs: dict):
    """Run one slice against the worker's caches; returns the reply payload."""
    from repro import bench
    from repro.harness.parallel import CellSpec, resolve_ref

    tool_name, program_name, trial, seed, budget, ref = wire
    if profile.fault_hook:
        # Fault hooks receive a full CellSpec so chaos plans key the same
        # tool|program|trial cells as the per-cell engine does.
        spec = CellSpec(
            tool=tool_name,
            program=program_name,
            trial=trial,
            seed=seed,
            budget=budget,
            factory_ref=ref,
            fault_hook=profile.fault_hook,
            sanitizers=profile.sanitizers,
            verify_replays=profile.verify_replays,
            guard=profile.guard,
        )
        resolve_ref(profile.fault_hook)(spec)
    cache_key = (tool_name, program_name)
    tool = tools.get(cache_key)
    if tool is None:
        tool = resolve_ref(ref)()
        if getattr(tool, "reusable", True):
            tools[cache_key] = tool
    _apply_profile(tool, profile)
    program = programs.get(program_name)
    if program is None:
        program = programs[program_name] = bench.get(program_name)
    before = GLOBAL_COUNTERS.snapshot()
    start = time.perf_counter()
    result = tool.find_bug(program, budget, seed)
    wall_time = time.perf_counter() - start
    counters = GLOBAL_COUNTERS.delta(before).as_dict()
    return (result_to_dict(replace(result, trial=trial)), wall_time, counters)


def _pool_worker_main(conn, profile: WorkerProfile) -> None:
    """Worker entrypoint: serve batches until told to shut down.

    Tools and programs are cached across batches *and* allocation rounds —
    this loop is the fork-server analogue the module docstring describes.
    Replies stream per slice so the dispatcher can replay only unfinished
    work when this process dies mid-batch.
    """
    os.environ.update(dict(profile.env))
    import threading

    from repro.harness import faults

    send_lock = threading.Lock()
    stop = threading.Event()
    #: Identity (tool, program, trial) of the slice currently running; the
    #: heartbeat thread reads it so parent-side telemetry can attribute
    #: beats to cells (None while idle between batches).
    current: list = [None]

    if profile.heartbeat_seconds:

        def beat() -> None:
            seq = 0
            while not stop.wait(profile.heartbeat_seconds):
                if faults.is_wedged():
                    continue
                seq += 1
                with send_lock:
                    if stop.is_set():
                        return
                    try:
                        conn.send(("heartbeat", seq, current[0]))
                    except OSError:  # parent gone; nothing left to report to
                        return

        threading.Thread(target=beat, daemon=True).start()

    profiler = None
    if profile.profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    def dump_profile() -> None:
        if profiler is None:
            return
        profiler.disable()
        target = os.path.join(profile.profile_dir, f"worker-{os.getpid()}.pstats")
        profiler.dump_stats(target)
        profiler.enable()

    tools: dict[tuple[str, str], Any] = {}
    programs: dict[str, Any] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent died; die with it
                return
            if message[0] == "shutdown":
                dump_profile()
                return
            _, batch_id, slices = message
            for index, wire in enumerate(slices):
                current[0] = (wire[0], wire[1], wire[2])
                try:
                    payload = ("slice_done", batch_id, index,
                               _execute_wire_slice(wire, profile, tools, programs))
                except BaseException as exc:  # noqa: BLE001 - must not leak workers
                    payload = ("slice_error", batch_id, index,
                               f"{type(exc).__name__}: {exc}")
                current[0] = None
                with send_lock:
                    conn.send(payload)
            with send_lock:
                conn.send(("batch_end", batch_id))
            # Dump after every batch, not only at shutdown, so a worker that
            # is later killed still leaves profile data for completed work.
            dump_profile()
    finally:
        stop.set()
        conn.close()


# ----------------------------------------------------------------------
# Dispatcher side
# ----------------------------------------------------------------------
def _intern_reply(data: dict) -> dict:
    """Re-intern the repeated strings of one reply's result dict in place.

    A campaign decodes thousands of replies whose tool/program/outcome and
    sanitizer rf-pair strings repeat across slices; ``sys.intern`` collapses
    them to shared singletons parent-side (the same discipline the abstract
    event and rf-pair tables apply inside the executor).
    """
    data["tool"] = sys.intern(data["tool"])
    data["program"] = sys.intern(data["program"])
    outcome = data.get("outcome")
    if isinstance(outcome, str):
        data["outcome"] = sys.intern(outcome)
    for report in data.get("sanitizer_reports", ()):
        report["sanitizer"] = sys.intern(report["sanitizer"])
        report["kind"] = sys.intern(report["kind"])
        report["pair"] = [sys.intern(part) for part in report["pair"]]
    return data


def _decode_outcome(payload):
    """Reply payload -> CellOutcome (lazy import avoids a module cycle)."""
    from repro.harness.parallel import CellOutcome

    data, wall_time, counters = payload
    return CellOutcome(
        result=result_from_dict(_intern_reply(data)),
        wall_time=wall_time,
        counters=counters,
    )


@dataclass
class _Batch:
    """One dispatched unit of work: parallel arrays over its slices."""

    batch_id: int
    specs: list
    attempts: list[int]
    wires: list[tuple]
    budget: int
    done: list[bool] = field(default_factory=list)
    #: Earliest dispatch time (crash-replay batches back off under the
    #: supervised engine's exponential-backoff policy).
    not_before: float = 0.0

    def __post_init__(self) -> None:
        if not self.done:
            self.done = [False] * len(self.specs)

    def unfinished(self) -> list[int]:
        return [index for index, is_done in enumerate(self.done) if not is_done]


@dataclass
class _PoolWorker:
    """Parent-side handle of one long-lived pool worker."""

    proc: Any
    conn: Any
    started: float
    last_beat: float
    #: Time of the worker's last slice completion (or batch dispatch); the
    #: per-slice ``cell_timeout`` is enforced as time-without-progress.
    last_progress: float
    batch: _Batch | None = None


class WorkerPool:
    """A pool of long-lived batch-serving workers for one campaign.

    The pool outlives individual ``execute()`` calls — the allocated path
    calls it once per round, and worker caches persist across rounds.  All
    failure *policy* (retry budgets, isolate-failures semantics, backoff
    pacing) stays with the owning engine; the pool only implements the
    mechanics of dispatch, streaming replies, and crash replay.
    """

    def __init__(
        self,
        context,
        size: int,
        profile: WorkerProfile,
        batch_size: int | None = None,
        batch_budget: int | None = None,
        lease_seconds: float | None = None,
        backoff: Callable[[int], float] | None = None,
    ):
        self.context = context
        self.size = max(1, size)
        self.profile = profile
        self.batch_size = batch_size or DEFAULT_BATCH_SLICES
        self.batch_budget = batch_budget
        self.lease_seconds = lease_seconds
        self.backoff = backoff
        self._workers: dict[Any, _PoolWorker] = {}
        self._batch_seq = 0
        self._degraded = False

    # -- batching -------------------------------------------------------
    def _make_batch(self, specs: list, attempts: list[int], not_before: float = 0.0) -> _Batch:
        self._batch_seq += 1
        return _Batch(
            batch_id=self._batch_seq,
            specs=list(specs),
            attempts=list(attempts),
            wires=[wire_slice(spec) for spec in specs],
            budget=sum(spec.budget for spec in specs),
            not_before=not_before,
        )

    def _pack(self, specs: list) -> list[_Batch]:
        from repro.harness.allocator import pack_batches

        total = sum(spec.budget for spec in specs)
        largest = max(spec.budget for spec in specs)
        cap = self.batch_budget or max(largest, -(-total // (self.size * BATCH_WAVES)))
        return [
            self._make_batch(group, [1] * len(group))
            for group in pack_batches(specs, self.batch_size, cap)
        ]

    # -- worker lifecycle -----------------------------------------------
    def _spawn(self, sink: TelemetrySink) -> _PoolWorker | None:
        try:
            parent_conn, child_conn = self.context.Pipe(duplex=True)
            proc = self.context.Process(
                target=_pool_worker_main, args=(child_conn, self.profile), daemon=True
            )
            proc.start()
        except OSError:
            return None
        child_conn.close()
        now = time.perf_counter()
        worker = _PoolWorker(
            proc=proc, conn=parent_conn, started=now, last_beat=now, last_progress=now
        )
        self._workers[parent_conn] = worker
        return worker

    def _idle_worker(self) -> _PoolWorker | None:
        for worker in self._workers.values():
            if worker.batch is None:
                return worker
        return None

    @staticmethod
    def _kill(worker: _PoolWorker) -> None:
        worker.proc.terminate()
        worker.proc.join(timeout=5)
        if worker.proc.is_alive():  # pragma: no cover - terminate() suffices
            worker.proc.kill()
            worker.proc.join()
        worker.conn.close()

    def close(self, sink: TelemetrySink | None = None) -> None:
        """Shut every worker down (clean message first, then force)."""
        sink = sink or TelemetrySink()
        for worker in self._workers.values():
            if worker.batch is not None:
                # Abort path: a batch is still in flight; don't wait for it.
                self._kill(worker)
                continue
            try:
                worker.conn.send(("shutdown",))
            except OSError:
                pass
        for worker in self._workers.values():
            if worker.batch is not None:
                continue
            worker.proc.join(timeout=5)
            if worker.proc.is_alive():  # pragma: no cover - shutdown suffices
                worker.proc.terminate()
                worker.proc.join()
            worker.conn.close()
            sink.emit("worker_exit", pid=worker.proc.pid, exitcode=worker.proc.exitcode, kind="ok")
        self._workers.clear()

    # -- dispatch/replay ------------------------------------------------
    def _dispatch(self, worker: _PoolWorker, batch: _Batch, sink: TelemetrySink) -> bool:
        for index, spec in enumerate(batch.specs):
            sink.emit(
                "cell_start",
                tool=spec.tool,
                program=spec.program,
                trial=spec.trial,
                attempt=batch.attempts[index],
            )
        try:
            worker.conn.send(("batch", batch.batch_id, batch.wires))
        except OSError:
            return False
        now = time.perf_counter()
        worker.batch = batch
        worker.last_progress = now
        worker.last_beat = now
        sink.emit(
            "batch_dispatch",
            pid=worker.proc.pid,
            batch=batch.batch_id,
            slices=len(batch.specs),
            budget=batch.budget,
        )
        return True

    def _recycle(
        self,
        worker: _PoolWorker,
        kind: str,
        detail: str,
        waiting: list[_Batch],
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
        engine,
    ) -> None:
        """Retire a dead/killed worker and replay only its unfinished slices."""
        del self._workers[worker.conn]
        if kind == "crash":
            worker.proc.join()
            worker.conn.close()
        else:
            self._kill(worker)
        exitcode = worker.proc.exitcode
        batch = worker.batch
        unfinished = [] if batch is None else batch.unfinished()
        sink.emit("worker_exit", pid=worker.proc.pid, exitcode=exitcode, kind=kind)
        sink.emit(
            "worker_recycle",
            pid=worker.proc.pid,
            exitcode=exitcode,
            kind=kind,
            unfinished=len(unfinished),
        )
        if not unfinished:
            return
        replay_specs: list = []
        replay_attempts: list[int] = []
        delay = 0.0
        for index in unfinished:
            spec, attempt = batch.specs[index], batch.attempts[index]
            if attempt <= engine.max_retries:
                stats["retries"] += 1
                sink.emit(
                    "cell_retry",
                    tool=spec.tool,
                    program=spec.program,
                    trial=spec.trial,
                    attempt=attempt,
                    kind=kind,
                )
                if self.backoff is not None:
                    delay = max(delay, self.backoff(attempt))
                    sink.emit(
                        "lease_reassign",
                        tool=spec.tool,
                        program=spec.program,
                        trial=spec.trial,
                        attempt=attempt,
                        kind=kind,
                        delay=delay,
                    )
                replay_specs.append(spec)
                replay_attempts.append(attempt + 1)
            else:
                engine._fail(spec, attempt, kind, detail, recorder, stats, sink)
        if replay_specs:
            waiting.append(
                self._make_batch(
                    replay_specs, replay_attempts, not_before=time.perf_counter() + delay
                )
            )

    def _pump(
        self,
        worker: _PoolWorker,
        waiting: list[_Batch],
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
        engine,
    ) -> None:
        """Drain every buffered message of one worker pipe."""
        conn = worker.conn
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError):
                self._recycle(
                    worker,
                    "crash",
                    f"worker died with exit code {worker.proc.exitcode}",
                    waiting,
                    recorder,
                    stats,
                    sink,
                    engine,
                )
                return
            tag = message[0]
            now = time.perf_counter()
            worker.last_beat = now
            if tag == "heartbeat":
                identity = message[2]
                if identity is not None:
                    sink.emit(
                        "heartbeat",
                        pid=worker.proc.pid,
                        tool=identity[0],
                        program=identity[1],
                        trial=identity[2],
                        seq=message[1],
                    )
            elif tag == "slice_done":
                _, _, index, payload = message
                batch = worker.batch
                batch.done[index] = True
                worker.last_progress = now
                outcome = _decode_outcome(payload)
                recorder(batch.specs[index], batch.attempts[index], outcome, outcome.result)
            elif tag == "slice_error":
                # Deterministic in-worker exception; retrying cannot help.
                _, _, index, detail = message
                batch = worker.batch
                batch.done[index] = True
                worker.last_progress = now
                engine._fail(
                    batch.specs[index], batch.attempts[index], "error", detail,
                    recorder, stats, sink,
                )
            elif tag == "batch_end":
                worker.batch = None

    def _drain_serial(
        self,
        ready: deque,
        waiting: list[_Batch],
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
        engine,
    ) -> None:
        """Degraded mode: no worker can be spawned; finish in-process."""
        while ready or waiting:
            batch = ready.popleft() if ready else waiting.pop(0)
            for index in batch.unfinished():
                engine._run_serial_cell(
                    batch.specs[index], batch.attempts[index], recorder, stats, sink
                )

    # -- the dispatch loop ----------------------------------------------
    def execute(
        self,
        specs: list,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
        engine,
    ) -> None:
        """Run every slice of ``specs`` through the pool (one round barrier).

        Returns when every slice has been recorded (success or structured
        failure).  Workers left idle at return stay alive for the next call.
        """
        if not specs:
            return
        ready: deque[_Batch] = deque(self._pack(specs))
        #: Crash-replay batches waiting out their backoff delay.
        waiting: list[_Batch] = []
        if self._degraded:
            self._drain_serial(ready, waiting, recorder, stats, sink, engine)
            return
        while ready or waiting or any(w.batch is not None for w in self._workers.values()):
            now = time.perf_counter()
            for batch in [b for b in waiting if b.not_before <= now]:
                waiting.remove(batch)
                ready.append(batch)
            while ready:
                worker = self._idle_worker()
                if worker is None and len(self._workers) < self.size:
                    worker = self._spawn(sink)
                    if worker is None and not self._workers:
                        # No live workers and none can start: degrade for
                        # the rest of the campaign, like the per-cell pool.
                        self._degraded = True
                        sink.emit(
                            "pool_degraded",
                            reason="pool worker could not be started; "
                            "running remaining slices serially in-process",
                        )
                        self._drain_serial(ready, waiting, recorder, stats, sink, engine)
                        return
                if worker is None:
                    break
                batch = ready.popleft()
                if not self._dispatch(worker, batch, sink):
                    # The idle worker died between batches; replace it and
                    # put the batch back — nothing of it ran yet.
                    self._recycle(
                        worker, "crash", "idle worker died", waiting,
                        recorder, stats, sink, engine,
                    )
                    ready.appendleft(batch)
            if not self._workers:
                if waiting and not ready:
                    # Everything is backing off and no worker is alive yet;
                    # sleep to the nearest retry-ready time, don't spin.
                    time.sleep(
                        max(0.0, min(b.not_before for b in waiting) - time.perf_counter())
                    )
                continue
            deadlines = [b.not_before for b in waiting]
            for worker in self._workers.values():
                if worker.batch is not None and engine.cell_timeout is not None:
                    deadlines.append(worker.last_progress + engine.cell_timeout)
                if self.lease_seconds is not None:
                    deadlines.append(worker.last_beat + self.lease_seconds)
            timeout = max(0.0, min(deadlines) - now) if deadlines else None
            for conn in mp_connection.wait(list(self._workers), timeout=timeout):
                worker = self._workers.get(conn)
                if worker is not None:
                    self._pump(worker, waiting, recorder, stats, sink, engine)
            now = time.perf_counter()
            for worker in list(self._workers.values()):
                timed_out = (
                    worker.batch is not None
                    and engine.cell_timeout is not None
                    and now - worker.last_progress >= engine.cell_timeout
                )
                lease_lost = (
                    self.lease_seconds is not None
                    and now - worker.last_beat >= self.lease_seconds
                )
                if not (timed_out or lease_lost):
                    continue
                kind = "timeout" if timed_out else "lease"
                detail = (
                    f"slice exceeded {engine.cell_timeout:g}s without progress"
                    if timed_out
                    else f"worker missed its heartbeat deadline "
                    f"({self.lease_seconds:g}s lease expired)"
                )
                self._recycle(worker, kind, detail, waiting, recorder, stats, sink, engine)
