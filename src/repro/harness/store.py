"""Crash-safe, append-only corpus/findings store for durable campaigns.

A campaign that runs unattended for hours must survive SIGKILL at any
instant and resume *bit-identically* — no lost bugs, no duplicated cells,
no silent corruption.  :class:`CorpusStore` is the single write path that
serial (:class:`~repro.harness.campaign.Campaign`), parallel
(:class:`~repro.harness.parallel.ParallelCampaign`), and supervised
(:class:`~repro.harness.supervisor.SupervisedCampaign`) campaigns all
share.  The design is a miniature write-ahead log:

* **Append-only JSONL segments** (``segment-000000.jsonl`` …).  Each
  record is one checksummed JSON line
  (:func:`repro.harness.persist.attach_checksum`), appended and flushed;
  a killed writer leaves at most one torn trailing line, which reopening
  the store truncates away (:func:`repro.harness.persist.recover_jsonl`)
  so later appends can never manufacture a mid-file tear.
* **An atomically replaced manifest** (``MANIFEST.json``) naming the live
  segments, the campaign header, and the compaction count.  Every
  manifest update goes through write-temp → fsync → ``os.replace`` →
  fsync(directory), so the store always has exactly one authoritative
  manifest; segments not named by it are garbage from an interrupted
  compaction and are swept on the next writable open.
* **fsync barriers on bug admission.**  Ordinary records are flushed (safe
  against process death); records with ``found=True`` are additionally
  fsynced before :meth:`record_result` returns, so an admitted bug
  survives power loss, not just SIGKILL.
* **Checksum-verified reads.**  A record whose checksum fails to verify
  (at-rest corruption, or the ``corrupt`` chaos fault) is counted and
  skipped — its cell simply looks incomplete, and a resumed campaign
  re-runs it.  Dedup is first-wins per cell key, so a record duplicated
  by a crash-between-store-and-checkpoint resume cannot change results.
* **Advisory locking.**  Writers hold an exclusive ``flock`` on
  ``store.lock`` for their whole lifetime; readers take a shared one.
  A second campaign pointed at the same store fails fast with
  :class:`StoreLockedError` instead of interleaving records.

Chaos hooks: when a :class:`~repro.harness.faults.ChaosPlan` is armed in
the environment, :meth:`record_result` consults
:func:`repro.harness.faults.store_chaos` per append — ``torn_write``
flushes half a line and raises :class:`~repro.harness.faults.ChaosKill`;
``corrupt`` commits the record with a poisoned checksum.  Both fire once
per injection point, so resumed campaigns provably converge.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.harness import faults
from repro.harness.persist import (
    attach_checksum,
    payload_checksum,
    read_jsonl,
    recover_jsonl,
    result_from_dict,
    result_to_dict,
)
from repro.harness.tools import BugSearchResult

try:  # pragma: no cover - fcntl is present on every POSIX CI target
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: no advisory locks
    fcntl = None  # type: ignore[assignment]

STORE_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
LOCK_NAME = "store.lock"
SEGMENT_FORMAT = "segment-{index:06d}.jsonl"
#: Default records-per-segment before the writer rolls to a fresh segment.
SEGMENT_MAX_RECORDS = 4096

#: A campaign cell's identity inside the store.
CellKey = tuple[str, str, int]

#: One allocation-round slice of a cell: (tool, program, trial, round).
SliceKey = tuple[str, str, int, int]


class StoreError(RuntimeError):
    """The store is unusable as asked (missing, corrupt, or misconfigured)."""


class StoreLockedError(StoreError):
    """Another process holds the store's advisory lock."""


class StoreMismatchError(StoreError):
    """The store belongs to a different campaign configuration."""


@dataclass(frozen=True)
class StoreInspection:
    """A point-in-time accounting of a store's contents and health."""

    path: str
    segments: int
    records: int
    cells: int
    bugs: int
    corrupt_records: int
    recovered_bytes: int
    compactions: int
    header: dict[str, Any] | None = field(default=None)
    #: Allocation-round slice records (adaptive campaigns only).
    slices: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "segments": self.segments,
            "records": self.records,
            "cells": self.cells,
            "bugs": self.bugs,
            "corrupt_records": self.corrupt_records,
            "recovered_bytes": self.recovered_bytes,
            "compactions": self.compactions,
            "header": self.header,
            "slices": self.slices,
        }


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_json(payload: dict[str, Any], target: Path) -> None:
    """Write ``payload`` so ``target`` is either its old or new content —
    never a mixture — even across power loss."""
    tmp = target.with_suffix(target.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    _fsync_dir(target.parent)


class CorpusStore:
    """The durable ledger one campaign's results live in.

    Open writable (the default) to record results, or ``readonly=True``
    to inspect a store another process may still be writing is *not*
    allowed — readers take a shared lock, so inspection waits until the
    writer is gone (or fails fast, which is the point).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        readonly: bool = False,
        segment_max_records: int = SEGMENT_MAX_RECORDS,
    ) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.segment_max_records = segment_max_records
        self.recovered_bytes = 0
        self._handle = None
        self._lock_handle = None
        self._chaos_seq = 0
        if readonly:
            if not (self.path / MANIFEST_NAME).exists():
                raise StoreError(f"{self.path}: not a corpus store (no {MANIFEST_NAME})")
        else:
            self.path.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            self._manifest = self._load_or_init_manifest()
            if not readonly:
                self._sweep_orphans()
                self._repair_active_segment()
                self._open_active_segment()
            self._chaos_seq = sum(1 for _ in self._iter_raw())
        except BaseException:
            self._release_lock()
            raise

    # -- locking -------------------------------------------------------
    def _acquire_lock(self) -> None:
        if fcntl is None:
            return
        lock_path = self.path / LOCK_NAME
        handle = lock_path.open("a")
        mode = fcntl.LOCK_SH if self.readonly else fcntl.LOCK_EX
        try:
            fcntl.flock(handle.fileno(), mode | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            verb = "read" if self.readonly else "write to"
            raise StoreLockedError(
                f"{self.path}: cannot {verb} store — another campaign holds "
                f"its lock ({lock_path})"
            ) from None
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is not None:
            if fcntl is not None:
                fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
            self._lock_handle.close()
            self._lock_handle = None

    # -- manifest / segments -------------------------------------------
    def _load_or_init_manifest(self) -> dict[str, Any]:
        manifest_path = self.path / MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if manifest.get("store_version") != STORE_VERSION:
                raise StoreError(
                    f"{self.path}: unsupported store_version "
                    f"{manifest.get('store_version')!r} (expected {STORE_VERSION})"
                )
            return manifest
        if self.readonly:  # pragma: no cover - guarded in __init__
            raise StoreError(f"{self.path}: not a corpus store")
        manifest = {
            "store_version": STORE_VERSION,
            "header": None,
            "segments": [SEGMENT_FORMAT.format(index=0)],
            "compactions": 0,
        }
        _atomic_write_json(manifest, manifest_path)
        return manifest

    def _write_manifest(self) -> None:
        _atomic_write_json(self._manifest, self.path / MANIFEST_NAME)

    @property
    def segments(self) -> list[Path]:
        return [self.path / name for name in self._manifest["segments"]]

    def _sweep_orphans(self) -> None:
        """Remove segments and temp files an interrupted compaction left
        behind — the manifest is the sole authority on what is live."""
        live = set(self._manifest["segments"])
        for entry in self.path.iterdir():
            if entry.name in live or entry.name in (MANIFEST_NAME, LOCK_NAME):
                continue
            if entry.name.startswith("segment-") or entry.suffix == ".tmp":
                entry.unlink()

    def _repair_active_segment(self) -> None:
        active = self.segments[-1]
        _, truncated = recover_jsonl(active)
        self.recovered_bytes += truncated

    def _open_active_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
        self._handle = self.segments[-1].open("a", encoding="utf-8")
        self._active_records = len(read_jsonl(self.segments[-1]))

    def _roll_segment(self) -> None:
        index = int(self.segments[-1].stem.split("-")[1]) + 1
        name = SEGMENT_FORMAT.format(index=index)
        (self.path / name).touch()
        self._manifest["segments"].append(name)
        self._write_manifest()
        self._open_active_segment()

    # -- campaign header -----------------------------------------------
    def begin_campaign(self, header: dict[str, Any]) -> None:
        """Bind this store to one campaign configuration.

        The first campaign to open the store stamps its header; any later
        open (a resume) must present the identical header, or it would
        silently mix results computed under different configurations."""
        if self.readonly:
            raise StoreError(f"{self.path}: store opened readonly")
        current = self._manifest.get("header")
        if current is None:
            self._manifest["header"] = header
            self._write_manifest()
        elif current != header:
            raise StoreMismatchError(
                f"{self.path}: store belongs to a different campaign "
                f"(stored header {current!r} != {header!r}) — use a fresh "
                f"--store directory or matching campaign options"
            )

    @property
    def header(self) -> dict[str, Any] | None:
        return self._manifest.get("header")

    # -- reading -------------------------------------------------------
    def _iter_raw(self) -> Iterator[dict[str, Any]]:
        for segment in self.segments:
            yield from read_jsonl(segment, tolerate_torn_tail=True)

    def _iter_valid(self) -> Iterator[tuple[dict[str, Any], bool]]:
        for record in self._iter_raw():
            ok = record.get("checksum") == payload_checksum(record)
            yield record, ok

    def completed(self) -> dict[CellKey, BugSearchResult]:
        """Every cell with a valid record, first occurrence winning.

        First-wins dedup makes a duplicated record (crash between the
        store append and the checkpoint append, then resume) harmless:
        the duplicate is byte-identical and simply ignored."""
        results: dict[CellKey, BugSearchResult] = {}
        for record, ok in self._iter_valid():
            if not ok or record.get("type") != "cell":
                continue
            result = result_from_dict(record["result"])
            key = (result.tool, result.program, result.trial)
            results.setdefault(key, result)
        return results

    def completed_slices(self) -> dict[SliceKey, BugSearchResult]:
        """Every allocation-round slice with a valid record, first-wins.

        Adaptive campaigns resume at slice granularity: a campaign killed
        mid-round replays its completed slices from here and re-runs only
        the missing ones, converging bit-identically."""
        results: dict[SliceKey, BugSearchResult] = {}
        for record, ok in self._iter_valid():
            if not ok or record.get("type") != "slice":
                continue
            result = result_from_dict(record["result"])
            key = (result.tool, result.program, result.trial, record["round"])
            results.setdefault(key, result)
        return results

    # -- writing -------------------------------------------------------
    def record_result(self, result: BugSearchResult) -> None:
        """Append one cell result; fsyncs when the record admits a bug."""
        if self.readonly:
            raise StoreError(f"{self.path}: store opened readonly")
        record = attach_checksum({"type": "cell", "result": result_to_dict(result)})
        self._append(record, durable=result.found)

    def record_slice(self, round_index: int, result: BugSearchResult) -> None:
        """Append one allocation-round slice result (adaptive campaigns)."""
        if self.readonly:
            raise StoreError(f"{self.path}: store opened readonly")
        record = attach_checksum(
            {"type": "slice", "round": round_index, "result": result_to_dict(result)}
        )
        self._append(record, durable=result.found)

    def _append(self, record: dict[str, Any], *, durable: bool) -> None:
        seq = self._chaos_seq
        self._chaos_seq += 1
        fault = faults.store_chaos(seq)
        if fault == "corrupt":
            record = dict(record)
            record["checksum"] = "0" * 64
        line = json.dumps(record, sort_keys=True) + "\n"
        if fault == "torn_write":
            # Model SIGKILL mid-write: half the line reaches the disk, then
            # the process is gone.  ChaosKill derives from BaseException so
            # no recovery path can paper over it.
            self._handle.write(line[: len(line) // 2])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise faults.ChaosKill(f"torn write injected at append #{seq}")
        self._handle.write(line)
        self._handle.flush()
        if durable:
            os.fsync(self._handle.fileno())
        self._active_records += 1
        if self._active_records >= self.segment_max_records:
            self._roll_segment()

    # -- compaction ----------------------------------------------------
    def compact(self) -> dict[str, int]:
        """Rewrite the store as one deduplicated segment, atomically.

        The new segment is fully written and fsynced *before* the manifest
        switches over; a crash at any instant leaves either the old
        manifest (old segments intact) or the new one (orphaned old
        segments, swept at next open) in force."""
        if self.readonly:
            raise StoreError(f"{self.path}: store opened readonly")
        before_segments = len(self.segments)
        before_records = sum(1 for _ in self._iter_raw())
        live: dict[tuple, dict[str, Any]] = {}
        for record, ok in self._iter_valid():
            if not ok:
                continue
            record_type = record.get("type")
            if record_type == "cell":
                data = record["result"]
                live.setdefault(("cell", data["tool"], data["program"], data["trial"]), record)
            elif record_type == "slice":
                # Slice records survive compaction: a resumed adaptive
                # campaign replays them to rebuild allocator history.
                data = record["result"]
                live.setdefault(
                    ("slice", data["tool"], data["program"], data["trial"], record["round"]),
                    record,
                )
        self._handle.close()
        self._handle = None
        index = int(self.segments[-1].stem.split("-")[1]) + 1
        name = SEGMENT_FORMAT.format(index=index)
        tmp = self.path / (name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in live.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / name)
        _fsync_dir(self.path)
        old = self.segments
        self._manifest["segments"] = [name]
        self._manifest["compactions"] += 1
        self._write_manifest()
        for segment in old:
            segment.unlink(missing_ok=True)
        self._open_active_segment()
        return {
            "segments_before": before_segments,
            "segments_after": 1,
            "records_before": before_records,
            "records_after": len(live),
        }

    # -- inspection ----------------------------------------------------
    def inspect(self) -> StoreInspection:
        records = 0
        corrupt = 0
        slices = 0
        cells: dict[CellKey, bool] = {}
        for record, ok in self._iter_valid():
            records += 1
            if not ok:
                corrupt += 1
                continue
            if record.get("type") == "cell":
                data = record["result"]
                key = (data["tool"], data["program"], data["trial"])
                cells.setdefault(key, bool(data["found"]))
            elif record.get("type") == "slice":
                slices += 1
        return StoreInspection(
            path=str(self.path),
            segments=len(self.segments),
            records=records,
            cells=len(cells),
            bugs=sum(1 for found in cells.values() if found),
            corrupt_records=corrupt,
            recovered_bytes=self.recovered_bytes,
            compactions=self._manifest["compactions"],
            header=self.header,
            slices=slices,
        )

    def verify(self) -> StoreInspection:
        """Inspect and *insist*: any corrupt record raises StoreError."""
        inspection = self.inspect()
        if inspection.corrupt_records:
            raise StoreError(
                f"{self.path}: {inspection.corrupt_records} record(s) failed "
                f"checksum verification — affected cells will re-run on resume"
            )
        return inspection

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._release_lock()

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
