"""Supervised campaign execution: heartbeats, leases, backoff, triage.

The parallel engine detects *dead* workers (closed pipe) and *slow* cells
(``cell_timeout``), but a wedged worker — deadlocked runtime, stuck I/O, a
scheduler bug that spins without progress — looks alive to both until the
full cell timeout burns down.  Long unattended campaigns need a tighter
liveness contract.  :class:`SupervisedCampaign` adds one:

* **Heartbeats.**  Supervised workers run a daemon thread that sends a
  ``("heartbeat", seq)`` message every ``heartbeat_seconds``.  The beat
  thread deliberately stops when the worker is *wedged*
  (:func:`repro.harness.faults.is_wedged` — set by hang-style faults, and
  the model for a runtime that stops making progress), so liveness is
  judged by the parent, never self-reported by cooperative code.
* **Leases.**  Each running cell holds a lease that renews on every
  heartbeat; a worker silent for ``lease_seconds`` loses it, is killed,
  and its cell is reassigned to a fresh worker.
* **Exponential backoff.**  A reassigned cell waits
  ``min(backoff_cap, backoff_base * 2**(attempt-1))`` seconds before its
  next attempt, so a crashing cell cannot hot-loop the pool while healthy
  cells proceed.
* **Bounded retries with triage.**  The retry budget is inherited from
  :class:`~repro.harness.parallel.ParallelCampaign` (``max_retries``).
  When it exhausts, the per-attempt failure kinds classify the cell: all
  attempts failing the same way is a *deterministic crasher* (the cell,
  not the environment); mixed kinds are a *flaky environment*.  The
  classification lands in the structured error result and the
  ``cell_error`` telemetry record.

Everything else — crash isolation, degraded serial fallback, checkpoint
and store resume, bit-identical results — is inherited unchanged; the
supervised engine only swaps the worker entrypoint and the wait loop.
Under ``engine="pool"`` the same heartbeat/lease contract carries over to
the persistent batched workers of :mod:`repro.harness.pool`: pooled workers
beat at ``heartbeat_seconds``, a silent worker loses its lease after
``lease_seconds``, and replayed slices back off via :meth:`backoff_delay`.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable

from repro.harness import faults
from repro.harness.parallel import (
    CellSpec,
    ParallelCampaign,
    _default_start_method,
    _run_cell,
    _Worker,
)
from repro.harness.telemetry import TelemetrySink


def _supervised_worker_main(conn, spec: CellSpec, heartbeat_seconds: float) -> None:
    """Worker entrypoint that also emits heartbeats from a daemon thread.

    The send lock keeps heartbeat and result messages from interleaving on
    the pipe.  A wedged worker (hang fault, stuck runtime) stops beating
    but stays alive — exactly the failure the parent's lease must catch.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.wait(heartbeat_seconds):
            if faults.is_wedged():
                continue
            seq += 1
            with send_lock:
                if stop.is_set():
                    return
                try:
                    conn.send(("heartbeat", seq))
                except OSError:  # parent gone; nothing left to report to
                    return

    threading.Thread(target=beat, daemon=True).start()
    try:
        payload = ("ok", _run_cell(spec))
    except BaseException as exc:  # noqa: BLE001 - must not leak workers
        payload = ("error", f"{type(exc).__name__}: {exc}")
    stop.set()
    with send_lock:
        try:
            conn.send(payload)
        finally:
            conn.close()


@dataclass
class SupervisedCampaign(ParallelCampaign):
    """A :class:`~repro.harness.parallel.ParallelCampaign` whose workers are
    held to a heartbeat/lease liveness contract.

    Results are bit-identical to the serial and plain-parallel engines —
    supervision only changes *when* failures are detected and how retried
    cells are paced, never what a completed cell computes.
    """

    #: Interval between worker heartbeats.
    heartbeat_seconds: float = 0.5
    #: A worker silent this long loses its lease and is killed.
    lease_seconds: float = 10.0
    #: First-retry backoff delay; doubles per attempt.
    backoff_base: float = 0.1
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 5.0

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry #``attempt`` (1-based): capped exponential."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    def _worker_invocation(self, child_conn, spec: CellSpec) -> tuple[Callable, tuple]:
        return _supervised_worker_main, (child_conn, spec, self.heartbeat_seconds)

    # -- pooled execution -----------------------------------------------
    def _pool_heartbeat_seconds(self) -> float | None:
        """Pooled workers beat at the supervised cadence, so the same lease
        contract applies under ``engine="pool"``."""
        return self.heartbeat_seconds

    def _pool_kwargs(self) -> dict:
        return {"lease_seconds": self.lease_seconds, "backoff": self.backoff_delay}

    # -- failure accounting --------------------------------------------
    def _classify(self, key: tuple[str, str, int]) -> str:
        kinds = self._failure_kinds.get(key, [])
        if len(set(kinds)) == 1:
            return f"deterministic crasher: every attempt failed with {kinds[0]!r}"
        return f"flaky environment: attempts failed with {sorted(set(kinds))}"

    def _supervise_retry(
        self,
        worker: _Worker,
        kind: str,
        detail: str,
        queue: list,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        spec = worker.spec
        self._failure_kinds.setdefault(spec.key, []).append(kind)
        if worker.attempt <= self.max_retries:
            stats["retries"] += 1
            sink.emit(
                "cell_retry",
                tool=spec.tool,
                program=spec.program,
                trial=spec.trial,
                attempt=worker.attempt,
                kind=kind,
            )
            delay = self.backoff_delay(worker.attempt)
            sink.emit(
                "lease_reassign",
                tool=spec.tool,
                program=spec.program,
                trial=spec.trial,
                attempt=worker.attempt,
                kind=kind,
                delay=delay,
            )
            queue.append((spec, worker.attempt + 1, time.perf_counter() + delay))
        else:
            self._fail(
                spec,
                worker.attempt,
                kind,
                f"{detail} [{self._classify(spec.key)}]",
                recorder,
                stats,
                sink,
            )

    # -- message handling ----------------------------------------------
    def _handle_message(
        self,
        worker: _Worker,
        queue: list,
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> bool:
        """Process one pipe message; True when the worker is finished."""
        try:
            kind, payload = worker.conn.recv()
        except (EOFError, OSError):
            worker.proc.join()
            worker.conn.close()
            exitcode = worker.proc.exitcode
            sink.emit("worker_exit", pid=worker.proc.pid, exitcode=exitcode, kind="crash")
            self._supervise_retry(
                worker,
                "crash",
                f"worker died with exit code {exitcode}",
                queue,
                recorder,
                stats,
                sink,
            )
            return True
        if kind == "heartbeat":
            worker.last_beat = time.perf_counter()
            sink.emit(
                "heartbeat",
                pid=worker.proc.pid,
                tool=worker.spec.tool,
                program=worker.spec.program,
                trial=worker.spec.trial,
                seq=payload,
            )
            return False
        worker.conn.close()
        worker.proc.join()
        sink.emit("worker_exit", pid=worker.proc.pid, exitcode=worker.proc.exitcode, kind="ok")
        if kind == "ok":
            recorder(worker.spec, worker.attempt, payload, payload.result)
        else:
            # A deterministic in-worker exception; retrying cannot help.
            self._fail(worker.spec, worker.attempt, "error", payload, recorder, stats, sink)
        return True

    # -- the supervised wait loop --------------------------------------
    def _execute_parallel(
        self,
        specs: list[CellSpec],
        recorder,
        stats: dict[str, int],
        sink: TelemetrySink,
    ) -> None:
        if self.engine == "pool":
            self._ensure_pool().execute(specs, recorder, stats, sink, self)
            return
        context = mp.get_context(self.start_method or _default_start_method())
        capacity = max(1, self._process_count())
        now = time.perf_counter()
        #: (spec, attempt, not_before) — backoff holds retries out of the pool.
        queue: list[tuple[CellSpec, int, float]] = [(spec, 1, now) for spec in specs]
        active: dict = {}
        degraded = False
        self._failure_kinds = {}
        try:
            while queue or active:
                now = time.perf_counter()
                while not degraded and queue and len(active) < capacity:
                    index = next(
                        (i for i, entry in enumerate(queue) if entry[2] <= now), None
                    )
                    if index is None:
                        break
                    spec, attempt, _ = queue.pop(index)
                    worker = self._launch(context, spec, attempt, sink)
                    if worker is None:
                        degraded = True
                        sink.emit(
                            "pool_degraded",
                            reason="worker process could not be started; "
                            "running remaining cells serially in-process",
                        )
                        queue.insert(0, (spec, attempt, now))
                        break
                    worker.last_beat = worker.started
                    active[worker.conn] = worker
                if not active:
                    if degraded and queue:
                        spec, attempt, _ = queue.pop(0)
                        self._run_serial_cell(spec, attempt, recorder, stats, sink)
                    elif queue:
                        # Everything is backing off; sleep to the nearest
                        # retry-ready time instead of spinning.
                        time.sleep(max(0.0, min(e[2] for e in queue) - now))
                    continue
                deadlines = [w.last_beat + self.lease_seconds for w in active.values()]
                if self.cell_timeout is not None:
                    deadlines += [w.started + self.cell_timeout for w in active.values()]
                deadlines += [entry[2] for entry in queue if entry[2] > now]
                timeout = max(0.0, min(deadlines) - now)
                for conn in mp_connection.wait(list(active), timeout=timeout):
                    if self._handle_message(active[conn], queue, recorder, stats, sink):
                        del active[conn]
                now = time.perf_counter()
                for conn, worker in list(active.items()):
                    timed_out = (
                        self.cell_timeout is not None
                        and now - worker.started >= self.cell_timeout
                    )
                    lease_lost = now - worker.last_beat >= self.lease_seconds
                    if not (timed_out or lease_lost):
                        continue
                    del active[conn]
                    self._kill(worker)
                    kind = "timeout" if timed_out else "lease"
                    sink.emit(
                        "worker_exit",
                        pid=worker.proc.pid,
                        exitcode=worker.proc.exitcode,
                        kind=kind,
                    )
                    detail = (
                        f"cell exceeded {self.cell_timeout:g}s timeout"
                        if timed_out
                        else f"worker missed its heartbeat deadline "
                        f"({self.lease_seconds:g}s lease expired)"
                    )
                    self._supervise_retry(worker, kind, detail, queue, recorder, stats, sink)
        finally:
            for worker in active.values():  # abort path: leak no workers
                self._kill(worker)
