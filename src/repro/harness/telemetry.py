"""Structured telemetry for campaigns: counters, event sinks, aggregation.

The paper's experiments are (tool × program × trial) cells over up to 50
cores (Appendix A.2); at that scale a campaign without observability is a
black box — no per-cell cost, no throughput, no visibility into worker
failures.  This module provides the instrumentation layer the parallel
engine emits into:

* :class:`Counters` — cheap always-on integer counters incremented by the
  executor and the fuzzer (executions, steps, crashes, corpus admissions);
  the process-global :data:`GLOBAL_COUNTERS` instance lets a worker report
  exactly what one campaign cell cost.
* :class:`TelemetrySink` — the emit interface.  :class:`JsonlSink` appends
  one JSON object per line to a file (append-only, flushed per record, so a
  crashed campaign still leaves a readable log); :class:`TelemetryAggregator`
  keeps records in memory and computes throughput summaries;
  :class:`MultiSink` fans out to several sinks.
* :data:`EVENT_SCHEMA` / :func:`validate_record` — the golden schema every
  emitted record must satisfy, used by tests and by consumers that parse
  the JSONL stream.

Telemetry never influences results: sinks observe, they do not steer.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Iterable

try:  # pragma: no cover - fcntl is present on every POSIX CI target
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: no advisory locks
    fcntl = None  # type: ignore[assignment]

#: Bumped whenever a record type gains/loses required fields.
SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# Always-on counters (wired through runtime/executor.py and core/fuzzer.py)
# ----------------------------------------------------------------------
@dataclass
class Counters:
    """Monotonic per-process counters; integer increments only, so keeping
    them always-on costs nanoseconds per execution."""

    #: Completed executions (one per Executor.run()).
    executions: int = 0
    #: Total executed events across all executions.
    steps: int = 0
    #: Crashing executions observed by the fuzzer.
    crashes: int = 0
    #: Schedules admitted into a fuzzer corpus.
    corpus_adds: int = 0
    #: Findings emitted by online sanitizer stacks (one per report).
    sanitizer_reports: int = 0
    #: Executions killed by a guard watchdog (step budget or wall clock).
    timeouts: int = 0
    #: Executions killed by the guard's livelock detector.
    livelocks: int = 0
    #: Replay executions run by the reproduction verifier.
    replays: int = 0
    #: Bug buckets quarantined as FLAKY by replay verification.
    flaky_quarantined: int = 0
    #: Torn trailing JSONL lines skipped by tolerant readers.
    torn_lines: int = 0

    def snapshot(self) -> "Counters":
        return replace(self)

    def delta(self, since: "Counters") -> "Counters":
        """Counter increments accumulated after ``since`` was snapshotted."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


#: The process-wide counter instance.  Workers snapshot it around each cell
#: and ship the delta back with the result.
GLOBAL_COUNTERS = Counters()


# ----------------------------------------------------------------------
# Event schema
# ----------------------------------------------------------------------
#: Fields present on every record, added by the sink itself.
COMMON_FIELDS = frozenset({"event", "ts", "schema"})

#: record type -> required payload fields.  Extra fields are allowed (the
#: schema is a floor, not a ceiling); missing fields are an error.
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    "campaign_start": frozenset(
        {"tools", "programs", "trials", "total_cells", "resumed_cells", "processes"}
    ),
    "cell_start": frozenset({"tool", "program", "trial", "attempt"}),
    "cell_end": frozenset(
        {
            "tool",
            "program",
            "trial",
            "attempt",
            "wall_time",
            "executions",
            "schedules_per_sec",
            "found",
            "steps",
            "crashes",
            "corpus_adds",
        }
    ),
    "cell_retry": frozenset({"tool", "program", "trial", "attempt", "kind"}),
    "cell_error": frozenset({"tool", "program", "trial", "attempts", "kind", "detail"}),
    "worker_start": frozenset({"pid", "tool", "program", "trial"}),
    "worker_exit": frozenset({"pid", "exitcode", "kind"}),
    "pool_degraded": frozenset({"reason"}),
    "sanitizer_report": frozenset(
        {"tool", "program", "trial", "sanitizer", "kind", "location", "pair"}
    ),
    "checkpoint": frozenset({"path", "completed", "total"}),
    "campaign_end": frozenset(
        {"wall_time", "cells", "failed_cells", "retries", "executions", "schedules_per_sec"}
    ),
    # Generated-scenario pipeline (repro.harness.groundtruth).
    "gen_corpus": frozenset({"seed", "count", "config", "kinds"}),
    "gen_eval_end": frozenset(
        {"tools", "programs", "trials", "budget", "detected", "fn_rates"}
    ),
    # Adaptive budget allocation (repro.harness.allocator).
    "alloc_round": frozenset({"allocator", "round", "budget", "cells"}),
    "alloc_estimate": frozenset(
        {"allocator", "round", "tool", "program", "trial", "allocated", "estimate"}
    ),
    # Supervised campaign fabric (repro.harness.supervisor / .store).
    "heartbeat": frozenset({"pid", "tool", "program", "trial", "seq"}),
    "lease_reassign": frozenset({"tool", "program", "trial", "attempt", "kind", "delay"}),
    # Persistent batched worker pool (repro.harness.pool).
    "batch_dispatch": frozenset({"pid", "batch", "slices", "budget"}),
    "worker_recycle": frozenset({"pid", "exitcode", "kind", "unfinished"}),
    "store_compact": frozenset(
        {"path", "segments_before", "segments_after", "records_before", "records_after"}
    ),
}


def validate_record(record: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` satisfies the golden schema."""
    missing_common = COMMON_FIELDS - record.keys()
    if missing_common:
        raise ValueError(f"record missing common fields {sorted(missing_common)}: {record}")
    event = record["event"]
    if event not in EVENT_SCHEMA:
        raise ValueError(f"unknown telemetry event {event!r}; known: {sorted(EVENT_SCHEMA)}")
    missing = EVENT_SCHEMA[event] - record.keys()
    if missing:
        raise ValueError(f"{event!r} record missing fields {sorted(missing)}: {record}")
    if not isinstance(record["ts"], (int, float)):
        raise ValueError(f"record timestamp must be numeric: {record['ts']!r}")


def validate_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Validate every line of a telemetry JSONL file; returns the records."""
    records = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
        validate_record(record)
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TelemetrySink:
    """Base sink: ignores every record.  Subclasses override :meth:`emit`."""

    def emit(self, event: str, **fields: Any) -> None:  # noqa: ARG002 - interface
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SinkLockedError(RuntimeError):
    """Another process is writing the same telemetry path — two campaigns
    interleaving appends would tear each other's records."""


class JsonlSink(TelemetrySink):
    """Appends one JSON object per record; flushed per line so a killed
    campaign still leaves every completed record on disk.

    The sink holds an exclusive advisory ``flock`` on the file for its
    lifetime: a second campaign pointed at the same path fails fast with
    :class:`SinkLockedError` instead of silently interleaving records.
    Sequential reopen (close, then open again) is unaffected.
    """

    def __init__(self, path: str | Path, clock=time.time):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._handle = self.path.open("a", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self._handle.close()
                raise SinkLockedError(
                    f"{self.path}: another campaign is already writing this "
                    f"telemetry/checkpoint file; point each campaign at its own path"
                ) from None

    def emit(self, event: str, **fields: Any) -> None:
        record = {"event": event, "ts": self._clock(), "schema": SCHEMA_VERSION, **fields}
        validate_record(record)
        self._handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class TelemetryAggregator(TelemetrySink):
    """In-memory sink computing the throughput summary of a campaign."""

    def __init__(self, clock=time.time):
        self.records: list[dict[str, Any]] = []
        self._clock = clock

    def emit(self, event: str, **fields: Any) -> None:
        record = {"event": event, "ts": self._clock(), "schema": SCHEMA_VERSION, **fields}
        validate_record(record)
        self.records.append(record)

    # -- accessors ------------------------------------------------------
    def of_type(self, event: str) -> list[dict[str, Any]]:
        return [r for r in self.records if r["event"] == event]

    @property
    def completed_cells(self) -> int:
        return len(self.of_type("cell_end"))

    @property
    def failed_cells(self) -> int:
        return len(self.of_type("cell_error"))

    @property
    def retries(self) -> int:
        return len(self.of_type("cell_retry"))

    @property
    def worker_restarts(self) -> int:
        """Worker exits that were not clean completions."""
        return sum(1 for r in self.of_type("worker_exit") if r["kind"] != "ok")

    @property
    def heartbeats(self) -> int:
        """Heartbeat messages received from supervised workers."""
        return len(self.of_type("heartbeat"))

    @property
    def lease_reassignments(self) -> int:
        """Cells reassigned after a worker crash, hang, or lost lease."""
        return len(self.of_type("lease_reassign"))

    @property
    def batches_dispatched(self) -> int:
        """Batches handed to pool workers (pooled engine only)."""
        return len(self.of_type("batch_dispatch"))

    @property
    def worker_recycles(self) -> int:
        """Pool workers respawned after a crash, lost lease, or timeout."""
        return len(self.of_type("worker_recycle"))

    @property
    def total_executions(self) -> int:
        return sum(r["executions"] for r in self.of_type("cell_end"))

    @property
    def sanitizer_report_count(self) -> int:
        """Distinct sanitizer findings emitted across all cells."""
        return len(self.of_type("sanitizer_report"))

    def sanitizer_reports_by_name(self) -> dict[str, int]:
        """Finding counts per sanitizer (``race``/``lockset``/``lockorder``)."""
        counts: dict[str, int] = {}
        for record in self.of_type("sanitizer_report"):
            counts[record["sanitizer"]] = counts.get(record["sanitizer"], 0) + 1
        return counts

    @property
    def total_steps(self) -> int:
        return sum(r["steps"] for r in self.of_type("cell_end"))

    @property
    def total_wall_time(self) -> float:
        ends = self.of_type("campaign_end")
        if ends:
            return ends[-1]["wall_time"]
        return sum(r["wall_time"] for r in self.of_type("cell_end"))

    def cell_wall_times(self) -> dict[tuple[str, str, int], float]:
        """(tool, program, trial) -> wall seconds of the successful attempt."""
        return {
            (r["tool"], r["program"], r["trial"]): r["wall_time"] for r in self.of_type("cell_end")
        }

    def slowest_cells(self, count: int = 3) -> list[tuple[tuple[str, str, int], float]]:
        cells = sorted(self.cell_wall_times().items(), key=lambda kv: (-kv[1], kv[0]))
        return cells[:count]

    def schedules_per_sec(self) -> float:
        wall = self.total_wall_time
        return self.total_executions / wall if wall > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "cells": self.completed_cells,
            "failed_cells": self.failed_cells,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "executions": self.total_executions,
            "steps": self.total_steps,
            "wall_time": self.total_wall_time,
            "schedules_per_sec": self.schedules_per_sec(),
            "sanitizer_reports": self.sanitizer_report_count,
        }


class MultiSink(TelemetrySink):
    """Fans every record out to several sinks (e.g. JSONL + aggregator)."""

    def __init__(self, sinks: Iterable[TelemetrySink]):
        self.sinks = list(sinks)

    def emit(self, event: str, **fields: Any) -> None:
        for sink in self.sinks:
            sink.emit(event, **fields)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
