"""Hyperparameter sweeps for the fuzzer's knobs.

Section 4.2 introduces β (the γ normaliser) and M (the per-stage energy
cut-off) without a sensitivity study; this helper runs the grid so the
ablation bench can show how robust the headline results are to those
choices — a reviewer-grade robustness check.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.fuzzer import RffConfig, RffFuzzer
from repro.runtime.program import Program


@dataclass(frozen=True)
class SweepPoint:
    """Aggregate outcome for one configuration over several trials."""

    config: RffConfig
    label: str
    found: int
    trials: int
    mean_schedules: float | None
    mean_coverage: float

    @property
    def found_rate(self) -> float:
        return self.found / self.trials if self.trials else 0.0


def sweep_config(
    program: Program,
    configs: Iterable[tuple[str, RffConfig]],
    trials: int = 5,
    budget: int = 300,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Run each labelled config ``trials`` times; aggregate bug discovery
    and rf-pair coverage."""
    points = []
    for label, config in configs:
        hits: list[int] = []
        coverage = 0
        for trial in range(trials):
            fuzzer = RffFuzzer(program, seed=base_seed + 13 * trial, config=config)
            report = fuzzer.run(budget, stop_on_first_crash=True)
            if report.first_crash_at is not None:
                hits.append(report.first_crash_at)
            coverage += report.pair_coverage
        points.append(
            SweepPoint(
                config=config,
                label=label,
                found=len(hits),
                trials=trials,
                mean_schedules=(sum(hits) / len(hits)) if hits else None,
                mean_coverage=coverage / trials,
            )
        )
    return points


def beta_sweep(betas: Iterable[float] = (0.5, 1.0, 2.0, 4.0, 8.0)) -> list[tuple[str, RffConfig]]:
    """Configs varying the power schedule's β."""
    return [(f"beta={beta}", RffConfig(beta=beta)) for beta in betas]


def energy_sweep(caps: Iterable[int] = (4, 16, 64, 256)) -> list[tuple[str, RffConfig]]:
    """Configs varying the stage cut-off M."""
    return [(f"M={cap}", RffConfig(max_energy=cap)) for cap in caps]


def constraint_cap_sweep(caps: Iterable[int] = (1, 2, 4, 8, 16)) -> list[tuple[str, RffConfig]]:
    """Configs varying the abstract-schedule size cap."""
    return [(f"cap={cap}", RffConfig(max_constraints=cap)) for cap in caps]


def positive_bias_sweep(biases: Iterable[float] = (0.1, 0.3, 0.5, 0.7, 0.9)) -> list[tuple[str, RffConfig]]:
    """Configs varying the positive-constraint drawing bias."""
    return [(f"bias={bias}", RffConfig(positive_bias=bias)) for bias in biases]


def render_sweep(points: list[SweepPoint]) -> str:
    """Plain-text sweep table."""
    width = max(len(p.label) for p in points) + 2
    lines = [f"{'config'.ljust(width)}{'found':>8}{'mean-schedules':>16}{'rf-coverage':>13}"]
    for point in points:
        mean = f"{point.mean_schedules:.1f}" if point.mean_schedules is not None else "-"
        lines.append(
            f"{point.label.ljust(width)}{point.found}/{point.trials:>2}"
            f"{mean:>16}{point.mean_coverage:>13.1f}"
        )
    return "\n".join(lines)


def default_grid() -> list[tuple[str, RffConfig]]:
    """The full default grid used by the robustness bench."""
    grid: list[tuple[str, RffConfig]] = [("default", RffConfig())]
    grid += beta_sweep()
    grid += energy_sweep()
    grid += constraint_cap_sweep()
    grid += positive_bias_sweep()
    # De-duplicate configs equal to the default.
    seen: set[RffConfig] = set()
    unique = []
    for label, config in grid:
        if config in seen:
            continue
        seen.add(config)
        unique.append((label, config))
    return unique


def ablation_grid() -> list[tuple[str, RffConfig]]:
    """Component on/off matrix (the RQ2/RQ3 knobs plus combinations)."""
    base = RffConfig()
    return [
        ("full", base),
        ("no-feedback", replace(base, use_feedback=False)),
        ("no-power", replace(base, use_power_schedule=False)),
        ("no-constraints", replace(base, use_constraints=False)),
        ("mutation-only", replace(base, use_feedback=False, use_power_schedule=False)),
        ("pure-pos", replace(base, use_feedback=False, use_power_schedule=False, use_constraints=False)),
    ]
