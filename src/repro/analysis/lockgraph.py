"""Lock-order-graph deadlock prediction.

Builds the classic lock-acquisition graph from one trace: an edge
``m1 -> m2`` records that some thread acquired ``m2`` while holding ``m1``.
A cycle among edges contributed by *different threads* predicts a potential
ABBA deadlock — even when the observed schedule completed fine.  This is
the predictive companion to the runtime's built-in deadlock *detector*: the
detector needs the hang to happen; the predictor implicates it from a
passing run (paper Section 6, "Dynamic Analyses").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.trace import Trace


@dataclass(frozen=True)
class DeadlockPrediction:
    """One potential deadlock: a cycle in the lock-order graph."""

    cycle: tuple[str, ...]
    threads: frozenset[int]

    def __str__(self) -> str:
        ring = " -> ".join([*self.cycle, self.cycle[0]])
        who = ", ".join(f"T{tid}" for tid in sorted(self.threads))
        return f"potential deadlock: {ring} (threads {who})"


@dataclass
class LockGraphReport:
    predictions: list[DeadlockPrediction] = field(default_factory=list)
    #: (held, acquired) -> thread ids that created the edge.
    edges: dict[tuple[str, str], set[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.predictions)

    @property
    def has_potential_deadlock(self) -> bool:
        return bool(self.predictions)


def lock_order_on_event(
    event,
    held: dict[int, list[str]],
    edges: dict[tuple[str, str], set[int]],
) -> None:
    """One lock-order step: update held stacks and graph ``edges``.

    Shared verbatim by the offline :class:`LockGraphAnalyzer` and the online
    ``OnlineLockOrderSanitizer`` so the two agree by construction.  Events
    that are not lock operations (the vast majority of a data-heavy trace)
    return without touching ``held`` at all.
    """
    kind = event.kind
    if kind == "lock" or (kind == "trylock" and event.value):
        tid = event.tid
        location = event.location
        stack = held.get(tid)
        if stack is None:
            held[tid] = [location]
            return
        for outer in stack:
            threads = edges.get((outer, location))
            if threads is None:
                threads = edges[(outer, location)] = set()
            threads.add(tid)
        stack.append(location)
    elif kind == "unlock":
        stack = held.get(event.tid)
        if stack is not None and event.location in stack:
            stack.remove(event.location)
    elif kind == "wait":
        # Waiting releases the mutex named by the event's aux.
        stack = held.get(event.tid)
        if stack is not None and event.aux in stack:
            stack.remove(event.aux)


def cycle_predictions(edges: dict[tuple[str, str], set[int]]) -> list[DeadlockPrediction]:
    """Inter-thread cycles of the lock-order graph spanned by ``edges``."""
    if not edges:
        # No nested acquisitions anywhere in the trace: the graph has no
        # edges, hence no cycles — skip building a DiGraph per execution.
        return []
    graph = nx.DiGraph()
    for (outer, inner), threads in edges.items():
        graph.add_edge(outer, inner, threads=threads)
    predictions: list[DeadlockPrediction] = []
    for cycle in nx.simple_cycles(graph):
        if len(cycle) < 2:
            continue
        contributors: set[int] = set()
        for index, outer in enumerate(cycle):
            inner = cycle[(index + 1) % len(cycle)]
            contributors |= edges.get((outer, inner), set())
        # A cycle one thread creates alone (nested reacquisition in a
        # consistent order) is not a deadlock between threads.
        if len(contributors) >= 2:
            predictions.append(
                DeadlockPrediction(cycle=tuple(cycle), threads=frozenset(contributors))
            )
    return predictions


class LockGraphAnalyzer:
    """Builds the lock-order graph and reports inter-thread cycles."""

    def analyze(self, trace: Trace) -> LockGraphReport:
        """Build the lock-order graph of ``trace`` and report its cycles."""
        held: dict[int, list[str]] = {}
        report = LockGraphReport()
        for event in trace.events:
            lock_order_on_event(event, held, report.edges)
        report.predictions.extend(cycle_predictions(report.edges))
        return report


def predict_deadlocks(trace: Trace) -> LockGraphReport:
    """One-call API: lock-order cycle prediction over ``trace``."""
    return LockGraphAnalyzer().analyze(trace)
