"""Vector clocks: the happens-before backbone of the trace analyses."""

from __future__ import annotations


class VectorClock:
    """A sparse vector clock over thread ids.

    Immutable-by-convention: analysis code calls :meth:`copy` before
    mutating a clock it received from elsewhere.
    """

    __slots__ = ("_clocks",)

    def __init__(self, clocks: dict[int, int] | None = None):
        self._clocks: dict[int, int] = dict(clocks or {})

    def copy(self) -> "VectorClock":
        # Skips __init__ — clock copies happen per sync event on the online
        # sanitizer hot path.
        clone = VectorClock.__new__(VectorClock)
        clone._clocks = self._clocks.copy()
        return clone

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def tick(self, tid: int) -> None:
        """Advance one thread's component (a new event on that thread)."""
        clocks = self._clocks
        clocks[tid] = clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum: acquire/join semantics."""
        mine = self._clocks
        get = mine.get
        for tid, clock in other._clocks.items():
            if clock > get(tid, 0):
                mine[tid] = clock

    def leq(self, other: "VectorClock") -> bool:
        """``self <= other`` pointwise: self happens-before-or-equals other."""
        return all(clock <= other._clocks.get(tid, 0) for tid, clock in self._clocks.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self._clocks) | set(other._clocks)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self):  # pragma: no cover - clocks are not hashed
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"T{tid}:{clock}" for tid, clock in sorted(self._clocks.items()))
        return f"VC({body})"


def concurrent(a: VectorClock, b: VectorClock) -> bool:
    """Neither clock is ordered before the other."""
    return not a.leq(b) and not b.leq(a)
