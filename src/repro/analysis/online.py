"""Online sanitizers: streaming analyses driven by the executor.

The offline detectors in :mod:`repro.analysis` re-scan a fully recorded
trace after the fact.  Campaigns instead attach a *sanitizer stack* to the
executor: each sanitizer receives every visible event as it is recorded
(plus thread start/exit hooks) and turns the execution into a bug oracle
with no post-hoc pass — the way Fray integrates dynamic analyses into a
general-purpose concurrency-testing platform (paper Section 6).

Three sanitizers ship in the registry:

* ``race`` — :class:`OnlineRaceSanitizer`, a FastTrack happens-before race
  detector with the *epoch* optimization (Flanagan & Freund, PLDI 2009):
  per-location read/write metadata stores a single ``(event, scalar epoch)``
  instead of a full vector-clock copy.  Because an access always ticks its
  own thread's component first, ``write_clock.leq(current)`` collapses to
  the O(1) comparison ``current.get(write.tid) >= write_epoch`` — exactly,
  not approximately — so the online detector agrees bit-for-bit with the
  offline :class:`~repro.analysis.hb.HbRaceDetector`.
* ``lockset`` — :class:`OnlineLocksetSanitizer`, the Eraser state machine,
  sharing :func:`~repro.analysis.lockset.eraser_on_event` with the offline
  analyzer so the two agree by construction.
* ``lockorder`` — :class:`OnlineLockOrderSanitizer`, lock-order-graph ABBA
  deadlock prediction, sharing the offline edge/cycle helpers (the cycle
  search imports :mod:`networkx` lazily, keeping the fuzzer import chain
  light).

Every finding is normalised into a :class:`SanitizerReport` whose
``dedup_key`` (sanitizer, kind, abstract-event pair) identifies the bug
independently of event ids, so campaigns count each distinct finding once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.hb import (
    ACQUIRE_KINDS,
    DATA_PREFIXES,
    PLAIN_READS,
    PLAIN_WRITES,
    SYNC_KINDS,
    Race,
    RaceReport,
)
from repro.analysis.lockset import (
    LocksetReport,
    _Shadow,
    eraser_finish,
    eraser_on_event,
)
from repro.analysis.vector_clock import VectorClock
from repro.core.events import Event


@dataclass(frozen=True)
class SanitizerReport:
    """One normalised sanitizer finding.

    ``pair`` holds the *abstract* identity of the finding (for races: the
    two abstract events; for lockset: the location; for lockorder: the
    canonicalised cycle), so :attr:`dedup_key` is stable across executions
    and across serial/parallel runs.  ``eids`` point back into the concrete
    trace of the execution that produced the report.
    """

    sanitizer: str
    kind: str
    location: str
    pair: tuple[str, str]
    message: str
    eids: tuple[int, ...] = ()

    @property
    def dedup_key(self) -> tuple[str, str, str, str]:
        """Execution-independent identity of the finding."""
        return (self.sanitizer, self.kind, self.pair[0], self.pair[1])

    def __str__(self) -> str:
        return f"[{self.sanitizer}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "sanitizer": self.sanitizer,
            "kind": self.kind,
            "location": self.location,
            "pair": list(self.pair),
            "message": self.message,
            "eids": list(self.eids),
        }

    @staticmethod
    def from_dict(payload: dict) -> "SanitizerReport":
        return SanitizerReport(
            sanitizer=payload["sanitizer"],
            kind=payload["kind"],
            location=payload["location"],
            pair=tuple(payload["pair"]),
            message=payload["message"],
            eids=tuple(payload.get("eids", ())),
        )


class Sanitizer:
    """Base class / protocol for streaming sanitizers.

    The executor calls :meth:`on_thread_start` when a thread is created
    (``parent_tid is None`` for the main thread), :meth:`on_event` for every
    recorded visible event (in trace order), :meth:`on_thread_exit` when a
    thread's generator finishes, and :meth:`finish` once after the run —
    crashed, deadlocked or truncated alike — to collect the findings.
    A sanitizer instance belongs to one execution; build a fresh stack per
    run (see :func:`build_stack`).
    """

    name = "noop"

    def on_thread_start(self, tid: int, parent_tid: int | None) -> None:
        """A thread was created (before its first event)."""

    def on_event(self, event: Event) -> None:
        """One visible event was recorded."""

    def on_thread_exit(self, tid: int) -> None:
        """A thread's generator finished normally."""

    def finish(self) -> list[SanitizerReport]:
        """End of execution: return the (deterministic) findings."""
        return []


#: Flat per-kind dispatch for the race sanitizer: one dict lookup replaces
#: the original chain of equality / set-membership tests.  Built from the
#: same hb.py kind sets, with the same precedence as the original chain
#: (spawn/join/signal/broadcast are checked before generic sync kinds).
_READ, _WRITE, _SYNC_ACQ_REL, _SYNC_REL, _WAKE, _SPAWN, _JOIN = range(1, 8)
_KIND_ACTIONS: dict[str, int] = {}
for _kind in PLAIN_READS:
    _KIND_ACTIONS[_kind] = _READ
for _kind in PLAIN_WRITES:
    _KIND_ACTIONS[_kind] = _WRITE
for _kind in SYNC_KINDS:
    _KIND_ACTIONS[_kind] = _SYNC_ACQ_REL if _kind in ACQUIRE_KINDS else _SYNC_REL
_KIND_ACTIONS["signal"] = _WAKE
_KIND_ACTIONS["broadcast"] = _WAKE
_KIND_ACTIONS["spawn"] = _SPAWN
_KIND_ACTIONS["join"] = _JOIN
del _kind


class OnlineRaceSanitizer(Sanitizer):
    """Epoch-optimized FastTrack happens-before race detection, online.

    Thread clocks and sync-object release clocks stay full (sparse) vector
    clocks; only the hot per-location access metadata is epoch-compressed.
    Mirrors :meth:`HbRaceDetector._handle` event-for-event so the resulting
    :attr:`report` equals the offline ``find_races`` output exactly.
    """

    name = "race"

    def __init__(self) -> None:
        self._thread_clocks: dict[int, VectorClock] = {}
        self._release_clocks: dict[str, VectorClock] = {}
        #: location -> (write event, write epoch) since which ``_reads`` accrue.
        self._writes: dict[str, tuple[Event, int]] = {}
        #: location -> {reader tid: (read event, read epoch)}.
        self._reads: dict[str, dict[int, tuple[Event, int]]] = {}
        #: The offline-equivalent report, maintained incrementally.
        self.report = RaceReport()

    def _clock(self, tid: int) -> VectorClock:
        clock = self._thread_clocks.get(tid)
        if clock is None:
            clock = self._thread_clocks[tid] = VectorClock()
        return clock

    def on_event(self, event: Event) -> None:
        # Flattened single-lookup dispatch (one dict get on the kind instead
        # of a chain of set-membership tests), with the vector-clock tick
        # and all epoch comparisons inlined on the plain read/write paths —
        # every branch mirrors HbRaceDetector._handle decision-for-decision.
        tid = event.tid
        thread_clocks = self._thread_clocks
        clock = thread_clocks.get(tid)
        if clock is None:
            clock = thread_clocks[tid] = VectorClock()
        cl = clock._clocks
        epoch = cl.get(tid, 0) + 1
        cl[tid] = epoch
        action = _KIND_ACTIONS.get(event.kind)
        if action is None:
            return
        if action == _READ:
            location = event.location
            if not location.startswith(DATA_PREFIXES):
                return
            last_write = self._writes.get(location)
            if last_write is not None:
                write, write_epoch = last_write
                # Epoch check: write_clock.leq(clock) iff the reader's view
                # of the writer thread has reached the write's own tick.
                write_tid = write.tid
                if write_tid != tid and cl.get(write_tid, 0) < write_epoch:
                    self.report.races.append(Race(location, write, event))
            reads = self._reads.get(location)
            if reads is None:
                reads = self._reads[location] = {}
            reads[tid] = (event, epoch)
            return
        if action == _WRITE:
            location = event.location
            if not location.startswith(DATA_PREFIXES):
                return
            races = self.report.races
            last_write = self._writes.get(location)
            if last_write is not None:
                write, write_epoch = last_write
                write_tid = write.tid
                if write_tid != tid and cl.get(write_tid, 0) < write_epoch:
                    races.append(Race(location, write, event))
            reads = self._reads.get(location)
            if reads:
                for reader_tid, (read, read_epoch) in reads.items():
                    if reader_tid != tid and cl.get(reader_tid, 0) < read_epoch:
                        races.append(Race(location, read, event))
                reads.clear()
            self._writes[location] = (event, epoch)
            return
        if action == _SYNC_ACQ_REL or action == _SYNC_REL:
            location = event.location
            if action == _SYNC_ACQ_REL:
                released = self._release_clocks.get(location)
                if released is not None:
                    clock.join(released)
            self._release_clocks[location] = clock.copy()
            return
        if action == _WAKE:
            self._release_clocks[event.location] = clock.copy()
            for woken in event.aux or ():
                # The signaller's history happens-before the wakeup.
                self._clock(woken).join(clock)
            return
        if action == _SPAWN:
            if isinstance(event.aux, int):
                thread_clocks[event.aux] = clock.copy()
            return
        # _JOIN
        if isinstance(event.aux, int):
            target = thread_clocks.get(event.aux)
            if target is not None:
                clock.join(target)

    def finish(self) -> list[SanitizerReport]:
        reports: list[SanitizerReport] = []
        seen: set[tuple] = set()
        for race in self.report.races:
            # The abstract pair determines the dedup_key (race.kind derives
            # from the events' kinds, the pair strings from their abstracts),
            # so deduplicate *before* paying for the report's strings.
            key = (race.first.abstract, race.second.abstract)
            if key in seen:
                continue
            seen.add(key)
            reports.append(
                SanitizerReport(
                    sanitizer=self.name,
                    kind=race.kind,
                    location=race.location,
                    pair=(str(race.first.abstract), str(race.second.abstract)),
                    message=str(race),
                    eids=(race.first.eid, race.second.eid),
                )
            )
        return reports


class OnlineLocksetSanitizer(Sanitizer):
    """Eraser lock-discipline analysis, online.

    Runs :func:`~repro.analysis.lockset.eraser_on_event` per event — the
    exact function the offline analyzer loops over — so :attr:`report`
    matches ``check_lock_discipline`` by construction.
    """

    name = "lockset"

    def __init__(self) -> None:
        self._held: dict[int, set[str]] = {}
        self._shadows: dict[str, _Shadow] = {}
        self._joined: dict[int, set[int]] = {}
        #: The offline-equivalent report, maintained incrementally.
        self.report = LocksetReport()
        self._finished = False

    def on_event(self, event: Event) -> None:
        eraser_on_event(event, self._held, self._shadows, self._joined, self.report)

    def finish(self) -> list[SanitizerReport]:
        if not self._finished:
            self._finished = True
            eraser_finish(self._shadows, self.report)
        return [
            SanitizerReport(
                sanitizer=self.name,
                kind="lock-discipline",
                location=violation.location,
                pair=(violation.location, ""),
                message=str(violation),
                eids=(violation.at_event,),
            )
            for violation in self.report.violations
        ]


class OnlineLockOrderSanitizer(Sanitizer):
    """Lock-order-graph ABBA deadlock prediction, online.

    Accumulates graph edges per event via the shared
    :func:`~repro.analysis.lockgraph.lock_order_on_event`; the cycle search
    (and its :mod:`networkx` dependency) only runs — and is only imported —
    in :meth:`finish`.
    """

    name = "lockorder"

    def __init__(self) -> None:
        # Deferred import (lockgraph pulls in networkx at module top); bound
        # once per instance so on_event pays a plain attribute load, not an
        # import-machinery round trip per event.
        from repro.analysis.lockgraph import lock_order_on_event

        self._held: dict[int, list[str]] = {}
        self._edges: dict[tuple[str, str], set[int]] = {}
        self._on_event = lock_order_on_event
        #: The offline-equivalent report, populated by :meth:`finish`.
        self.report = None

    def on_event(self, event: Event) -> None:
        self._on_event(event, self._held, self._edges)

    def finish(self) -> list[SanitizerReport]:
        from repro.analysis.lockgraph import LockGraphReport, cycle_predictions

        report = LockGraphReport(edges=self._edges)
        report.predictions.extend(cycle_predictions(self._edges))
        self.report = report
        findings: list[SanitizerReport] = []
        for prediction in report.predictions:
            cycle = _canonical_cycle(prediction.cycle)
            findings.append(
                SanitizerReport(
                    sanitizer=self.name,
                    kind="lock-order-cycle",
                    location=cycle[0],
                    pair=(" -> ".join(cycle), ""),
                    message=str(prediction),
                )
            )
        # simple_cycles order is graph-construction-dependent; sort for a
        # deterministic, serial==parallel report sequence.
        findings.sort(key=lambda r: r.pair)
        return findings


def _canonical_cycle(cycle: tuple[str, ...]) -> tuple[str, ...]:
    """Rotate a cycle so it starts at its minimal element."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


#: Registry of built-in sanitizers, in canonical stack order.
SANITIZERS: dict[str, type[Sanitizer]] = {
    "race": OnlineRaceSanitizer,
    "lockset": OnlineLocksetSanitizer,
    "lockorder": OnlineLockOrderSanitizer,
}


def parse_sanitizers(spec: str) -> tuple[str, ...]:
    """Parse a ``--sanitize`` value into canonical sanitizer names.

    Accepts a comma-separated subset of the registry (``"race,lockset"``),
    the alias ``"all"``, or ``""``/``"none"`` for no sanitizers.  Names are
    deduplicated and returned in registry order.
    """
    spec = spec.strip()
    if not spec or spec == "none":
        return ()
    if spec == "all":
        return tuple(SANITIZERS)
    requested = {name.strip() for name in spec.split(",") if name.strip()}
    unknown = requested - set(SANITIZERS)
    if unknown:
        known = ", ".join(SANITIZERS)
        raise ValueError(f"unknown sanitizer(s) {sorted(unknown)}; known: {known}, all, none")
    return tuple(name for name in SANITIZERS if name in requested)


def build_stack(names: tuple[str, ...] | list[str]) -> list[Sanitizer]:
    """Instantiate a fresh sanitizer stack (one instance per execution)."""
    stack: list[Sanitizer] = []
    for name in names:
        try:
            stack.append(SANITIZERS[name]())
        except KeyError:
            known = ", ".join(SANITIZERS)
            raise ValueError(f"unknown sanitizer {name!r}; known: {known}") from None
    return stack
