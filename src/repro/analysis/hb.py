"""Happens-before data-race detection over recorded traces.

A FastTrack-style single-pass detector (Flanagan & Freund, PLDI 2009,
simplified): it maintains one vector clock per thread, release clocks per
synchronization object, and per data location the last write plus the reads
since that write.  Two *plain* accesses to the same location race when they
are unordered by happens-before and at least one is a write.

Happens-before edges modelled (matching the runtime's SC semantics):

* program order within each thread;
* spawn (parent -> child's first event) and join (child's last -> parent);
* mutex unlock -> later lock of the same mutex (``rmw``-like sync events on
  mutex / semaphore / barrier / condvar locations act as acquire+release);
* signal/broadcast -> the woken threads (via the event's ``aux`` metadata);
* atomic ``rmw`` / ``cas`` on data locations act as acquire+release *and*
  are exempt from racing (the C11 atomics convention).

This is the ThreadSanitizer-style companion analysis the paper positions
itself against in Section 6 ("Dynamic Analyses"): it reports races on the
*observed* interleaving, complementing RFF's interleaving search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.vector_clock import VectorClock
from repro.core.events import Event
from repro.core.trace import Trace

#: Location prefixes holding plain data (race candidates).
DATA_PREFIXES = ("var:", "heap:")
#: Event kinds that are plain (non-atomic) data accesses.
PLAIN_READS = frozenset({"r", "hr"})
PLAIN_WRITES = frozenset({"w", "hw"})
#: Event kinds acting as acquire+release synchronization on their location.
SYNC_KINDS = frozenset(
    {"lock", "trylock", "unlock", "wait", "signal", "broadcast", "sem_acquire", "trysem", "sem_release", "barrier", "rmw", "cas"}
)
#: The subset of SYNC_KINDS that acquire (join the location's release clock)
#: before releasing; the rest are release-only (unlock, signal, sem_release).
ACQUIRE_KINDS = frozenset({"lock", "trylock", "wait", "sem_acquire", "trysem", "barrier", "rmw", "cas"})

# Backwards-compatible private aliases (pre-online-sanitizer names).
_DATA_PREFIXES = DATA_PREFIXES
_PLAIN_READS = PLAIN_READS
_PLAIN_WRITES = PLAIN_WRITES
_SYNC_KINDS = SYNC_KINDS


@dataclass(frozen=True)
class Race:
    """One happens-before race: two unordered conflicting accesses."""

    location: str
    first: Event
    second: Event

    @property
    def kind(self) -> str:
        a_writes = self.first.kind in _PLAIN_WRITES
        b_writes = self.second.kind in _PLAIN_WRITES
        if a_writes and b_writes:
            return "write-write"
        return "read-write" if not a_writes else "write-read"

    def __str__(self) -> str:
        return f"{self.kind} race on {self.location}: {self.first} || {self.second}"


@dataclass
class RaceReport:
    """All races found in one trace."""

    races: list[Race] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.races)

    def __iter__(self):
        return iter(self.races)

    @property
    def racy_locations(self) -> set[str]:
        return {race.location for race in self.races}

    def distinct(self) -> set[tuple[str, str, str]]:
        """Races deduplicated by (location, first loc label, second loc)."""
        return {(r.location, r.first.loc, r.second.loc) for r in self.races}


@dataclass
class _LocationState:
    """Per-data-location access history since the last write."""

    last_write: tuple[Event, VectorClock] | None = None
    reads: dict[int, tuple[Event, VectorClock]] = field(default_factory=dict)


class HbRaceDetector:
    """Single-pass happens-before race detection over a trace."""

    def __init__(self) -> None:
        self._thread_clocks: dict[int, VectorClock] = {}
        self._release_clocks: dict[str, VectorClock] = {}
        self._final_clocks: dict[int, VectorClock] = {}
        self._locations: dict[str, _LocationState] = {}
        self._report = RaceReport()

    # -- clock plumbing --------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        if tid not in self._thread_clocks:
            self._thread_clocks[tid] = VectorClock()
        return self._thread_clocks[tid]

    def _acquire(self, tid: int, location: str) -> None:
        released = self._release_clocks.get(location)
        if released is not None:
            self._clock(tid).join(released)

    def _release(self, tid: int, location: str) -> None:
        self._release_clocks[location] = self._clock(tid).copy()

    # -- the pass ----------------------------------------------------------
    def analyze(self, trace: Trace) -> RaceReport:
        """Single pass over ``trace``; returns every detected HB race."""
        last_event_tid: dict[int, Event] = {}
        for event in trace.events:
            clock = self._clock(event.tid)
            clock.tick(event.tid)
            self._handle(event)
            last_event_tid[event.tid] = event
        return self._report

    def _handle(self, event: Event) -> None:
        tid = event.tid
        if event.kind == "spawn" and isinstance(event.aux, int):
            child = event.aux
            self._thread_clocks[child] = self._clock(tid).copy()
            return
        if event.kind == "join" and isinstance(event.aux, int):
            target_clock = self._thread_clocks.get(event.aux)
            if target_clock is not None:
                self._clock(tid).join(target_clock)
            return
        if event.kind in ("signal", "broadcast"):
            self._release(tid, event.location)
            for woken in event.aux or ():
                # The signaller's history happens-before the wakeup.
                self._clock(woken).join(self._clock(tid))
            return
        if event.kind in _SYNC_KINDS:
            # Acquire-release synchronization on the event's location.
            if event.kind in ACQUIRE_KINDS:
                self._acquire(tid, event.location)
            self._release(tid, event.location)
            return
        if event.location.startswith(_DATA_PREFIXES):
            if event.kind in _PLAIN_READS:
                self._on_read(event)
            elif event.kind in _PLAIN_WRITES:
                self._on_write(event)

    def _state(self, location: str) -> _LocationState:
        if location not in self._locations:
            self._locations[location] = _LocationState()
        return self._locations[location]

    def _on_read(self, event: Event) -> None:
        state = self._state(event.location)
        clock = self._clock(event.tid)
        if state.last_write is not None:
            write, write_clock = state.last_write
            if write.tid != event.tid and not write_clock.leq(clock):
                self._report.races.append(Race(event.location, write, event))
        state.reads[event.tid] = (event, clock.copy())

    def _on_write(self, event: Event) -> None:
        state = self._state(event.location)
        clock = self._clock(event.tid)
        if state.last_write is not None:
            write, write_clock = state.last_write
            if write.tid != event.tid and not write_clock.leq(clock):
                self._report.races.append(Race(event.location, write, event))
        for reader_tid, (read, read_clock) in state.reads.items():
            if reader_tid != event.tid and not read_clock.leq(clock):
                self._report.races.append(Race(event.location, read, event))
        state.last_write = (event, clock.copy())
        state.reads.clear()


def find_races(trace: Trace) -> RaceReport:
    """One-call API: all happens-before races in ``trace``."""
    return HbRaceDetector().analyze(trace)
