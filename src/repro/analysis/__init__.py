"""Dynamic trace analyses: the companions of Section 6 ("Dynamic Analyses").

These run over recorded :class:`~repro.core.trace.Trace` objects — e.g. the
traces RFF's executions produce — and implicate concurrency defects beyond
the crash oracle: happens-before data races (:func:`find_races`), lock
discipline violations (:func:`check_lock_discipline`) and predicted ABBA
deadlocks (:func:`predict_deadlocks`).
"""

from repro.analysis.directed import DirectedResult, confirm_races, predict_races
from repro.analysis.hb import HbRaceDetector, Race, RaceReport, find_races
from repro.analysis.lockgraph import (
    DeadlockPrediction,
    LockGraphAnalyzer,
    LockGraphReport,
    predict_deadlocks,
)
from repro.analysis.lockset import (
    LockDisciplineViolation,
    LocksetAnalyzer,
    LocksetReport,
    check_lock_discipline,
)
from repro.analysis.online import (
    SANITIZERS,
    OnlineLockOrderSanitizer,
    OnlineLocksetSanitizer,
    OnlineRaceSanitizer,
    Sanitizer,
    SanitizerReport,
    build_stack,
    parse_sanitizers,
)
from repro.analysis.vector_clock import VectorClock, concurrent

__all__ = [
    "DeadlockPrediction",
    "DirectedResult",
    "HbRaceDetector",
    "LockDisciplineViolation",
    "LockGraphAnalyzer",
    "LockGraphReport",
    "LocksetAnalyzer",
    "LocksetReport",
    "OnlineLockOrderSanitizer",
    "OnlineLocksetSanitizer",
    "OnlineRaceSanitizer",
    "Race",
    "RaceReport",
    "SANITIZERS",
    "Sanitizer",
    "SanitizerReport",
    "VectorClock",
    "build_stack",
    "check_lock_discipline",
    "concurrent",
    "confirm_races",
    "find_races",
    "parse_sanitizers",
    "predict_deadlocks",
    "predict_races",
]
