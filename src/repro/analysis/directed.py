"""Race-directed schedule confirmation: predictive analysis driving RFF.

The paper's related-work section closes with: *"we believe predictive
testing can be used in conjunction with other concurrency techniques such
as RFF to achieve faster convergence"* (Section 6, Dynamic Analyses).  This
module is that integration:

1. sample a handful of schedules and run the happens-before race detector
   over their (typically passing) traces;
2. for every distinct predicted race involving a read, synthesise the two
   abstract schedules that force the racy pair one way and the other
   (``w --rf-> r`` and ``w -/rf/-> r``);
3. hand each to the proactive scheduler and see whether any ordering
   actually crashes the program — converting a *prediction* into a
   *witnessed* bug with a replayable schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.hb import Race, find_races
from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.proactive import RffSchedulerPolicy
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.program import Program
from repro.schedulers.pos import PosPolicy


@dataclass(frozen=True)
class DirectedResult:
    """Outcome of confirming one predicted race."""

    location: str
    first_loc: str
    second_loc: str
    schedules_tried: int
    confirmed: bool
    crash_outcome: str | None = None
    crashing_schedule: AbstractSchedule | None = None
    crashing_concrete: tuple[int, ...] = ()


def _candidate_schedules(race: Race) -> list[AbstractSchedule]:
    """Both orderings of the racy pair, as abstract schedules."""
    first, second = race.first.abstract, race.second.abstract
    reads = [e for e in (first, second) if e.is_read and not e.is_write]
    writes = [e for e in (first, second) if e.is_write]
    candidates: list[AbstractSchedule] = []
    for read in reads:
        for write in writes:
            if write.location != read.location:
                continue
            candidates.append(AbstractSchedule.of(Constraint(read, write, positive=True)))
            candidates.append(AbstractSchedule.of(Constraint(read, write, positive=False)))
            # Also try forcing the read back to the initial value: for
            # check-then-act bugs the stale-read side is the dangerous one.
            candidates.append(AbstractSchedule.of(Constraint(read, None, positive=True)))
    if not candidates:
        # Write-write race: no read to constrain directly — probe around it
        # with unconstrained proactive (= POS) schedules.
        candidates.append(AbstractSchedule.empty())
    return candidates


def _dedupe(schedules: list[AbstractSchedule]) -> list[AbstractSchedule]:
    seen: set[frozenset] = set()
    out = []
    for schedule in schedules:
        if schedule.constraints not in seen:
            seen.add(schedule.constraints)
            out.append(schedule)
    return out


def predict_races(program: Program, executions: int = 10, seed: int = 0) -> list[Race]:
    """Phase 1: sample schedules and collect distinct predicted races."""
    max_steps = program.max_steps or DEFAULT_MAX_STEPS
    distinct: dict[tuple[str, str, str], Race] = {}
    for index in range(executions):
        result = Executor(program, PosPolicy(seed + 101 * index), max_steps=max_steps).run()
        for race in find_races(result.trace):
            key = (race.location, race.first.loc, race.second.loc)
            distinct.setdefault(key, race)
    return list(distinct.values())


def confirm_races(
    program: Program,
    executions: int = 10,
    probes_per_schedule: int = 4,
    seed: int = 0,
) -> list[DirectedResult]:
    """Predict races, then try to convert each prediction into a crash."""
    max_steps = program.max_steps or DEFAULT_MAX_STEPS
    results: list[DirectedResult] = []
    for race in predict_races(program, executions=executions, seed=seed):
        tried = 0
        confirmed = None
        for schedule in _dedupe(_candidate_schedules(race)):
            for probe in range(probes_per_schedule):
                policy = RffSchedulerPolicy(schedule, seed=seed + 977 * tried + probe)
                outcome = Executor(program, policy, max_steps=max_steps).run()
                tried += 1
                if outcome.crashed:
                    confirmed = (outcome, schedule)
                    break
            if confirmed:
                break
        if confirmed:
            outcome, schedule = confirmed
            results.append(
                DirectedResult(
                    location=race.location,
                    first_loc=race.first.loc,
                    second_loc=race.second.loc,
                    schedules_tried=tried,
                    confirmed=True,
                    crash_outcome=outcome.outcome,
                    crashing_schedule=schedule,
                    crashing_concrete=tuple(outcome.schedule),
                )
            )
        else:
            results.append(
                DirectedResult(
                    location=race.location,
                    first_loc=race.first.loc,
                    second_loc=race.second.loc,
                    schedules_tried=tried,
                    confirmed=False,
                )
            )
    return results
