"""Eraser-style lockset analysis (Savage et al., TOCS 1997).

Complementary to happens-before detection: instead of ordering, it checks
*lock discipline* — every shared, written location should be consistently
protected by at least one common mutex.  The analysis runs the original
Eraser state machine per location:

``virgin -> exclusive -> shared -> shared-modified``

* ``exclusive``: only one thread has touched the location; no refinement
  (initialisation is exempt from the discipline).
* ``shared``: a second thread *read* it; the candidate lockset is refined
  but violations are not reported (read-only sharing after initialisation
  is benign — e.g. a main thread reading results after joins).
* ``shared-modified``: a second thread *wrote* it; an empty candidate
  lockset here is reported once.

Lockset analysis is schedule-insensitive, so it implicates discipline
violations (like the ``wronglock`` family) even on interleavings where
nothing went wrong.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.hb import DATA_PREFIXES as _DATA_PREFIXES
from repro.analysis.hb import PLAIN_READS as _READ_KINDS
from repro.analysis.hb import PLAIN_WRITES as _WRITE_KINDS
from repro.core.trace import Trace


class LocationState(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass(frozen=True)
class LockDisciplineViolation:
    """A written-shared location with no consistently held lock."""

    location: str
    #: Event id of the access that emptied the candidate lockset.
    at_event: int
    threads: frozenset[int]

    def __str__(self) -> str:
        who = ", ".join(f"T{tid}" for tid in sorted(self.threads))
        return f"{self.location}: no consistent lock (threads {who}, event #{self.at_event})"


@dataclass
class LocksetReport:
    violations: list[LockDisciplineViolation] = field(default_factory=list)
    #: Final candidate lockset per location that left the exclusive state.
    candidate_locksets: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Final Eraser state per analysed location.
    states: dict[str, LocationState] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.violations)

    @property
    def flagged_locations(self) -> set[str]:
        return {v.location for v in self.violations}


@dataclass
class _Shadow:
    state: LocationState = LocationState.VIRGIN
    first_thread: int | None = None
    candidates: set[str] | None = None
    accessors: set[int] = field(default_factory=set)
    reported: bool = False


#: Kinds the Eraser state machine treats as data accesses.
_DATA_KINDS = frozenset(_READ_KINDS) | frozenset(_WRITE_KINDS)


def eraser_on_event(
    event,
    held: dict[int, set[str]],
    shadows: dict[str, _Shadow],
    joined: dict[int, set[int]],
    report: LocksetReport,
) -> None:
    """One Eraser step: update ``held``/``shadows``/``joined`` for ``event``.

    Shared verbatim by the offline :class:`LocksetAnalyzer` and the online
    ``OnlineLocksetSanitizer`` so the two agree by construction.  Event
    kinds are mutually exclusive, so the branches below test the common
    data-access case first and only materialise per-thread / per-location
    state on the paths that actually read or mutate it.
    """
    tid = event.tid
    kind = event.kind
    if kind in _DATA_KINDS:
        location = event.location
        if not location.startswith(_DATA_PREFIXES):
            return
        holder = held.get(tid)
        if holder is None:
            holder = held[tid] = set()
        shadow = shadows.get(location)
        if shadow is None:
            shadow = shadows[location] = _Shadow()
        # Join-awareness (the classic Eraser false-positive fix): when
        # every other thread that ever touched the location has been
        # joined by the current thread, ownership has transferred — the
        # location re-enters the exclusive regime.
        jmine = joined.get(tid)
        if jmine:
            others = shadow.accessors - {tid}
            if others and others <= jmine:
                shadow.state = LocationState.EXCLUSIVE
                shadow.first_thread = tid
                shadow.accessors = {tid}
        shadow.accessors.add(tid)
        _step(shadow, event, holder, report, kind in _WRITE_KINDS)
        return
    if kind == "lock" or (kind == "trylock" and event.value):
        holder = held.get(tid)
        if holder is None:
            holder = held[tid] = set()
        holder.add(event.location)
        return
    if kind == "unlock":
        holder = held.get(tid)
        if holder is not None:
            holder.discard(event.location)
        return
    if kind == "wait":
        # Waiting releases the mutex (named by the event's aux);
        # the later re-acquire shows up as a separate lock event.
        holder = held.get(tid)
        if holder is not None:
            holder.discard(event.aux)
        return
    if kind == "join" and isinstance(event.aux, int):
        mine = joined.get(tid)
        if mine is None:
            mine = joined[tid] = set()
        mine.add(event.aux)
        theirs = joined.get(event.aux)
        if theirs:
            mine |= theirs


def eraser_finish(shadows: dict[str, _Shadow], report: LocksetReport) -> None:
    """Fill the report's final per-location states and candidate locksets."""
    for location, shadow in shadows.items():
        report.states[location] = shadow.state
        if shadow.candidates is not None:
            report.candidate_locksets[location] = frozenset(shadow.candidates)


def _step(shadow: _Shadow, event, holder: set[str], report: LocksetReport, is_write: bool) -> None:
    if shadow.state is LocationState.VIRGIN:
        shadow.state = LocationState.EXCLUSIVE
        shadow.first_thread = event.tid
        # The candidate set starts from the first access's held locks;
        # it is frozen while the location stays exclusive and refined
        # again once a second thread arrives.  (Starting from the first
        # accessor — not the second — is what catches wronglock-style
        # inconsistent-lock bugs even without overlapping accesses.)
        shadow.candidates = set(holder)
        return
    if shadow.state is LocationState.EXCLUSIVE:
        if event.tid == shadow.first_thread:
            return
        assert shadow.candidates is not None
        shadow.candidates &= holder
        shadow.state = LocationState.SHARED_MODIFIED if is_write else LocationState.SHARED
    else:
        assert shadow.candidates is not None
        shadow.candidates &= holder
        if is_write:
            shadow.state = LocationState.SHARED_MODIFIED
    if (
        shadow.state is LocationState.SHARED_MODIFIED
        and not shadow.candidates
        and not shadow.reported
    ):
        shadow.reported = True
        report.violations.append(
            LockDisciplineViolation(
                location=event.location,
                at_event=event.eid,
                threads=frozenset(shadow.accessors),
            )
        )


class LocksetAnalyzer:
    """Single-pass Eraser over a recorded trace."""

    def analyze(self, trace: Trace) -> LocksetReport:
        """Run the Eraser state machine over ``trace``."""
        held: dict[int, set[str]] = {}
        shadows: dict[str, _Shadow] = {}
        joined: dict[int, set[int]] = {}
        report = LocksetReport()
        for event in trace.events:
            eraser_on_event(event, held, shadows, joined, report)
        eraser_finish(shadows, report)
        return report


def check_lock_discipline(trace: Trace) -> LocksetReport:
    """One-call API: Eraser lockset analysis of ``trace``."""
    return LocksetAnalyzer().analyze(trace)
