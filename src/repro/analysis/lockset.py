"""Eraser-style lockset analysis (Savage et al., TOCS 1997).

Complementary to happens-before detection: instead of ordering, it checks
*lock discipline* — every shared, written location should be consistently
protected by at least one common mutex.  The analysis runs the original
Eraser state machine per location:

``virgin -> exclusive -> shared -> shared-modified``

* ``exclusive``: only one thread has touched the location; no refinement
  (initialisation is exempt from the discipline).
* ``shared``: a second thread *read* it; the candidate lockset is refined
  but violations are not reported (read-only sharing after initialisation
  is benign — e.g. a main thread reading results after joins).
* ``shared-modified``: a second thread *wrote* it; an empty candidate
  lockset here is reported once.

Lockset analysis is schedule-insensitive, so it implicates discipline
violations (like the ``wronglock`` family) even on interleavings where
nothing went wrong.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.hb import DATA_PREFIXES as _DATA_PREFIXES
from repro.analysis.hb import PLAIN_READS as _READ_KINDS
from repro.analysis.hb import PLAIN_WRITES as _WRITE_KINDS
from repro.core.trace import Trace


class LocationState(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass(frozen=True)
class LockDisciplineViolation:
    """A written-shared location with no consistently held lock."""

    location: str
    #: Event id of the access that emptied the candidate lockset.
    at_event: int
    threads: frozenset[int]

    def __str__(self) -> str:
        who = ", ".join(f"T{tid}" for tid in sorted(self.threads))
        return f"{self.location}: no consistent lock (threads {who}, event #{self.at_event})"


@dataclass
class LocksetReport:
    violations: list[LockDisciplineViolation] = field(default_factory=list)
    #: Final candidate lockset per location that left the exclusive state.
    candidate_locksets: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Final Eraser state per analysed location.
    states: dict[str, LocationState] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.violations)

    @property
    def flagged_locations(self) -> set[str]:
        return {v.location for v in self.violations}


@dataclass
class _Shadow:
    state: LocationState = LocationState.VIRGIN
    first_thread: int | None = None
    candidates: set[str] | None = None
    accessors: set[int] = field(default_factory=set)
    reported: bool = False


def eraser_on_event(
    event,
    held: dict[int, set[str]],
    shadows: dict[str, _Shadow],
    joined: dict[int, set[int]],
    report: LocksetReport,
) -> None:
    """One Eraser step: update ``held``/``shadows``/``joined`` for ``event``.

    Shared verbatim by the offline :class:`LocksetAnalyzer` and the online
    ``OnlineLocksetSanitizer`` so the two agree by construction.
    """
    holder = held.setdefault(event.tid, set())
    if event.kind == "lock" or (event.kind == "trylock" and event.value):
        holder.add(event.location)
        return
    if event.kind == "unlock":
        holder.discard(event.location)
        return
    if event.kind == "wait":
        # Waiting releases the mutex (named by the event's aux);
        # the later re-acquire shows up as a separate lock event.
        holder.discard(event.aux)
        return
    if event.kind == "join" and isinstance(event.aux, int):
        mine = joined.setdefault(event.tid, set())
        mine.add(event.aux)
        mine |= joined.get(event.aux, set())
        return
    is_read = event.kind in _READ_KINDS
    is_write = event.kind in _WRITE_KINDS
    if not (is_read or is_write) or not event.location.startswith(_DATA_PREFIXES):
        return
    shadow = shadows.setdefault(event.location, _Shadow())
    # Join-awareness (the classic Eraser false-positive fix): when
    # every other thread that ever touched the location has been
    # joined by the current thread, ownership has transferred — the
    # location re-enters the exclusive regime.
    others = shadow.accessors - {event.tid}
    if others and others <= joined.get(event.tid, set()):
        shadow.state = LocationState.EXCLUSIVE
        shadow.first_thread = event.tid
        shadow.accessors = {event.tid}
    shadow.accessors.add(event.tid)
    _step(shadow, event, holder, report)


def eraser_finish(shadows: dict[str, _Shadow], report: LocksetReport) -> None:
    """Fill the report's final per-location states and candidate locksets."""
    for location, shadow in shadows.items():
        report.states[location] = shadow.state
        if shadow.candidates is not None:
            report.candidate_locksets[location] = frozenset(shadow.candidates)


def _step(shadow: _Shadow, event, holder: set[str], report: LocksetReport) -> None:
    if shadow.state is LocationState.VIRGIN:
        shadow.state = LocationState.EXCLUSIVE
        shadow.first_thread = event.tid
        # The candidate set starts from the first access's held locks;
        # it is frozen while the location stays exclusive and refined
        # again once a second thread arrives.  (Starting from the first
        # accessor — not the second — is what catches wronglock-style
        # inconsistent-lock bugs even without overlapping accesses.)
        shadow.candidates = set(holder)
        return
    if shadow.state is LocationState.EXCLUSIVE:
        if event.tid == shadow.first_thread:
            return
        assert shadow.candidates is not None
        shadow.candidates &= holder
        shadow.state = (
            LocationState.SHARED_MODIFIED
            if event.kind in _WRITE_KINDS
            else LocationState.SHARED
        )
    else:
        assert shadow.candidates is not None
        shadow.candidates &= holder
        if event.kind in _WRITE_KINDS:
            shadow.state = LocationState.SHARED_MODIFIED
    if (
        shadow.state is LocationState.SHARED_MODIFIED
        and not shadow.candidates
        and not shadow.reported
    ):
        shadow.reported = True
        report.violations.append(
            LockDisciplineViolation(
                location=event.location,
                at_event=event.eid,
                threads=frozenset(shadow.accessors),
            )
        )


class LocksetAnalyzer:
    """Single-pass Eraser over a recorded trace."""

    def analyze(self, trace: Trace) -> LocksetReport:
        """Run the Eraser state machine over ``trace``."""
        held: dict[int, set[str]] = {}
        shadows: dict[str, _Shadow] = {}
        joined: dict[int, set[int]] = {}
        report = LocksetReport()
        for event in trace.events:
            eraser_on_event(event, held, shadows, joined, report)
        eraser_finish(shadows, report)
        return report


def check_lock_discipline(trace: Trace) -> LocksetReport:
    """One-call API: Eraser lockset analysis of ``trace``."""
    return LocksetAnalyzer().analyze(trace)
