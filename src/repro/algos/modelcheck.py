"""GenMC stand-in: an exhaustive stateless enumerator with rf-class pruning.

GenMC (Kokologiannakis & Vafeiadis, CAV 2021) enumerates one execution per
reads-from equivalence class of a program.  Our stand-in runs the stateless
search engine *unbounded* and reports the number of distinct rf classes it
visited before hitting the bug — the quantity comparable to GenMC's
"executions explored".  Like GenMC, it is deterministic.

The paper's Appendix B reports ``Error`` for GenMC on 36 of 49 programs
(unsupported LLVM IR constructs).  We reproduce that honestly with a
*supported-feature gate*: programs must be explicitly marked
``mc_supported`` (small, static, heap-free subjects — the same class of
programs GenMC succeeds on), otherwise :class:`UnsupportedProgram` is
raised and the harness records an ``Error`` cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algos.exploration import ExplorationReport, StatelessExplorer
from repro.runtime.executor import DEFAULT_MAX_STEPS
from repro.runtime.program import Program


class UnsupportedProgram(Exception):
    """The model-checker stand-in does not accept this program."""


@dataclass
class ModelCheckReport:
    """Result of one (deterministic) model-checking run."""

    executions: int = 0
    rf_classes: int = 0
    first_bug_at_class: int | None = None
    bug_outcome: str | None = None
    #: True when the whole bounded search space was enumerated.
    complete: bool = False

    @property
    def found_bug(self) -> bool:
        return self.first_bug_at_class is not None


class ModelChecker:
    """Exhaustive stateless enumeration, reporting rf-class counts."""

    def __init__(
        self,
        program: Program,
        max_executions: int = 20_000,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.program = program
        self.max_executions = max_executions
        self.max_steps = max_steps

    def check(self) -> ModelCheckReport:
        """Enumerate rf classes; raises UnsupportedProgram outside the gate."""
        if not self.program.mc_supported:
            raise UnsupportedProgram(
                f"{self.program.name}: not in the model checker's supported fragment"
            )
        explorer = StatelessExplorer(
            program=self.program,
            max_executions=self.max_executions,
            preemption_bound=None,
            max_steps=self.max_steps,
            rf_subsume=True,
        )
        inner: ExplorationReport = explorer.run()
        report = ModelCheckReport(
            executions=inner.executions,
            rf_classes=inner.distinct_rf_classes,
            complete=inner.exhausted,
        )
        if inner.found_bug:
            # GenMC counts explored executions ≙ distinct rf classes; the
            # crashing run's class was counted when it was first visited.
            report.first_bug_at_class = inner.distinct_rf_classes
            report.bug_outcome = inner.bug_outcome
        return report
