"""Reads-from-centric dynamic partial order reduction (race reversal).

A second, more faithful model-checking engine next to the breadth-first
:mod:`~repro.algos.exploration` stand-in, following the reversal-based
recipe of modern stateless checkers (Flanagan-Godefroid DPOR as refined by
Source-DPOR / GenMC's rf-equivalence view):

1. run one maximal execution;
2. build its *dependency* happens-before (program order + spawn/join/wake
   edges + conflicting-access edges per location);
3. for every *immediate* race — two adjacent conflicting accesses from
   different threads with no dependency path through a third event — emit
   the reversal seed ``pre(e_i) · notdep(e_i) · thread(e_j)`` and explore
   it (re-executing from scratch; the runtime is deterministic);
4. deduplicate executions by their *concrete* reads-from signature — one
   representative per rf class, the equivalence GenMC enumerates.

Iterating reversals reaches every rf class of acyclic programs in the
limit; an execution budget keeps it laptop-bounded like every other tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.vector_clock import VectorClock
from repro.core.events import Event
from repro.core.trace import Trace
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.program import Program
from repro.schedulers.base import SchedulerPolicy

#: Event kinds participating in location conflicts (anything rf-relevant).
_MEMORY_KINDS = frozenset(
    {
        "r",
        "w",
        "rmw",
        "cas",
        "hr",
        "hw",
        "lock",
        "trylock",
        "trysem",
        "unlock",
        "wait",
        "signal",
        "broadcast",
        "sem_acquire",
        "sem_release",
        "barrier",
        "free",
    }
)


def _is_memory(event: Event) -> bool:
    return event.kind in _MEMORY_KINDS


def _conflict(a: Event, b: Event) -> bool:
    """Dependent accesses: same location, different threads, one writes."""
    return (
        a.location == b.location
        and a.tid != b.tid
        and (a.is_write or b.is_write)
    )


def dependency_clocks(trace: Trace) -> dict[int, VectorClock]:
    """Per-event vector clocks over the trace's dependency relation."""
    thread_clocks: dict[int, VectorClock] = {}
    #: location -> (last write event+clock, reads since then)
    last_write: dict[int, tuple[Event, VectorClock]] = {}
    by_location_write: dict[str, tuple[Event, VectorClock]] = {}
    by_location_reads: dict[str, list[tuple[Event, VectorClock]]] = {}
    clocks: dict[int, VectorClock] = {}
    del last_write

    def clock_of(tid: int) -> VectorClock:
        if tid not in thread_clocks:
            thread_clocks[tid] = VectorClock()
        return thread_clocks[tid]

    for event in trace.events:
        clock = clock_of(event.tid)
        clock.tick(event.tid)
        if event.kind == "spawn" and isinstance(event.aux, int):
            thread_clocks[event.aux] = clock.copy()
        elif event.kind == "join" and isinstance(event.aux, int):
            target = thread_clocks.get(event.aux)
            if target is not None:
                clock.join(target)
        elif event.kind in ("signal", "broadcast"):
            for woken in event.aux or ():
                clock_of(woken).join(clock)
        if _is_memory(event):
            # Dependency edges from prior conflicting accesses.
            prior_write = by_location_write.get(event.location)
            if prior_write is not None and prior_write[0].tid != event.tid:
                clock.join(prior_write[1])
            if event.is_write:
                for read, read_clock in by_location_reads.get(event.location, ()):
                    if read.tid != event.tid:
                        clock.join(read_clock)
                by_location_reads[event.location] = []
                by_location_write[event.location] = (event, clock.copy())
            if event.is_read:
                by_location_reads.setdefault(event.location, []).append((event, clock.copy()))
        clocks[event.eid] = clock.copy()
    return clocks


def immediate_races(trace: Trace) -> list[tuple[Event, Event]]:
    """Adjacent conflicting pairs (per location) from different threads.

    Adjacency makes the set tractable (O(n) per location); chains of
    reversals across iterations recover the non-adjacent reorderings.
    """
    races: list[tuple[Event, Event]] = []
    #: The last two writes per location: lock/unlock (and CAS retry)
    #: sequences alternate writers, so reversing only against the very
    #: last write can be unrealizable (e.g. hoisting a lock above an
    #: unlock while the mutex is held); the write before it gives the
    #: co-enabled reversal partner.
    last_writes: dict[str, list[Event]] = {}
    reads_since: dict[str, list[Event]] = {}
    for event in trace.events:
        if not _is_memory(event):
            continue
        location = event.location
        if event.is_write:
            for prior in last_writes.get(location, ()):
                if _conflict(prior, event):
                    races.append((prior, event))
            for read in reads_since.get(location, ()):
                if _conflict(read, event):
                    races.append((read, event))
            reads_since[location] = []
            history = last_writes.setdefault(location, [])
            history.append(event)
            if len(history) > 2:
                history.pop(0)
        if event.is_read:
            for prior in last_writes.get(location, ()):
                if _conflict(prior, event):
                    races.append((prior, event))
            reads_since.setdefault(location, []).append(event)
    return races


def reversal_seed(trace: Trace, clocks: dict[int, VectorClock], first: Event, second: Event) -> tuple[int, ...]:
    """The Source-DPOR seed ``pre(e1) · notdep(e1) · thread(e2)``.

    Keep every event before ``second`` that is not dependency-after
    ``first`` (dropping ``first`` itself), then schedule ``second``'s
    thread — forcing the reversed order of the race on re-execution.
    """
    first_clock = clocks[first.eid]
    prefix: list[int] = []
    for event in trace.events:
        if event.eid >= second.eid:
            break
        if event.eid == first.eid:
            continue
        if first_clock.leq(clocks[event.eid]):
            continue  # dependency-after first: must come after the reversal
        prefix.append(event.tid)
    prefix.append(second.tid)
    return tuple(prefix)


class _SeedPolicy(SchedulerPolicy):
    """Follow a tid seed while possible, then lowest-tid deterministic."""

    def __init__(self, seed: tuple[int, ...]):
        self.seed = seed
        self._cursor = 0

    def choose(self, candidates, execution):
        while self._cursor < len(self.seed):
            wanted = self.seed[self._cursor]
            self._cursor += 1
            for candidate in candidates:
                if candidate.tid == wanted:
                    return candidate
            # Seed entry not enabled (the reversal perturbed enabledness):
            # skip it and keep following the rest of the seed.
        return min(candidates, key=lambda c: c.tid)


def concrete_rf_signature(trace: Trace) -> frozenset:
    """Reads-from signature over *concrete* per-thread event indices."""
    indices: dict[int, int] = {}
    identity: dict[int, tuple[int, int]] = {}
    for event in trace.events:
        indices[event.tid] = indices.get(event.tid, 0) + 1
        identity[event.eid] = (event.tid, indices[event.tid])
    pairs = set()
    for event in trace.events:
        if event.rf is None:
            continue
        writer = identity.get(event.rf, (-1, 0))
        pairs.add((writer, identity[event.eid]))
    return frozenset(pairs)


@dataclass
class RfDporReport:
    """Outcome of one rf-DPOR exploration."""

    executions: int = 0
    rf_classes: int = 0
    first_bug_at: int | None = None
    bug_outcome: str | None = None
    #: True when the reversal frontier drained before the budget.
    complete: bool = False
    seeds_generated: int = 0

    @property
    def found_bug(self) -> bool:
        return self.first_bug_at is not None


@dataclass
class RfDporExplorer:
    """Race-reversal exploration with rf-class deduplication."""

    program: Program
    max_executions: int = 5000
    max_steps: int = DEFAULT_MAX_STEPS
    stop_on_first_bug: bool = True
    report: RfDporReport = field(default_factory=RfDporReport)

    def run(self) -> RfDporReport:
        """Drain the reversal frontier (or the budget), one class at a time."""
        frontier: list[tuple[int, ...]] = [()]
        seen_seeds: set[tuple[int, ...]] = {()}
        seen_classes: set[frozenset] = set()
        while frontier and self.report.executions < self.max_executions:
            seed = frontier.pop()
            result = Executor(self.program, _SeedPolicy(seed), max_steps=self.max_steps).run()
            self.report.executions += 1
            signature = concrete_rf_signature(result.trace)
            if signature in seen_classes:
                continue
            seen_classes.add(signature)
            self.report.rf_classes += 1
            if result.crashed and self.report.first_bug_at is None:
                self.report.first_bug_at = self.report.rf_classes
                self.report.bug_outcome = result.outcome
                if self.stop_on_first_bug:
                    return self.report
            clocks = dependency_clocks(result.trace)
            for first, second in immediate_races(result.trace):
                new_seed = reversal_seed(result.trace, clocks, first, second)
                if new_seed not in seen_seeds:
                    seen_seeds.add(new_seed)
                    self.report.seeds_generated += 1
                    frontier.append(new_seed)
        self.report.complete = not frontier
        return self.report
