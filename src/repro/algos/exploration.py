"""Stateless systematic exploration: the engine behind the PERIOD and GenMC
stand-ins.

The runtime cannot snapshot generator state, so — like real stateless model
checkers — systematic tools re-execute the program from scratch for every
schedule.  A schedule is encoded as a *script*: the thread id chosen at each
scheduling point; beyond the script, a deterministic default rule applies
(continue the current thread while enabled, else the lowest thread id, i.e.
non-preemptive round-robin).  After each run, the explorer derives new
scripts by flipping one decision at a position not already owned by an
ancestor script — the classic stateless-search recipe.

Preemption bounding (used by the PERIOD stand-in) prunes scripts whose
flipped decision preempts a still-enabled thread once the budget of
preemptions is exceeded, following CHESS-style iterative context bounding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.trace import RfPair
from repro.runtime.executor import DEFAULT_MAX_STEPS, ExecutionResult, Executor
from repro.runtime.program import Program
from repro.schedulers.base import SchedulerPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import Candidate


@dataclass
class StepLog:
    """What the explorer needs to branch at one scheduling point."""

    enabled: tuple[int, ...]
    chosen: int
    #: Thread that executed the previous event (None at the first step).
    current: int | None
    #: tid -> abstract event the thread was about to execute at this step;
    #: used for the thread-symmetry reduction when branching.
    pending: dict[int, "object"]


class ScriptPolicy(SchedulerPolicy):
    """Follow a decision script, then fall back to non-preemptive defaults."""

    def __init__(self, script: tuple[int, ...] = ()):
        self.script = script
        self.log: list[StepLog] = []
        self._current: int | None = None

    def choose(self, candidates: "list[Candidate]", execution) -> "Candidate":
        enabled = tuple(sorted(c.tid for c in candidates))
        step = len(self.log)
        wanted: int | None = self.script[step] if step < len(self.script) else None
        if wanted is None or wanted not in enabled:
            if self._current is not None and self._current in enabled:
                wanted = self._current
            else:
                wanted = enabled[0]
        self.log.append(
            StepLog(
                enabled=enabled,
                chosen=wanted,
                current=self._current,
                pending={c.tid: c.abstract for c in candidates},
            )
        )
        self._current = wanted
        for candidate in candidates:
            if candidate.tid == wanted:
                return candidate
        raise AssertionError("unreachable: wanted tid validated against enabled set")


def count_preemptions(log: list[StepLog]) -> int:
    """Preemptions in a run: switching away from a still-enabled thread."""
    return sum(
        1
        for step in log
        if step.current is not None and step.current in step.enabled and step.chosen != step.current
    )


@dataclass
class ExplorationReport:
    """Outcome of a systematic exploration."""

    executions: int = 0
    first_bug_at: int | None = None
    bug_outcome: str | None = None
    distinct_rf_classes: int = 0
    #: True when the script frontier was exhausted (search space covered up
    #: to the preemption bound), False when the execution budget ran out.
    exhausted: bool = False

    @property
    def found_bug(self) -> bool:
        return self.first_bug_at is not None


@dataclass
class StatelessExplorer:
    """Breadth-first stateless exploration with optional preemption bounding.

    Breadth-first order flips *early* decisions first, which (like PERIOD's
    period-by-period search) reaches shallow reorderings in few schedules and
    keeps exploration deterministic — zero variance across runs, matching the
    ``± 0`` PERIOD rows of the paper's Appendix B.
    """

    program: Program
    max_executions: int = 2000
    preemption_bound: int | None = None
    max_steps: int = DEFAULT_MAX_STEPS
    #: Memory guard: scripts beyond this frontier size are dropped.
    max_frontier: int = 100_000
    stop_on_first_bug: bool = True
    #: Reads-from subsumption: a run whose abstract rf signature was already
    #: visited spawns no children.  This is the partial-order-reduction-style
    #: pruning that keeps systematic search tractable on permutation-heavy
    #: programs (many interleavings, one rf class); both the PERIOD and GenMC
    #: stand-ins enable it (DESIGN.md, substitution table).
    rf_subsume: bool = False
    #: Thread-symmetry reduction: do not branch to two alternatives that are
    #: about to execute the same abstract event (identical worker threads),
    #: and not to an alternative whose pending abstract event equals the one
    #: actually executed at that position.
    symmetry_reduction: bool = False
    report: ExplorationReport = field(default_factory=ExplorationReport)

    def run(self) -> ExplorationReport:
        """Explore until the frontier drains, the budget ends or a bug hits."""
        seen_classes: set[frozenset[RfPair]] = set()
        frontier: deque[tuple[int, ...]] = deque([()])
        while frontier and self.report.executions < self.max_executions:
            script = frontier.popleft()
            result, log = self._execute(script)
            self.report.executions += 1
            signature = result.trace.rf_signature()
            novel_class = signature not in seen_classes
            if novel_class:
                seen_classes.add(signature)
                self.report.distinct_rf_classes += 1
            if result.crashed and self.report.first_bug_at is None:
                self.report.first_bug_at = self.report.executions
                self.report.bug_outcome = result.outcome
                if self.stop_on_first_bug:
                    return self.report
            if novel_class or not self.rf_subsume:
                self._push_children(script, log, frontier)
        self.report.exhausted = not frontier
        return self.report

    def _execute(self, script: tuple[int, ...]) -> tuple[ExecutionResult, list[StepLog]]:
        policy = ScriptPolicy(script)
        result = Executor(self.program, policy, max_steps=self.max_steps).run()
        return result, policy.log

    def _push_children(
        self, script: tuple[int, ...], log: list[StepLog], frontier: deque
    ) -> None:
        chosen_prefix = tuple(step.chosen for step in log)
        # Prefix preemption counts: preempt_before[i] = preemptions in log[:i].
        preempt_before = [0] * (len(log) + 1)
        for i, step in enumerate(log):
            is_preemption = (
                step.current is not None and step.current in step.enabled and step.chosen != step.current
            )
            preempt_before[i + 1] = preempt_before[i] + is_preemption
        for position in range(len(script), len(log)):
            step = log[position]
            # Thread-symmetry reduction: among alternatives about to execute
            # the *same abstract event* (e.g. the n identical setter threads
            # of reorder_n), branching to one representative suffices — the
            # others differ only by a thread renaming.  Keep the lowest tid
            # per distinct pending abstract event.
            representatives: dict[object, int] = {}
            for tid in step.enabled:
                abstract = step.pending.get(tid)
                if abstract not in representatives:
                    representatives[abstract] = tid
            for alternative in step.enabled:
                if alternative == step.chosen:
                    continue
                if self.symmetry_reduction:
                    abstract = step.pending.get(alternative)
                    if representatives.get(abstract) != alternative or abstract == step.pending.get(
                        step.chosen
                    ):
                        continue
                if self.preemption_bound is not None:
                    extra = (
                        1
                        if step.current is not None
                        and step.current in step.enabled
                        and alternative != step.current
                        else 0
                    )
                    # Preemptions before `position` are shared with the parent
                    # run; the flipped decision may add one more.
                    if preempt_before[position] + extra > self.preemption_bound:
                        continue
                if len(frontier) >= self.max_frontier:
                    return
                frontier.append(chosen_prefix[:position] + (alternative,))
