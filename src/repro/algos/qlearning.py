"""Q-Learning RF: the paper's alternative reads-from framework (Section 5.5).

States are commutative hashes of the reads-from pairs observed so far in the
current *partial* execution — order-independent, so two prefixes exposing the
same rf pairs share a state.  Actions are the abstract events a scheduling
decision would execute.  As in Mukherjee et al. (OOPSLA 2020), a constant
*negative* reward is applied to every taken state-action pair, pushing the
learner away from previously explored territory; the Q table persists across
executions of a campaign.

The paper's finding, which our benches reproduce in shape: QL-RF converts
partial-trace learning into strong one-shot results on some programs but
finds fewer bugs overall than the fuzzing-inspired search.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.events import AbstractEvent
from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, Executor, ExecutionResult


def commutative_rf_hash(state: int, writer: object, reader: object) -> int:
    """Fold one rf pair into the running commutative state hash.

    XOR composition makes the hash independent of observation order, matching
    the paper's ``h((e_w1, e_r1), h(...))`` commutative construction.
    """
    pair_hash = hash((writer, reader)) & 0xFFFFFFFFFFFFFFFF
    return state ^ pair_hash


class QLearningRfPolicy(SeededPolicy):
    """Reads-from-state Q-learning scheduler (persistent across executions)."""

    def __init__(
        self,
        seed: int | None = None,
        learning_rate: float = 0.5,
        discount: float = 0.9,
        reward: float = -1.0,
        temperature: float = 0.5,
    ):
        super().__init__(seed)
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 <= discount < 1:
            raise ValueError("discount must be in [0, 1)")
        self.learning_rate = learning_rate
        self.discount = discount
        self.reward = reward
        self.temperature = temperature
        #: Q(state, action) — persists across executions of a campaign.
        self.q: dict[tuple[int, AbstractEvent], float] = {}

    # ------------------------------------------------------------------
    def begin(self, execution: "Executor") -> None:
        self._state = 0
        self._last: tuple[int, AbstractEvent] | None = None

    def _q(self, state: int, action: AbstractEvent) -> float:
        return self.q.get((state, action), 0.0)

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        # Softmax (Boltzmann) sampling over Q values: negative rewards on
        # visited pairs progressively bias choice toward unexplored actions.
        scores = [self._q(self._state, c.abstract) / self.temperature for c in candidates]
        peak = max(scores)
        weights = [math.exp(s - peak) for s in scores]
        total = sum(weights)
        pick = self.rng.random() * total
        cumulative = 0.0
        chosen = candidates[-1]
        for candidate, weight in zip(candidates, weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = candidate
                break
        self._last = (self._state, chosen.abstract)
        return chosen

    def notify(self, event: "Event", execution: "Executor") -> None:
        if event.rf is not None:
            # Concrete-leaning pair identity (thread ids included): the paper
            # hashes observed *event* pairs, giving a much larger state space
            # than abstract pairs — the price of partial-trace learning.
            writer_event = None if event.rf == 0 else execution.trace.event_by_id(event.rf)
            writer = None if writer_event is None else (writer_event.tid, writer_event.abstract)
            self._state = commutative_rf_hash(self._state, writer, (event.tid, event.abstract))
        if self._last is None:
            return
        state, action = self._last
        # One-step TD update with the constant negative reward; the best
        # next-state action value is estimated over currently enabled events.
        next_best = 0.0
        enabled = execution.enabled_candidates()
        if enabled:
            next_best = max(self._q(self._state, c.abstract) for c in enabled)
        old = self._q(state, action)
        target = self.reward + self.discount * next_best
        self.q[(state, action)] = old + self.learning_rate * (target - old)
        self._last = None

    def end(self, result: "ExecutionResult", execution: "Executor") -> None:
        self._last = None
