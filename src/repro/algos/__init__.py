"""Baseline testing frameworks: systematic exploration, model checking and
reinforcement learning (paper Section 5.1 baselines)."""

from repro.algos.exploration import (
    ExplorationReport,
    ScriptPolicy,
    StatelessExplorer,
    StepLog,
    count_preemptions,
)
from repro.algos.modelcheck import ModelChecker, ModelCheckReport, UnsupportedProgram
from repro.algos.period import PeriodExplorer, PeriodReport
from repro.algos.qlearning import QLearningRfPolicy, commutative_rf_hash
from repro.algos.rfdpor import (
    RfDporExplorer,
    RfDporReport,
    concrete_rf_signature,
    dependency_clocks,
    immediate_races,
    reversal_seed,
)

__all__ = [
    "ExplorationReport",
    "ModelCheckReport",
    "ModelChecker",
    "PeriodExplorer",
    "PeriodReport",
    "QLearningRfPolicy",
    "RfDporExplorer",
    "RfDporReport",
    "ScriptPolicy",
    "StatelessExplorer",
    "StepLog",
    "UnsupportedProgram",
    "commutative_rf_hash",
    "concrete_rf_signature",
    "count_preemptions",
    "dependency_clocks",
    "immediate_races",
    "reversal_seed",
]
