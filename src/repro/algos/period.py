"""PERIOD stand-in: iterative preemption-bounded systematic testing.

PERIOD (Wen et al., ICSE 2022) systematically explores orderings of
serialized code "periods" below a depth bound using Linux deadline
scheduling.  We cannot reproduce a kernel scheduler in pure Python, so —
per the substitution table in DESIGN.md — we model it with the closest
classical systematic explorer: iterative context (preemption) bounding over
the same stateless search engine.  Both tools share the defining traits the
evaluation depends on: deterministic systematic coverage of bounded
reorderings, zero variance across trials, strong results on shallow bugs and
schedule-hungry behaviour on reads-from-sparse deep bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algos.exploration import ExplorationReport, StatelessExplorer
from repro.runtime.executor import DEFAULT_MAX_STEPS
from repro.runtime.program import Program


@dataclass
class PeriodReport:
    """Aggregate over the iterative-deepening rounds."""

    executions: int = 0
    first_bug_at: int | None = None
    bug_outcome: str | None = None
    highest_bound: int = 0

    @property
    def found_bug(self) -> bool:
        return self.first_bug_at is not None


class PeriodExplorer:
    """Iterative deepening on the preemption bound: d = 0, 1, 2, ...

    Each round re-runs the bounded breadth-first exploration with one more
    allowed preemption, counting every executed schedule toward the global
    budget (re-executions across rounds included, as CHESS does).
    """

    def __init__(
        self,
        program: Program,
        max_executions: int = 2000,
        max_bound: int = 4,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.program = program
        self.max_executions = max_executions
        self.max_bound = max_bound
        self.max_steps = max_steps

    def run(self) -> PeriodReport:
        """Deepen the preemption bound until a bug, exhaustion or budget."""
        report = PeriodReport()
        for bound in range(self.max_bound + 1):
            report.highest_bound = bound
            remaining = self.max_executions - report.executions
            if remaining <= 0:
                break
            inner: ExplorationReport = StatelessExplorer(
                program=self.program,
                max_executions=remaining,
                preemption_bound=bound,
                max_steps=self.max_steps,
                rf_subsume=True,
                symmetry_reduction=True,
            ).run()
            if inner.found_bug:
                report.first_bug_at = report.executions + (inner.first_bug_at or 0)
                report.bug_outcome = inner.bug_outcome
                report.executions += inner.executions
                return report
            report.executions += inner.executions
            if not inner.exhausted:
                # Budget ran out inside this bound; deepening further would
                # only re-execute the same prefix schedules.
                break
        return report
