"""repro — a from-scratch reproduction of "Greybox Fuzzing for Concurrency
Testing" (RFF, ASPLOS 2024).

Public API tour:

* :mod:`repro.runtime` — write concurrent programs as generator coroutines
  and execute them under full schedule control.
* :mod:`repro.core` — reads-from traces, abstract schedules, the proactive
  constraint scheduler and the RFF fuzzer (:func:`repro.core.fuzz`).
* :mod:`repro.schedulers` — POS, PCT, random-walk and replay policies.
* :mod:`repro.algos` — the systematic (PERIOD-like), model-checking
  (GenMC-like) and Q-learning baselines.
* :mod:`repro.bench` — the 49 modelled benchmark programs.
* :mod:`repro.harness` — campaigns, statistics and the paper's figures.

Quickstart::

    from repro import bench, fuzz
    report = fuzz(bench.get("CS/reorder_100"), max_executions=200,
                  stop_on_first_crash=True)
    print(report.first_crash_at)      # ~3-6 schedules, as in the paper
"""

from repro import bench
from repro.core.fuzzer import FuzzReport, RffConfig, RffFuzzer, fuzz
from repro.runtime import Program, program, run_program

__version__ = "1.0.0"

__all__ = [
    "FuzzReport",
    "Program",
    "RffConfig",
    "RffFuzzer",
    "bench",
    "fuzz",
    "program",
    "run_program",
    "__version__",
]
