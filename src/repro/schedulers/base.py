"""Scheduler policy interface.

A policy is consulted by the executor before every visible event: it sees the
set of enabled candidates (thread + the abstract event it would execute) and
full read access to the execution state, and returns one candidate.  Policies
also receive lifecycle callbacks so stateful algorithms (POS score tables,
PCT change points, RFF constraint machines, Q-learning) can maintain
per-execution and cross-execution state.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, ExecutionResult, Executor


class SchedulerPolicy(ABC):
    """Chooses which enabled thread executes its next event."""

    def begin(self, execution: "Executor") -> None:
        """Called once before the first event of an execution."""

    @abstractmethod
    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        """Pick one of ``candidates`` (guaranteed non-empty) to run next."""

    def notify(self, event: "Event", execution: "Executor") -> None:
        """Called after every executed event."""

    def end(self, result: "ExecutionResult", execution: "Executor") -> None:
        """Called once when the execution completes (normally or not)."""


class SeededPolicy(SchedulerPolicy, ABC):
    """A policy with its own deterministic random stream.

    Every randomized algorithm in this repository draws from a private
    ``random.Random`` so campaigns are reproducible from a single seed
    (mirroring the paper's "pre-determined random seed" for POS,
    Section 4.1).
    """

    def __init__(self, seed: int | None = None):
        self.rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Reset the private stream; used by the harness between executions."""
        self.rng.seed(seed)
