"""Scheduler policies: the pluggable `schedule()` routines of Section 4.1."""

from repro.schedulers.base import SchedulerPolicy, SeededPolicy
from repro.schedulers.muzz_like import MuzzLikePolicy
from repro.schedulers.pct import PctPolicy
from repro.schedulers.pos import PosPolicy
from repro.schedulers.random_walk import RandomWalkPolicy
from repro.schedulers.replay import ReplayDivergence, ReplayPolicy

__all__ = [
    "MuzzLikePolicy",
    "PctPolicy",
    "PosPolicy",
    "RandomWalkPolicy",
    "ReplayDivergence",
    "ReplayPolicy",
    "SchedulerPolicy",
    "SeededPolicy",
]
