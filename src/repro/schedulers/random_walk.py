"""Uniform random walk over enabled threads.

The naive "optimistic" baseline of the paper's introduction: at every step,
pick an enabled thread uniformly at random.  It is hopeless on deep bugs but
valuable as a sanity baseline and as the default policy for quickly smoking
out shallow races.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import Candidate, Executor


class RandomWalkPolicy(SeededPolicy):
    """Pick an enabled candidate uniformly at random each step."""

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        return candidates[self.rng.randrange(len(candidates))]
