"""Replay a recorded concrete schedule.

Replaying the thread-id sequence of a previous execution reproduces it
exactly when the program is deterministic modulo scheduling — which the
runtime guarantees.  Used by determinism tests and by the harness to
re-trigger a crashing schedule for triage (the paper's reproducibility
argument for deterministic multithreading, Section 4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import SchedulerPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import Candidate, Executor


class ReplayPolicy(SchedulerPolicy):
    """Follow a recorded thread-id sequence; falls back on divergence.

    ``diverged`` records the first step at which the recorded thread was not
    enabled (None when replay was exact); after divergence the policy keeps
    executing the lowest-tid candidate so the run still terminates.
    """

    def __init__(self, schedule: list[int]):
        self.schedule = list(schedule)
        self.diverged: int | None = None

    def begin(self, execution: "Executor") -> None:
        self._cursor = 0

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        wanted = self.schedule[self._cursor] if self._cursor < len(self.schedule) else None
        self._cursor += 1
        if wanted is not None:
            for candidate in candidates:
                if candidate.tid == wanted:
                    return candidate
        if self.diverged is None:
            self.diverged = self._cursor - 1
        return min(candidates, key=lambda c: c.tid)
