"""Replay a recorded concrete schedule.

Replaying the thread-id sequence of a previous execution reproduces it
exactly when the program is deterministic modulo scheduling — which the
runtime guarantees.  Used by determinism tests and by the harness to
re-trigger a crashing schedule for triage (the paper's reproducibility
argument for deterministic multithreading, Section 4.1).

Divergence — the recorded thread not being enabled at some step, or the
program outliving the recorded schedule — is the failure mode replay-based
triage must engineer for, not assume away.  :class:`ReplayPolicy` supports
two stances:

* ``strict=False`` (default): record the first divergence point and keep
  executing the lowest-tid candidate so the run still terminates.  The
  executor surfaces the divergence as ``ExecutionResult.diverged``.
* ``strict=True``: raise :class:`ReplayDivergence` at the first divergent
  step instead of silently falling back — for callers that treat any
  divergence as a verification failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.errors import SchedulerError
from repro.schedulers.base import SchedulerPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import Candidate, Executor


class ReplayDivergence(SchedulerError):
    """Strict replay could not follow the recorded schedule.

    ``step`` is the 0-based schedule index at which replay diverged;
    ``wanted`` is the recorded thread id (None when the program ran past
    the end of the recorded schedule); ``enabled`` lists the thread ids
    that were actually runnable at that step.
    """

    def __init__(self, step: int, wanted: int | None, enabled: tuple[int, ...]):
        if wanted is None:
            detail = f"program ran past the {step}-step recorded schedule"
        else:
            detail = f"recorded thread T{wanted} not enabled (enabled: {list(enabled)})"
        super().__init__(f"replay diverged at step {step}: {detail}")
        self.step = step
        self.wanted = wanted
        self.enabled = tuple(enabled)


class ReplayPolicy(SchedulerPolicy):
    """Follow a recorded thread-id sequence; diverge per the chosen stance.

    ``diverged`` records the first step at which the recorded thread was not
    enabled (None when replay was exact); in non-strict mode the policy then
    keeps executing the lowest-tid candidate so the run still terminates.
    """

    def __init__(self, schedule: list[int], strict: bool = False):
        self.schedule = list(schedule)
        self.strict = strict
        self.diverged: int | None = None

    def begin(self, execution: "Executor") -> None:
        self._cursor = 0
        self.diverged = None

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        wanted = self.schedule[self._cursor] if self._cursor < len(self.schedule) else None
        self._cursor += 1
        if wanted is not None:
            for candidate in candidates:
                if candidate.tid == wanted:
                    return candidate
        if self.strict:
            raise ReplayDivergence(
                self._cursor - 1, wanted, tuple(sorted(c.tid for c in candidates))
            )
        if self.diverged is None:
            self.diverged = self._cursor - 1
        return min(candidates, key=lambda c: c.tid)
