"""Partial Order Sampling (POS), Yuan et al. CAV 2018.

As described in the paper (Sections 3 and 4.1): every pending event is
assigned a fresh uniform random score the first time it is seen; the pending
event with the highest score executes next; after an event executes, the
scores of all pending events *racing* with it (same location, different
thread, at least one write) are reset so they will be re-drawn.  POS samples
partial orders far more uniformly than a random walk and is both RFF's
fallback scheduler and the RQ2 ablation baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, Executor

#: Operation categories that can produce a write for race purposes.
_WRITEY = frozenset({"write", "rmw"})


class PosPolicy(SeededPolicy):
    """Random-score priority scheduler with racing-score resets."""

    def begin(self, execution: "Executor") -> None:
        # Pending-event identity: (tid, per-thread step count).  A thread's
        # score survives steps of other threads but is re-drawn once the
        # thread advances past the event or a racing event executes.
        self._scores: dict[tuple[int, int], float] = {}

    def _key(self, candidate: "Candidate", execution: "Executor") -> tuple[int, int, str]:
        thread = execution.threads[candidate.tid]
        # The kind disambiguates a thread's pending operation from a
        # coexisting TSO store-buffer flush candidate.
        return (candidate.tid, thread.step_count, candidate.kind)

    def score_of(self, candidate: "Candidate", execution: "Executor") -> float:
        """Current score of a pending event, drawing one if absent."""
        key = self._key(candidate, execution)
        scores = self._scores
        try:
            return scores[key]
        except KeyError:
            score = scores[key] = self.rng.random()
            return score

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        # Explicit arg-max (first maximal element, exactly like max() with a
        # score key): scores are drawn in candidate order, keeping the rng
        # stream identical to the straightforward implementation.
        threads = execution.threads
        scores = self._scores
        rng_random = self.rng.random
        best = None
        best_score = -1.0
        for candidate in candidates:
            key = (candidate.tid, threads[candidate.tid].step_count, candidate.kind)
            try:
                score = scores[key]
            except KeyError:
                score = scores[key] = rng_random()
            if score > best_score:
                best_score = score
                best = candidate
        return best

    def notify(self, event: "Event", execution: "Executor") -> None:
        # Reset scores of pending events racing with the executed event.
        # TSO flush events are visibility points and race like writes.
        is_writeish = event.is_write or event.kind == "flush"
        if not (is_writeish or event.is_read):
            return
        location = event.location
        event_tid = event.tid
        scores = self._scores
        for thread in execution.threads:
            pending = thread.pending
            if pending is None or thread.tid == event_tid:
                continue
            if pending.location != location:
                continue
            if is_writeish or pending.category in _WRITEY:
                scores.pop((thread.tid, thread.step_count, pending.kind), None)
