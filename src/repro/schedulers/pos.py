"""Partial Order Sampling (POS), Yuan et al. CAV 2018.

As described in the paper (Sections 3 and 4.1): every pending event is
assigned a fresh uniform random score the first time it is seen; the pending
event with the highest score executes next; after an event executes, the
scores of all pending events *racing* with it (same location, different
thread, at least one write) are reset so they will be re-drawn.  POS samples
partial orders far more uniformly than a random walk and is both RFF's
fallback scheduler and the RQ2 ablation baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.executor import op_location
from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, Executor

#: Operation categories that can produce a write for race purposes.
_WRITEY = frozenset({"write", "rmw"})


class PosPolicy(SeededPolicy):
    """Random-score priority scheduler with racing-score resets."""

    def begin(self, execution: "Executor") -> None:
        # Pending-event identity: (tid, per-thread step count).  A thread's
        # score survives steps of other threads but is re-drawn once the
        # thread advances past the event or a racing event executes.
        self._scores: dict[tuple[int, int], float] = {}

    def _key(self, candidate: "Candidate", execution: "Executor") -> tuple[int, int, str]:
        thread = execution.threads[candidate.tid]
        # The kind disambiguates a thread's pending operation from a
        # coexisting TSO store-buffer flush candidate.
        return (candidate.tid, thread.step_count, candidate.kind)

    def score_of(self, candidate: "Candidate", execution: "Executor") -> float:
        """Current score of a pending event, drawing one if absent."""
        key = self._key(candidate, execution)
        if key not in self._scores:
            self._scores[key] = self.rng.random()
        return self._scores[key]

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        return max(candidates, key=lambda c: self.score_of(c, execution))

    def notify(self, event: "Event", execution: "Executor") -> None:
        # Reset scores of pending events racing with the executed event.
        # TSO flush events are visibility points and race like writes.
        is_writeish = event.is_write or event.kind == "flush"
        if not (is_writeish or event.is_read):
            return
        for thread in execution.threads:
            if thread.pending is None or thread.tid == event.tid:
                continue
            if op_location(thread.pending) != event.location:
                continue
            pending_writes = thread.pending.category in _WRITEY
            if is_writeish or pending_writes:
                self._scores.pop((thread.tid, thread.step_count, thread.pending.kind), None)
