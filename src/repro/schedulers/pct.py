"""PCT: Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010).

The classic randomized scheduler with a probabilistic guarantee for bugs of
depth ``d``: every thread receives a random high priority; ``d - 1`` change
points are sampled over the (estimated) execution length; at each change
point the currently running thread's priority is demoted below all base
priorities.  At every step the highest-priority enabled thread runs.

The paper reimplements PCT (depth 3) inside its own framework for a fair
event-count comparison (Section 5.1); we do the same.  The execution-length
estimate ``k`` is refreshed from observed lengths across executions, as real
PCT implementations do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, Executor, ExecutionResult


class PctPolicy(SeededPolicy):
    """Priority scheduler with ``depth - 1`` random priority change points."""

    def __init__(self, depth: int = 3, seed: int | None = None, initial_length_estimate: int = 64):
        super().__init__(seed)
        if depth < 1:
            raise ValueError("PCT depth must be at least 1")
        self.depth = depth
        #: Estimated number of events per execution (k in the PCT paper).
        self.length_estimate = max(1, initial_length_estimate)

    def begin(self, execution: "Executor") -> None:
        self._priorities: dict[int, float] = {}
        # Change point i demotes to priority i (all below base priorities,
        # which live in [depth, depth + 1)).
        count = min(self.depth - 1, max(0, self.length_estimate - 1))
        population = range(1, self.length_estimate + 1)
        self._change_points = set(self.rng.sample(population, count)) if count else set()

    def _priority(self, tid: int) -> float:
        if tid not in self._priorities:
            # Base priorities are drawn from [depth, depth + 1) so every
            # change-point priority (0 .. depth-2) sits strictly below them.
            self._priorities[tid] = self.depth + self.rng.random()
        return self._priorities[tid]

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        return max(candidates, key=lambda c: self._priority(c.tid))

    def notify(self, event: "Event", execution: "Executor") -> None:
        step = execution.step_index  # 1-based once the event is recorded
        if step in self._change_points:
            # Demote the thread that just ran; successive change points use
            # decreasing priorities so later demotions rank even lower.
            self._change_points.discard(step)
            rank = len(self._change_points)
            self._priorities[event.tid] = float(rank) / self.depth
        if step > self.length_estimate:
            self.length_estimate = step

    def end(self, result: "ExecutionResult", execution: "Executor") -> None:
        # Track the longest observed execution as the next k estimate.
        self.length_estimate = max(self.length_estimate, result.steps)
