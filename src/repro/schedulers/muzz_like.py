"""A MUZZ-style scheduler: static random thread priorities, no mid-run control.

Paper Section 5.1: the authors attempted to reproduce MUZZ's interleaving
exploration — "(1) changing OS thread priorities on creation and (2) [...]
per-thread edge coverage" — and found that "even on simple benchmark
programs, this implementation was not able to trigger bugs in practice": on
the three-thread reorder example it failed after *millions* of executions.

This policy reproduces that negative result faithfully: every thread gets
one random priority at spawn time (the moment MUZZ calls
``sched_setscheduler``) and the highest-priority enabled thread always runs.
Without mid-execution priority changes, the schedule is essentially one
random thread *order*, which can never interleave a thread's steps between
another thread's steps — exactly why reorder-style bugs stay unreachable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import SeededPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import Candidate, Executor


class MuzzLikePolicy(SeededPolicy):
    """Static per-thread random priorities assigned once at creation."""

    def begin(self, execution: "Executor") -> None:
        self._priorities: dict[int, float] = {}

    def _priority(self, tid: int) -> float:
        if tid not in self._priorities:
            # The one-and-only scheduling decision for this thread's life.
            self._priorities[tid] = self.rng.random()
        return self._priorities[tid]

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        return max(candidates, key=lambda c: self._priority(c.tid))
