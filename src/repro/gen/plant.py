"""Bug-planting transforms over generated :class:`ProgramSpec` s.

Each transform perturbs exactly one site of a crash-free base spec and
returns the mutated spec together with machine-readable
:class:`GroundTruth` — the planted label that the differential oracle
(:mod:`repro.gen.oracle`) later compares tool results and sanitizer
reports against.

The three planted kinds, their observable crash and the online sanitizers
expected to flag them:

Every transform *prepends* its planted sections at position 0 of the
involved thread bodies — before any condvar or barrier op, so nothing in
the program's synchronization skeleton can order the two sections and the
bug is reachable under every scheduler (a mid-body plant could end up
barrier-ordered against every partner section, making the "planted" bug
statically impossible).  Run-to-completion of the partner thread means the
counter plants need exactly one preemption inside the window.

``race``
    Prepend an *unlocked* counter update window (``ctr_read``, ``window``
    padding ops, ``ctr_write``) to the victim thread and a properly locked
    partner update section to a second thread.  One preemption inside the
    window loses an update and the main thread's final counter assertion
    fails.  Crash: ``assertion``; expected sanitizers: ``race``
    (FastTrack) and ``lockset`` (Eraser).  Minimal depth 1.

``atomicity``
    Same shape, but the victim's read and write each hold the mutex — the
    atomicity of the read-modify-write is what breaks, not the locking
    discipline.  Every access is locked, so no sanitizer fires by design:
    the planted bug is *invisible* to the online sanitizers and measures
    their false-negative blind spot.  Crash: ``assertion``; minimal
    depth 1 (preempt in the unlocked gap; the partner runs to completion).

``deadlock``
    Prepend ABBA sections over two fresh mutexes to two thread bodies
    (lock-order inversion).  Crash: ``deadlock``; expected sanitizer:
    ``lockorder`` (the inverted order is visible in completed runs too).
    Minimal depth 2 — each thread must be preempted inside its window.

``none`` keeps the base spec: the corpus share with no planted bug is what
false-positive rates are measured on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from repro.gen.synth import (
    BUG_KINDS,
    OpSpec,
    ProgramSpec,
    ThreadSpec,
    compute_budget,
)

#: GroundTruth.kind -> (crash outcome, expected sanitizers, minimal depth).
_KIND_TABLE: dict[str, tuple[str, tuple[str, ...], int]] = {
    "race": ("assertion", ("race", "lockset"), 1),
    "atomicity": ("assertion", (), 1),
    "deadlock": ("deadlock", ("lockorder",), 2),
    "none": ("", (), 0),
}


@dataclass(frozen=True)
class GroundTruth:
    """Machine-readable label of the planted bug.

    ``threads`` are the involved tids (spec thread ``i`` runs as tid
    ``i + 1``; the asserting main thread is tid 0 and never listed).
    ``objects`` name the involved shared objects (``var:``/``mutex:``
    qualified); ``ops`` are abstract ``T<tid>:<op>(<object>)`` descriptors
    of the planted window.  ``min_depth`` is the minimal number of
    scheduler preemptions needed to expose the bug; ``window`` the number
    of padding ops widening the vulnerable window (the difficulty knob).
    """

    kind: str
    crash_outcome: str
    sanitizers: tuple[str, ...]
    threads: tuple[int, ...]
    objects: tuple[str, ...]
    ops: tuple[str, ...]
    min_depth: int
    window: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "crash_outcome": self.crash_outcome,
            "sanitizers": list(self.sanitizers),
            "threads": list(self.threads),
            "objects": list(self.objects),
            "ops": list(self.ops),
            "min_depth": self.min_depth,
            "window": self.window,
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "GroundTruth":
        return GroundTruth(
            kind=payload["kind"],
            crash_outcome=payload["crash_outcome"],
            sanitizers=tuple(payload["sanitizers"]),
            threads=tuple(payload["threads"]),
            objects=tuple(payload["objects"]),
            ops=tuple(payload["ops"]),
            min_depth=payload["min_depth"],
            window=payload["window"],
        )


def plant_bug(
    spec: ProgramSpec, kind: str, rng: random.Random, window: int = 0
) -> tuple[ProgramSpec, GroundTruth]:
    """Inject ``kind`` into ``spec``; returns the mutated spec + label."""
    if kind not in BUG_KINDS:
        raise ValueError(f"unknown bug kind {kind!r}; expected one of {BUG_KINDS}")
    if kind == "none":
        truth = GroundTruth(
            kind="none",
            crash_outcome="",
            sanitizers=(),
            threads=(),
            objects=(),
            ops=(),
            min_depth=0,
            window=0,
        )
        return spec, truth
    planters = {"race": _plant_race, "atomicity": _plant_atomicity, "deadlock": _plant_deadlock}
    spec, truth = planters[kind](spec, rng, window)
    return replace(spec, step_budget=compute_budget(spec)), truth


# ----------------------------------------------------------------------
# Counter-section surgery (race + atomicity)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Section:
    """A counter-update section located in a thread body."""

    thread_index: int
    start: int  # index of the lock op
    end: int  # index of the unlock op (inclusive)
    increment: int


def find_counter_sections(spec: ProgramSpec, var: str) -> list[_Section]:
    """Locate every ``[lock m, ctr_read v, pads.., ctr_write v, unlock m]``
    section updating counter ``var``.  Public so the property suite can
    cross-check labels against actual spec structure."""
    counter = next(c for c in spec.counters if c.var == var)
    sections: list[_Section] = []
    for thread_index, thread in enumerate(spec.threads):
        ops = thread.ops
        for i, op in enumerate(ops):
            if op.kind != "ctr_read" or op.target != var:
                continue
            if i == 0 or ops[i - 1].kind != "lock" or ops[i - 1].target != counter.mutex:
                continue
            j = i + 1
            while j < len(ops) and not (ops[j].kind == "ctr_write" and ops[j].target == var):
                j += 1
            if j >= len(ops):
                continue
            k = j + 1
            if k < len(ops) and ops[k].kind == "unlock" and ops[k].target == counter.mutex:
                sections.append(
                    _Section(thread_index=thread_index, start=i - 1, end=k, increment=ops[j].value)
                )
    return sections


def _pads(rng: random.Random, tid: int, count: int) -> list[OpSpec]:
    ops = []
    for _ in range(count):
        if rng.random() < 0.5:
            ops.append(OpSpec("read", f"p{tid}"))
        else:
            ops.append(OpSpec("write", f"p{tid}", value=rng.randint(0, 9)))
    return ops


def _prepend(spec: ProgramSpec, thread_index: int, new_ops: list[OpSpec]) -> ProgramSpec:
    threads = list(spec.threads)
    threads[thread_index] = ThreadSpec(ops=tuple(new_ops) + threads[thread_index].ops)
    return replace(spec, threads=tuple(threads))


def _bump_expected(spec: ProgramSpec, var: str, delta: int) -> ProgramSpec:
    counters = tuple(
        replace(c, expected=c.expected + delta) if c.var == var else c
        for c in spec.counters
    )
    return replace(spec, counters=counters)


def _plant_counter_pair(
    spec: ProgramSpec, rng: random.Random, window: int, kind: str
) -> tuple[ProgramSpec, GroundTruth]:
    """Shared body of the race/atomicity plants: a vulnerable update window
    on a victim thread + a locked partner update, both at body position 0
    (the co-reachability argument in the module docstring)."""
    counter = rng.choice(spec.counters)
    var, mutex = counter.var, counter.mutex
    victim_index, partner_index = rng.sample(range(len(spec.threads)), 2)
    victim_tid, partner_tid = victim_index + 1, partner_index + 1
    victim_inc, partner_inc = rng.randint(1, 5), rng.randint(1, 5)
    pads = _pads(rng, victim_tid, window)
    if kind == "race":
        victim_ops = [
            OpSpec("ctr_read", var),
            *pads,
            OpSpec("ctr_write", var, value=victim_inc),
        ]
        involved = (f"T{victim_tid}:r(var:{var})", f"T{victim_tid}:w(var:{var})")
    else:
        victim_ops = [
            OpSpec("lock", mutex),
            OpSpec("ctr_read", var),
            OpSpec("unlock", mutex),
            *pads,
            OpSpec("lock", mutex),
            OpSpec("ctr_write", var, value=victim_inc),
            OpSpec("unlock", mutex),
        ]
        involved = (
            f"T{victim_tid}:lock(mutex:{mutex})",
            f"T{victim_tid}:r(var:{var})",
            f"T{victim_tid}:unlock(mutex:{mutex})",
            f"T{victim_tid}:lock(mutex:{mutex})",
            f"T{victim_tid}:w(var:{var})",
            f"T{victim_tid}:unlock(mutex:{mutex})",
        )
    partner_ops = [
        OpSpec("lock", mutex),
        OpSpec("ctr_read", var),
        OpSpec("ctr_write", var, value=partner_inc),
        OpSpec("unlock", mutex),
    ]
    mutated = _prepend(spec, victim_index, victim_ops)
    mutated = _prepend(mutated, partner_index, partner_ops)
    mutated = _bump_expected(mutated, var, victim_inc + partner_inc)
    crash, sanitizers, depth = _KIND_TABLE[kind]
    truth = GroundTruth(
        kind=kind,
        crash_outcome=crash,
        sanitizers=sanitizers,
        threads=(victim_tid, partner_tid),
        objects=(f"var:{var}", f"mutex:{mutex}"),
        ops=involved,
        min_depth=depth,
        window=window,
    )
    return mutated, truth


def _plant_race(
    spec: ProgramSpec, rng: random.Random, window: int
) -> tuple[ProgramSpec, GroundTruth]:
    return _plant_counter_pair(spec, rng, window, "race")


def _plant_atomicity(
    spec: ProgramSpec, rng: random.Random, window: int
) -> tuple[ProgramSpec, GroundTruth]:
    return _plant_counter_pair(spec, rng, window, "atomicity")


# ----------------------------------------------------------------------
# Deadlock (lock-order inversion)
# ----------------------------------------------------------------------
def _plant_deadlock(
    spec: ProgramSpec, rng: random.Random, window: int
) -> tuple[ProgramSpec, GroundTruth]:
    first_index, second_index = sorted(rng.sample(range(len(spec.threads)), 2))
    mutex_a, mutex_b = "dlA", "dlB"
    tid_a, tid_b = first_index + 1, second_index + 1
    section_a = [
        OpSpec("lock", mutex_a),
        *_pads(rng, tid_a, window),
        OpSpec("lock", mutex_b),
        OpSpec("unlock", mutex_b),
        OpSpec("unlock", mutex_a),
    ]
    section_b = [
        OpSpec("lock", mutex_b),
        *_pads(rng, tid_b, window),
        OpSpec("lock", mutex_a),
        OpSpec("unlock", mutex_a),
        OpSpec("unlock", mutex_b),
    ]
    threads = list(spec.threads)
    threads[first_index] = ThreadSpec(ops=tuple(section_a) + threads[first_index].ops)
    threads[second_index] = ThreadSpec(ops=tuple(section_b) + threads[second_index].ops)
    mutated = replace(
        spec, threads=tuple(threads), mutexes=spec.mutexes + (mutex_a, mutex_b)
    )
    crash, sanitizers, depth = _KIND_TABLE["deadlock"]
    truth = GroundTruth(
        kind="deadlock",
        crash_outcome=crash,
        sanitizers=sanitizers,
        threads=(tid_a, tid_b),
        objects=(f"mutex:{mutex_a}", f"mutex:{mutex_b}"),
        ops=(
            f"T{tid_a}:lock(mutex:{mutex_a})",
            f"T{tid_a}:lock(mutex:{mutex_b})",
            f"T{tid_b}:lock(mutex:{mutex_b})",
            f"T{tid_b}:lock(mutex:{mutex_a})",
        ),
        min_depth=depth,
        window=window,
    )
    return mutated, truth


# ----------------------------------------------------------------------
# Consistency checking
# ----------------------------------------------------------------------
def validate(spec: ProgramSpec, truth: GroundTruth) -> None:
    """Raise ``AssertionError`` unless the label matches the spec structure.

    This is the internal-consistency oracle pinned by the property suite:
    every claim the ground truth makes (kind table, involved threads,
    involved objects, the actual shape of the planted site) is re-derived
    from the spec and compared.
    """
    if truth.kind not in BUG_KINDS:
        raise AssertionError(f"unknown ground-truth kind {truth.kind!r}")
    crash, sanitizers, depth = _KIND_TABLE[truth.kind]
    if truth.crash_outcome != crash:
        raise AssertionError(
            f"{truth.kind}: crash_outcome {truth.crash_outcome!r} != {crash!r}"
        )
    if truth.sanitizers != sanitizers:
        raise AssertionError(f"{truth.kind}: sanitizers {truth.sanitizers} != {sanitizers}")
    if truth.kind != "none" and truth.min_depth != depth:
        raise AssertionError(f"{truth.kind}: min_depth {truth.min_depth} != {depth}")
    if truth.window < 0:
        raise AssertionError("window must be >= 0")
    n_threads = len(spec.threads)
    if any(not (1 <= tid <= n_threads) for tid in truth.threads):
        raise AssertionError(f"ground-truth tids {truth.threads} out of range 1..{n_threads}")
    known = {f"var:{v.name}" for v in spec.vars} | {f"mutex:{m}" for m in spec.mutexes}
    for obj in truth.objects:
        if obj not in known:
            raise AssertionError(f"ground-truth object {obj!r} not in spec")

    if truth.kind == "none":
        if truth.threads or truth.objects or truth.ops:
            raise AssertionError("kind 'none' must carry no threads/objects/ops")
        _check_clean_counters(spec)
    elif truth.kind in ("race", "atomicity"):
        _check_counter_plant(spec, truth)
    elif truth.kind == "deadlock":
        _check_deadlock_plant(spec, truth)


def _sum_increments(spec: ProgramSpec, var: str) -> int:
    return sum(
        op.value for thread in spec.threads for op in thread.ops
        if op.kind == "ctr_write" and op.target == var
    )


def _check_expected_total(spec: ProgramSpec, var: str, expected: int) -> None:
    init = next(v.init for v in spec.vars if v.name == var)
    total = init + _sum_increments(spec, var)
    if total != expected:
        raise AssertionError(
            f"counter {var}: increments sum to {total}, expected {expected}"
        )


def _check_clean_counters(spec: ProgramSpec) -> None:
    for counter in spec.counters:
        _check_expected_total(spec, counter.var, counter.expected)
        for index, thread in enumerate(spec.threads):
            if _find_unguarded_pair(thread.ops, counter.var, counter.mutex) is not None:
                raise AssertionError(
                    f"bug-free spec has an unguarded update of {counter.var!r} "
                    f"in T{index + 1}"
                )


def _check_counter_plant(spec: ProgramSpec, truth: GroundTruth) -> None:
    victim_tid = truth.threads[0]
    var = truth.objects[0].removeprefix("var:")
    mutex = truth.objects[1].removeprefix("mutex:")
    if not any(c.var == var and c.mutex == mutex for c in spec.counters):
        raise AssertionError(f"{truth.kind}: {var!r}/{mutex!r} is not a spec counter")
    ops = spec.threads[victim_tid - 1].ops
    if truth.kind == "race":
        # The victim must have an unguarded ctr_read/ctr_write pair.
        site = _find_unguarded_pair(ops, var, mutex)
        if site is None:
            raise AssertionError(f"race: no unguarded update of {var!r} in T{victim_tid}")
        gap = site[1] - site[0] - 1
    else:
        site = _find_split_pair(ops, var, mutex)
        if site is None:
            raise AssertionError(
                f"atomicity: no split locked update of {var!r} in T{victim_tid}"
            )
        gap = site[1] - site[0] - 3  # exclude the unlock/lock bracketing the gap
    if gap != truth.window:
        raise AssertionError(f"{truth.kind}: window {truth.window} != actual gap {gap}")
    _check_expected_total(spec, var, next(c.expected for c in spec.counters if c.var == var))
    # The partner thread's locked update section must sit at body position 0
    # (the co-reachability guarantee — see module docstring).
    partner_sections = [
        s
        for s in find_counter_sections(spec, var)
        if s.thread_index + 1 == truth.threads[1] and s.start == 0
    ]
    if not partner_sections:
        raise AssertionError(
            f"{truth.kind}: no locked partner section at body start for {var!r}"
        )


def _find_unguarded_pair(ops, var: str, mutex: str):
    for i, op in enumerate(ops):
        if op.kind != "ctr_read" or op.target != var:
            continue
        if i > 0 and ops[i - 1].kind == "lock" and ops[i - 1].target == mutex:
            continue  # still guarded
        for j in range(i + 1, len(ops)):
            if ops[j].kind == "ctr_write" and ops[j].target == var:
                return (i, j)
            if ops[j].kind in ("lock", "unlock"):
                break
    return None


def _find_split_pair(ops, var: str, mutex: str):
    for i, op in enumerate(ops):
        if op.kind != "ctr_read" or op.target != var:
            continue
        ok = (
            i > 0
            and ops[i - 1].kind == "lock"
            and ops[i - 1].target == mutex
            and i + 1 < len(ops)
            and ops[i + 1].kind == "unlock"
            and ops[i + 1].target == mutex
        )
        if not ok:
            continue
        for j in range(i + 2, len(ops)):
            if ops[j].kind == "ctr_write" and ops[j].target == var:
                bracketed = (
                    ops[j - 1].kind == "lock"
                    and ops[j - 1].target == mutex
                    and j + 1 < len(ops)
                    and ops[j + 1].kind == "unlock"
                    and ops[j + 1].target == mutex
                )
                if bracketed:
                    return (i, j)
                break
    return None


def _check_deadlock_plant(spec: ProgramSpec, truth: GroundTruth) -> None:
    mutex_a = truth.objects[0].removeprefix("mutex:")
    mutex_b = truth.objects[1].removeprefix("mutex:")
    tid_a, tid_b = truth.threads
    order_a = _first_lock_order(spec.threads[tid_a - 1].ops, mutex_a, mutex_b)
    order_b = _first_lock_order(spec.threads[tid_b - 1].ops, mutex_a, mutex_b)
    if order_a != (mutex_a, mutex_b) or order_b != (mutex_b, mutex_a):
        raise AssertionError(
            f"deadlock: threads T{tid_a}/T{tid_b} do not lock "
            f"{mutex_a}/{mutex_b} in inverted order"
        )


def _first_lock_order(ops, mutex_a: str, mutex_b: str):
    seen = []
    for op in ops:
        if op.kind == "lock" and op.target in (mutex_a, mutex_b) and op.target not in seen:
            seen.append(op.target)
        if len(seen) == 2:
            break
    return tuple(seen)
