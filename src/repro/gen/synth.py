"""Seeded synthesis of well-formed DSL programs (the scenario generator).

The synthesizer draws a declarative :class:`ProgramSpec` — shared objects
plus one flat, well-nested operation list per thread — from a
``random.Random`` seeded with the ``(seed, config)`` pair, then compiles the
spec into an ordinary :class:`~repro.runtime.program.Program`.  Splitting
generation (all randomness) from interpretation (none) is what makes every
guarantee checkable:

* **determinism** — same seed + config → byte-identical spec JSON, ground
  truth and program name; generation never consults global state.
* **termination** — thread bodies are loop-free (the single condvar-wait
  loop is bounded by the number of broadcasts), so any schedule finishes
  within the declared ``step_budget``.
* **base-program correctness** — before bug planting the spec is crash-free
  *and* sanitizer-clean under every schedule, by construction:

  - locks/semaphores are acquired in ascending global rank, well nested;
  - every multi-thread plain variable is a *counter* updated only inside
    its dedicated mutex section and asserted by the main thread after all
    joins (the crash oracle bug planting later subverts);
  - condition variables follow the monitor handshake (flag write + broadcast
    under the mutex; consumers re-check the flag in a wait loop), ordered so
    producers can never block behind their consumers;
  - barriers are arrived at only at nesting depth zero, by exactly their
    member threads, in a globally consistent round order.

Planting (:mod:`repro.gen.plant`) then perturbs one spec site to inject a
known bug and records the :class:`~repro.gen.plant.GroundTruth`.

Generated programs are addressable by name — ``gen:<seed>`` with default
knobs, ``gen:<seed>:<token>`` otherwise — so the benchmark registry, the
CLI, campaign workers and replay all reconstruct the identical program from
the name alone (serial == parallel for free).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Iterator

from repro.runtime.program import Program

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.gen.plant import GroundTruth

#: Program-name namespace of generated scenarios.
GEN_PREFIX = "gen:"

#: Bug kinds the planting stage can inject ("none" = keep the base program).
BUG_KINDS = ("race", "deadlock", "atomicity", "none")


# ----------------------------------------------------------------------
# Generator knobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GenConfig:
    """Size/shape knobs of the synthesizer.

    All fields are integers (probabilities as percents) so a config is
    exactly representable in a program-name token and round-trips
    byte-identically through :meth:`to_token`/:meth:`from_token`.
    """

    #: Worker threads per program, drawn from [2, max_threads].
    max_threads: int = 4
    #: Phase-2 blocks per thread, drawn from [1, max_blocks].
    max_blocks: int = 6
    #: Padding ops inside planted bug windows, drawn from [0, max_window]
    #: (the controlled-interleaving-depth knob).
    max_window: int = 2
    #: Asserted shared counters, drawn from [1, max_counters].
    max_counters: int = 2
    #: Extra (non-counter) mutexes available for nested sections.
    max_extra_mutexes: int = 2
    #: Maximum critical-section nesting depth (ascending lock rank).
    max_nesting: int = 2
    #: Counting semaphores, drawn from [0, max_sems]; init >= 1.
    max_sems: int = 1
    #: Percent chance the program gets a barrier over >= 2 threads.
    barrier_pct: int = 35
    #: Percent chance the program gets a condvar producer/consumer handshake.
    condvar_pct: int = 35
    #: Relative weights of the planted bug kinds, in BUG_KINDS order.
    bug_mix: tuple[int, int, int, int] = (2, 2, 2, 2)

    _TOKEN_FIELDS = (
        ("t", "max_threads"),
        ("b", "max_blocks"),
        ("w", "max_window"),
        ("c", "max_counters"),
        ("x", "max_extra_mutexes"),
        ("n", "max_nesting"),
        ("s", "max_sems"),
        ("pb", "barrier_pct"),
        ("pc", "condvar_pct"),
    )

    def __post_init__(self) -> None:
        if self.max_threads < 2:
            raise ValueError("GenConfig.max_threads must be >= 2")
        if self.max_counters < 1:
            raise ValueError("GenConfig.max_counters must be >= 1")
        if len(self.bug_mix) != len(BUG_KINDS) or any(w < 0 for w in self.bug_mix):
            raise ValueError(f"GenConfig.bug_mix needs {len(BUG_KINDS)} weights >= 0")
        if sum(self.bug_mix) == 0:
            raise ValueError("GenConfig.bug_mix must have a positive total weight")

    def to_token(self) -> str:
        """Canonical name token: non-default fields only; "" for defaults."""
        default = _DEFAULT_CONFIG
        parts = [
            f"{key}={getattr(self, fname)}"
            for key, fname in self._TOKEN_FIELDS
            if getattr(self, fname) != getattr(default, fname)
        ]
        if self.bug_mix != default.bug_mix:
            mix = "".join(f"{k[0]}{w}" for k, w in zip(BUG_KINDS, self.bug_mix))
            parts.append(f"mix={mix}")
        return ",".join(parts)

    @classmethod
    def from_token(cls, token: str) -> "GenConfig":
        """Parse a :meth:`to_token` string back into a config."""
        if not token:
            return cls()
        kwargs: dict[str, Any] = {}
        short = {key: fname for key, fname in cls._TOKEN_FIELDS}
        grammar = f"valid knobs: {', '.join(f'{k}=<int>' for k in short)}, mix=r#d#a#n#"
        for part in token.split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed gen config token part {part!r}: "
                    f"expected <knob>=<value> ({grammar})"
                )
            if key == "mix":
                kwargs["bug_mix"] = _parse_mix(value)
            elif key in short:
                try:
                    kwargs[short[key]] = int(value)
                except ValueError:
                    raise ValueError(
                        f"malformed gen config token part {part!r}: "
                        f"knob {key!r} needs an integer, got {value!r} ({grammar})"
                    ) from None
            else:
                raise ValueError(
                    f"unknown gen config token key {key!r} in part {part!r} ({grammar})"
                )
        return cls(**kwargs)


def _parse_mix(value: str) -> tuple[int, int, int, int]:
    weights: list[int] = []
    index = 0
    for kind in BUG_KINDS:
        if index >= len(value) or value[index] != kind[0]:
            raise ValueError(f"malformed bug mix {value!r}; expected r..d..a..n..")
        index += 1
        digits = ""
        while index < len(value) and value[index].isdigit():
            digits += value[index]
            index += 1
        if not digits:
            raise ValueError(f"malformed bug mix {value!r}: no weight for {kind!r}")
        weights.append(int(digits))
    if index != len(value):
        raise ValueError(f"malformed bug mix {value!r}: trailing {value[index:]!r}")
    return tuple(weights)  # type: ignore[return-value]


_DEFAULT_CONFIG = GenConfig()


# ----------------------------------------------------------------------
# The spec IR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """One interpreted operation of a generated thread body.

    ``kind`` is one of: read, write, add, cas, lock, unlock, acquire,
    release, arrive, pause, ctr_read, ctr_write, cv_produce, cv_consume.
    ``target`` names the shared object; ``value``/``aux`` carry operands
    (write value, rmw delta, cas new/expected).
    """

    kind: str
    target: str = ""
    value: int = 0
    aux: int = 0

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        if self.target:
            payload["target"] = self.target
        if self.value:
            payload["value"] = self.value
        if self.aux:
            payload["aux"] = self.aux
        return payload

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "OpSpec":
        return OpSpec(
            kind=payload["kind"],
            target=payload.get("target", ""),
            value=payload.get("value", 0),
            aux=payload.get("aux", 0),
        )


@dataclass(frozen=True)
class VarSpec:
    """A shared variable.  ``mode``: counter | guarded | atomic | private |
    flag.  ``guard`` is the owning mutex for counter/guarded/flag vars;
    ``owner`` the owning tid for private vars."""

    name: str
    init: int = 0
    mode: str = "private"
    guard: str = ""
    owner: int = 0


@dataclass(frozen=True)
class CounterSpec:
    """An asserted counter: updated under ``mutex``, checked by main."""

    var: str
    mutex: str
    expected: int


@dataclass(frozen=True)
class SemSpec:
    name: str
    init: int


@dataclass(frozen=True)
class BarrierSpec:
    name: str
    members: tuple[int, ...]  # tids; parties == len(members)
    rounds: int


@dataclass(frozen=True)
class CondVarSpec:
    name: str
    mutex: str
    flag: str
    producer: int  # tid
    consumers: tuple[int, ...]  # tids


@dataclass(frozen=True)
class ThreadSpec:
    ops: tuple[OpSpec, ...]


@dataclass(frozen=True)
class ProgramSpec:
    """The complete declarative description of one generated program."""

    seed: int
    config_token: str
    vars: tuple[VarSpec, ...]
    mutexes: tuple[str, ...]  # global lock rank == tuple order
    sems: tuple[SemSpec, ...]
    barriers: tuple[BarrierSpec, ...]
    condvars: tuple[CondVarSpec, ...]
    counters: tuple[CounterSpec, ...]
    threads: tuple[ThreadSpec, ...]
    step_budget: int
    mc_supported: bool

    @property
    def name(self) -> str:
        return spec_name(self.seed, self.config_token)

    @property
    def total_ops(self) -> int:
        return sum(len(thread.ops) for thread in self.threads)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "config_token": self.config_token,
            "vars": [
                {
                    "name": v.name,
                    "init": v.init,
                    "mode": v.mode,
                    "guard": v.guard,
                    "owner": v.owner,
                }
                for v in self.vars
            ],
            "mutexes": list(self.mutexes),
            "sems": [{"name": s.name, "init": s.init} for s in self.sems],
            "barriers": [
                {"name": b.name, "members": list(b.members), "rounds": b.rounds}
                for b in self.barriers
            ],
            "condvars": [
                {
                    "name": c.name,
                    "mutex": c.mutex,
                    "flag": c.flag,
                    "producer": c.producer,
                    "consumers": list(c.consumers),
                }
                for c in self.condvars
            ],
            "counters": [
                {"var": c.var, "mutex": c.mutex, "expected": c.expected}
                for c in self.counters
            ],
            "threads": [[op.to_dict() for op in t.ops] for t in self.threads],
            "step_budget": self.step_budget,
            "mc_supported": self.mc_supported,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON form of the spec."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ProgramSpec":
        return ProgramSpec(
            seed=payload["seed"],
            config_token=payload["config_token"],
            vars=tuple(
                VarSpec(
                    name=v["name"],
                    init=v["init"],
                    mode=v["mode"],
                    guard=v["guard"],
                    owner=v["owner"],
                )
                for v in payload["vars"]
            ),
            mutexes=tuple(payload["mutexes"]),
            sems=tuple(SemSpec(name=s["name"], init=s["init"]) for s in payload["sems"]),
            barriers=tuple(
                BarrierSpec(
                    name=b["name"], members=tuple(b["members"]), rounds=b["rounds"]
                )
                for b in payload["barriers"]
            ),
            condvars=tuple(
                CondVarSpec(
                    name=c["name"],
                    mutex=c["mutex"],
                    flag=c["flag"],
                    producer=c["producer"],
                    consumers=tuple(c["consumers"]),
                )
                for c in payload["condvars"]
            ),
            counters=tuple(
                CounterSpec(var=c["var"], mutex=c["mutex"], expected=c["expected"])
                for c in payload["counters"]
            ),
            threads=tuple(
                ThreadSpec(ops=tuple(OpSpec.from_dict(op) for op in ops))
                for ops in payload["threads"]
            ),
            step_budget=payload["step_budget"],
            mc_supported=payload["mc_supported"],
        )


def spec_name(seed: int, config_token: str = "") -> str:
    """The registry name of a generated program."""
    return f"{GEN_PREFIX}{seed}:{config_token}" if config_token else f"{GEN_PREFIX}{seed}"


@dataclass(frozen=True)
class GeneratedProgram:
    """A synthesized scenario: spec, planted-bug label, runnable program."""

    spec: ProgramSpec
    ground_truth: "GroundTruth"
    program: Program

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> dict[str, Any]:
        return {"spec": self.spec.to_dict(), "ground_truth": self.ground_truth.to_dict()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Synthesis
# ----------------------------------------------------------------------
def _rng_for(seed: int, token: str) -> random.Random:
    # String seeding is stable across processes and Python versions
    # (random.Random hashes str seeds with sha512, not PYTHONHASHSEED).
    return random.Random(f"rff-gen:{token}:{seed}")


def synthesize(seed: int, config: GenConfig | None = None) -> GeneratedProgram:
    """Deterministically synthesize one program (base draw + bug plant)."""
    from repro.gen.plant import plant_bug

    config = config or _DEFAULT_CONFIG
    token = config.to_token()
    rng = _rng_for(seed, token)
    spec = _synthesize_base(seed, token, rng, config)
    kind = rng.choices(BUG_KINDS, weights=config.bug_mix, k=1)[0]
    window = rng.randint(0, config.max_window)
    spec, truth = plant_bug(spec, kind, rng, window=window)
    return GeneratedProgram(spec=spec, ground_truth=truth, program=compile_spec(spec, truth))


def corpus(seed: int, count: int, config: GenConfig | None = None) -> list[GeneratedProgram]:
    """``count`` programs with consecutive seeds ``seed .. seed+count-1``."""
    if count < 1:
        raise ValueError("corpus needs count >= 1")
    return [synthesize(seed + index, config) for index in range(count)]


@lru_cache(maxsize=512)
def from_name(name: str) -> GeneratedProgram:
    """Reconstruct a generated program from its ``gen:`` name alone."""
    if not name.startswith(GEN_PREFIX):
        raise KeyError(f"not a generated-program name: {name!r}")
    body = name[len(GEN_PREFIX):]
    seed_text, _, token = body.partition(":")
    try:
        seed = int(seed_text)
    except ValueError:
        raise KeyError(
            f"malformed generated-program name {name!r}; expected gen:<seed>[:<token>]"
        ) from None
    try:
        config = GenConfig.from_token(token)
    except ValueError as exc:
        raise KeyError(f"malformed generated-program name {name!r}: {exc}") from None
    return synthesize(seed, config)


def _synthesize_base(
    seed: int, token: str, rng: random.Random, config: GenConfig
) -> ProgramSpec:
    """Draw a crash-free, sanitizer-clean base spec (see module docstring)."""
    n_threads = rng.randint(2, config.max_threads)
    tids = list(range(1, n_threads + 1))  # main is tid 0

    variables: list[VarSpec] = []
    mutexes: list[str] = []

    # Counters: one dedicated mutex each, asserted by main after the joins.
    n_counters = rng.randint(1, config.max_counters)
    counters_wip: list[dict[str, Any]] = []
    for index in range(n_counters):
        var_name, mutex_name = f"c{index}", f"mc{index}"
        mutexes.append(mutex_name)
        variables.append(VarSpec(var_name, init=rng.randint(0, 5), mode="counter", guard=mutex_name))
        counters_wip.append({"var": var_name, "mutex": mutex_name, "total": 0})

    # Extra mutexes guard one plain variable each (nested-section material).
    n_extra = rng.randint(0, config.max_extra_mutexes)
    guarded: list[tuple[str, str]] = []  # (var, mutex), ascending rank
    for index in range(n_extra):
        var_name, mutex_name = f"g{index}", f"mg{index}"
        mutexes.append(mutex_name)
        variables.append(VarSpec(var_name, init=0, mode="guarded", guard=mutex_name))
        guarded.append((var_name, mutex_name))

    # Atomic vars: rmw/cas only, race-free without locks.
    atomics = [f"a{index}" for index in range(rng.randint(0, 2))]
    variables.extend(VarSpec(name, init=0, mode="atomic") for name in atomics)

    # One private scratch var per thread (padding / busywork material).
    for tid in tids:
        variables.append(VarSpec(f"p{tid}", init=0, mode="private", owner=tid))

    sems = [
        SemSpec(f"s{index}", init=rng.randint(1, 2))
        for index in range(rng.randint(0, config.max_sems))
    ]

    barriers: list[BarrierSpec] = []
    if n_threads >= 2 and rng.randint(1, 100) <= config.barrier_pct:
        members = tuple(sorted(rng.sample(tids, rng.randint(2, n_threads))))
        barriers.append(BarrierSpec("bar0", members=members, rounds=rng.randint(1, 2)))

    condvars: list[CondVarSpec] = []
    if n_threads >= 2 and rng.randint(1, 100) <= config.condvar_pct:
        producer = rng.choice(tids)
        others = [tid for tid in tids if tid != producer]
        consumers = tuple(sorted(rng.sample(others, rng.randint(1, len(others)))))
        mutex_name, flag_name = "mcv0", "f0"
        mutexes.append(mutex_name)
        variables.append(VarSpec(flag_name, init=0, mode="flag", guard=mutex_name))
        condvars.append(
            CondVarSpec("cv0", mutex=mutex_name, flag=flag_name, producer=producer, consumers=consumers)
        )

    rank = {name: index for index, name in enumerate(mutexes)}

    # Per-thread bodies, built phase by phase (see module docstring).
    bodies: list[list[OpSpec]] = [[] for _ in tids]

    def emit_counter_update(body: list[OpSpec], tid: int, counter: dict[str, Any]) -> None:
        increment = rng.randint(1, 5)
        counter["total"] += increment
        body.append(OpSpec("lock", counter["mutex"]))
        body.append(OpSpec("ctr_read", counter["var"]))
        for _ in range(rng.randint(0, config.max_window)):
            body.append(_private_op(rng, tid))
        body.append(OpSpec("ctr_write", counter["var"], value=increment))
        body.append(OpSpec("unlock", counter["mutex"]))

    def emit_locked_block(body: list[OpSpec], tid: int, depth: int, min_rank: int) -> None:
        # A nested critical section over the guarded vars, ascending rank.
        available = [(v, m) for v, m in guarded if rank[m] >= min_rank]
        if not available:
            body.append(_private_op(rng, tid))
            return
        var_name, mutex_name = rng.choice(available)
        body.append(OpSpec("lock", mutex_name))
        for _ in range(rng.randint(1, 2)):
            if rng.random() < 0.5:
                body.append(OpSpec("read", var_name))
            else:
                body.append(OpSpec("write", var_name, value=rng.randint(0, 9)))
        if depth + 1 < config.max_nesting and rng.random() < 0.4:
            emit_locked_block(body, tid, depth + 1, rank[mutex_name] + 1)
        body.append(OpSpec("unlock", mutex_name))

    for index, tid in enumerate(tids):
        body = bodies[index]
        # Phase 1: condvar production (never blocks behind consumers).
        for cv in condvars:
            if cv.producer == tid:
                body.append(OpSpec("cv_produce", cv.name))
        # Phase 2: general blocks.
        for _ in range(rng.randint(1, config.max_blocks)):
            choice = rng.random()
            if choice < 0.35:
                emit_counter_update(body, tid, rng.choice(counters_wip))
            elif choice < 0.55:
                emit_locked_block(body, tid, 0, 0)
            elif choice < 0.70 and atomics:
                body.append(OpSpec("add", rng.choice(atomics), value=rng.randint(1, 3)))
            elif choice < 0.80 and sems:
                sem = rng.choice(sems)
                body.append(OpSpec("acquire", sem.name))
                body.append(_private_op(rng, tid))
                body.append(OpSpec("release", sem.name))
            elif choice < 0.90:
                body.append(_private_op(rng, tid))
            else:
                body.append(OpSpec("pause"))
        # Phase 3: condvar consumption.
        for cv in condvars:
            if tid in cv.consumers:
                body.append(OpSpec("cv_consume", cv.name))
        # Phase 4: barrier rounds (depth 0, consistent order across members).
        for barrier in barriers:
            if tid in barrier.members:
                for _ in range(barrier.rounds):
                    body.append(OpSpec("arrive", barrier.name))

    counters = tuple(
        CounterSpec(
            var=c["var"],
            mutex=c["mutex"],
            expected=next(v.init for v in variables if v.name == c["var"]) + c["total"],
        )
        for c in counters_wip
    )
    threads = tuple(ThreadSpec(ops=tuple(body)) for body in bodies)
    spec = ProgramSpec(
        seed=seed,
        config_token=token,
        vars=tuple(variables),
        mutexes=tuple(mutexes),
        sems=tuple(sems),
        barriers=tuple(barriers),
        condvars=tuple(condvars),
        counters=counters,
        threads=threads,
        step_budget=0,  # placeholder; computed below
        mc_supported=False,
    )
    total = spec.total_ops
    mc = n_threads <= 3 and total <= 30
    return replace(spec, step_budget=compute_budget(spec), mc_supported=mc)


def compute_budget(spec: ProgramSpec) -> int:
    """Step budget sufficient for any schedule of ``spec``.

    Every op costs O(1) events (cv_consume: lock + bounded flag re-checks +
    wait + unlock; wakeup re-acquires surface as scheduler steps, not new
    events); 4x plus spawn/join/assert slack is a safe, checkable bound.
    """
    return (
        4 * spec.total_ops
        + 10 * len(spec.threads)
        + 16 * len(spec.condvars)
        + 8 * len(spec.counters)
        + 64
    )


def _private_op(rng: random.Random, tid: int) -> OpSpec:
    name = f"p{tid}"
    if rng.random() < 0.5:
        return OpSpec("read", name)
    return OpSpec("write", name, value=rng.randint(0, 9))


# ----------------------------------------------------------------------
# Compilation: spec -> Program
# ----------------------------------------------------------------------
def compile_spec(spec: ProgramSpec, truth: "GroundTruth") -> Program:
    """Compile a spec into a runnable :class:`Program` (pure interpretation)."""
    cv_by_name = {cv.name: cv for cv in spec.condvars}

    def thread_body(t, ops: tuple[OpSpec, ...], objects: dict[str, Any]):
        saved: dict[str, Any] = {}
        for op in ops:
            kind = op.kind
            if kind == "read":
                yield t.read(objects[op.target])
            elif kind == "write":
                yield t.write(objects[op.target], op.value)
            elif kind == "add":
                yield t.add(objects[op.target], op.value)
            elif kind == "cas":
                yield t.cas(objects[op.target], op.aux, op.value)
            elif kind == "lock":
                yield t.lock(objects[op.target])
            elif kind == "unlock":
                yield t.unlock(objects[op.target])
            elif kind == "acquire":
                yield t.acquire(objects[op.target])
            elif kind == "release":
                yield t.release(objects[op.target])
            elif kind == "arrive":
                yield t.arrive(objects[op.target])
            elif kind == "pause":
                yield t.pause()
            elif kind == "ctr_read":
                saved[op.target] = yield t.read(objects[op.target])
            elif kind == "ctr_write":
                yield t.write(objects[op.target], saved[op.target] + op.value)
            elif kind == "cv_produce":
                # The flag is an atomic (cas/rmw are sync kinds): the DSL's
                # happens-before model orders wait's implicit mutex release
                # on the condvar location only, so a *plain* flag access
                # around a wait would be flagged by FastTrack.  The mutex is
                # still what makes check-then-wait lost-wakeup-free.
                cv = cv_by_name[op.target]
                yield t.lock(objects[cv.mutex])
                yield t.cas(objects[cv.flag], 0, 1)
                yield t.broadcast(objects[cv.name])
                yield t.unlock(objects[cv.mutex])
            elif kind == "cv_consume":
                cv = cv_by_name[op.target]
                yield t.lock(objects[cv.mutex])
                while not (yield t.cas(objects[cv.flag], 1, 1)):
                    yield t.wait(objects[cv.name], objects[cv.mutex])
                yield t.unlock(objects[cv.mutex])
            else:  # pragma: no cover - specs are validated at build time
                raise ValueError(f"unknown generated op kind {kind!r}")

    def main(t):
        objects: dict[str, Any] = {}
        for var in spec.vars:
            objects[var.name] = t.var(var.name, var.init)
        for name in spec.mutexes:
            objects[name] = t.mutex(name)
        for sem in spec.sems:
            objects[sem.name] = t.sem(sem.name, sem.init)
        for barrier in spec.barriers:
            objects[barrier.name] = t.barrier(barrier.name, len(barrier.members))
        for cv in spec.condvars:
            objects[cv.name] = t.cond(cv.name)
        handles = []
        for thread in spec.threads:
            handles.append((yield t.spawn(thread_body, thread.ops, objects)))
        for handle in handles:
            yield t.join(handle)
        for counter in spec.counters:
            total = yield t.read(objects[counter.var])
            t.require(
                total == counter.expected,
                f"counter {counter.var} == {total}, expected {counter.expected}: lost update",
            )

    bug_kinds = (truth.crash_outcome,) if truth.crash_outcome else ()
    return Program(
        name=spec.name,
        main=main,
        bug_kinds=frozenset(bug_kinds),
        suite="Generated",
        mc_supported=spec.mc_supported,
        description=(
            f"generated scenario (seed {spec.seed}, planted bug: {truth.kind}, "
            f"{len(spec.threads)} threads, {spec.total_ops} ops)"
        ),
        max_steps=spec.step_budget,
        extra={"ground_truth": truth.to_dict()},
    )


# ----------------------------------------------------------------------
# Hypothesis integration
# ----------------------------------------------------------------------
def gen_configs():
    """Hypothesis strategy over token-representable :class:`GenConfig`."""
    from hypothesis import strategies as st

    return st.builds(
        GenConfig,
        max_threads=st.integers(2, 5),
        max_blocks=st.integers(1, 7),
        max_window=st.integers(0, 3),
        max_counters=st.integers(1, 3),
        max_extra_mutexes=st.integers(0, 2),
        max_nesting=st.integers(1, 3),
        max_sems=st.integers(0, 2),
        barrier_pct=st.integers(0, 100),
        condvar_pct=st.integers(0, 100),
        bug_mix=st.tuples(*[st.integers(0, 3)] * 4).filter(lambda mix: sum(mix) > 0),
    )


def program_specs(configs=None, seeds=None):
    """Hypothesis strategy yielding :class:`GeneratedProgram` instances.

    Hypothesis drives the *knobs* (seed + config); the synthesizer itself
    stays seed-deterministic, which is exactly what the property suite pins.
    """
    from hypothesis import strategies as st

    configs = configs if configs is not None else gen_configs()
    seeds = seeds if seeds is not None else st.integers(0, 2**32 - 1)
    return st.builds(lambda seed, config: synthesize(seed, config), seeds, configs)


def iter_names(seed: int, count: int, config: GenConfig | None = None) -> Iterator[str]:
    """The registry names of :func:`corpus` without synthesizing anything."""
    token = (config or _DEFAULT_CONFIG).to_token()
    for index in range(count):
        yield spec_name(seed + index, token)
