"""Generative scenario frontier: seeded DSL program synthesis.

The benchmark registry models the paper's fixed 49-program corpus; this
package provides an *unbounded* scenario supply with ground truth:

* :mod:`repro.gen.synth` — a seeded synthesizer of well-formed DSL
  programs (threads, mutexes, condvars, semaphores, barriers, shared
  variables, nested critical sections) guaranteed to terminate under a
  declared step budget; same seed + knobs → byte-identical program spec.
* :mod:`repro.gen.plant` — bug-planting transforms that inject a data
  race, a lock-order-inversion deadlock, or an atomicity violation at a
  controlled interleaving depth and emit machine-readable
  :class:`~repro.gen.plant.GroundTruth` metadata.
* :mod:`repro.gen.oracle` — differential judgements of tool results and
  online-sanitizer reports against planted labels (true detections,
  false negatives, false positives).

Generated programs are first-class benchmark targets under the ``gen:``
namespace: ``repro.bench.get("gen:<seed>")`` (and therefore ``rff run``,
``rff fuzz``, campaigns, parallel workers, replay) resolves them by
re-synthesizing deterministically from the name alone.
"""

from repro.gen.oracle import SanitizerJudgement, judge_result, judge_sanitizers
from repro.gen.plant import GroundTruth, plant_bug
from repro.gen.synth import (
    GEN_PREFIX,
    GenConfig,
    GeneratedProgram,
    ProgramSpec,
    corpus,
    from_name,
    program_specs,
    synthesize,
)

__all__ = [
    "GEN_PREFIX",
    "GenConfig",
    "GeneratedProgram",
    "GroundTruth",
    "ProgramSpec",
    "SanitizerJudgement",
    "corpus",
    "from_name",
    "judge_result",
    "judge_sanitizers",
    "plant_bug",
    "program_specs",
    "synthesize",
]
