"""Differential judgements against planted ground truth.

The oracle compares two independent observation channels with the label
attached to every generated program:

* **crash channel** — did a testing tool's search (or a model-checker
  sweep) trigger the planted crash?  :func:`judge_result` classifies one
  :class:`~repro.harness.tools.BugSearchResult` as detected / missed /
  spurious / clean.
* **sanitizer channel** — did each online sanitizer fire on the program?
  :func:`judge_sanitizers` turns a pile of
  :class:`~repro.analysis.online.SanitizerReport` s into one
  :class:`SanitizerJudgement` per sanitizer (tp/fn/fp/tn), and
  :func:`aggregate_sanitizers` folds judgements over a corpus into the
  false-negative / false-positive rates that the CI baseline pins.

A *false negative* here is precise: the label says the sanitizer class
should flag this program (e.g. ``race`` for a stripped-lock plant) yet it
never fired across the whole measurement budget.  A *false positive* is a
sanitizer firing on a program whose label says it should stay silent —
including the crash-free ``none`` share of the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.gen.plant import GroundTruth

#: The online sanitizers the oracle scores (see repro.analysis.online).
SANITIZER_NAMES = ("race", "lockset", "lockorder")


def judge_result(truth: GroundTruth, result: Any) -> dict[str, Any]:
    """Classify one bug-search result against the planted label.

    ``result`` needs ``found`` and ``outcome`` attributes
    (:class:`~repro.harness.tools.BugSearchResult` qualifies).  Verdicts:
    ``detected`` (bug planted, crash found), ``missed`` (planted, not
    found), ``spurious`` (crash on a bug-free program — an executor or
    generator defect), ``clean`` (bug-free, no crash).
    """
    expected = bool(truth.crash_outcome)
    found = bool(getattr(result, "found", False))
    outcome = getattr(result, "outcome", None)
    if expected and found:
        verdict = "detected"
    elif expected:
        verdict = "missed"
    elif found:
        verdict = "spurious"
    else:
        verdict = "clean"
    return {
        "verdict": verdict,
        "expected_outcome": truth.crash_outcome,
        "observed_outcome": outcome,
        "outcome_match": bool(found and expected and outcome == truth.crash_outcome),
        "schedules_to_bug": getattr(result, "schedules_to_bug", None),
    }


@dataclass(frozen=True)
class SanitizerJudgement:
    """One (program, sanitizer) cell of the confusion matrix."""

    program: str
    bug_kind: str
    sanitizer: str
    expected: bool
    fired: bool

    @property
    def verdict(self) -> str:
        if self.expected:
            return "tp" if self.fired else "fn"
        return "fp" if self.fired else "tn"

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "bug_kind": self.bug_kind,
            "sanitizer": self.sanitizer,
            "expected": self.expected,
            "fired": self.fired,
            "verdict": self.verdict,
        }


def judge_sanitizers(
    truth: GroundTruth,
    reports: Iterable[Any],
    program: str = "",
    sanitizers: tuple[str, ...] = SANITIZER_NAMES,
) -> list[SanitizerJudgement]:
    """Score each sanitizer's verdict on one program against its label.

    ``reports`` is any iterable of objects with a ``sanitizer`` attribute
    (live :class:`SanitizerReport` s or their dict form via ``.get``).
    """
    fired: set[str] = set()
    for report in reports:
        name = getattr(report, "sanitizer", None)
        if name is None and isinstance(report, dict):
            name = report.get("sanitizer")
        if name:
            fired.add(name)
    return [
        SanitizerJudgement(
            program=program,
            bug_kind=truth.kind,
            sanitizer=name,
            expected=name in truth.sanitizers,
            fired=name in fired,
        )
        for name in sanitizers
    ]


def aggregate_sanitizers(
    judgements: Iterable[SanitizerJudgement],
) -> dict[str, dict[str, Any]]:
    """Fold per-program judgements into per-sanitizer confusion + rates.

    ``fn_rate`` is over programs where the sanitizer was expected to fire;
    ``fp_rate`` over programs where it was expected to stay silent.  With
    no programs in a denominator the rate is 0.0 (nothing to miss).
    """
    table: dict[str, dict[str, int]] = {}
    for judgement in judgements:
        cell = table.setdefault(
            judgement.sanitizer, {"tp": 0, "fn": 0, "fp": 0, "tn": 0}
        )
        cell[judgement.verdict] += 1
    summary: dict[str, dict[str, Any]] = {}
    for name, cell in sorted(table.items()):
        expected_n = cell["tp"] + cell["fn"]
        silent_n = cell["fp"] + cell["tn"]
        summary[name] = {
            **cell,
            "expected_programs": expected_n,
            "fn_rate": (cell["fn"] / expected_n) if expected_n else 0.0,
            "fp_rate": (cell["fp"] / silent_n) if silent_n else 0.0,
        }
    return summary
